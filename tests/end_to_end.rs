//! Cross-crate integration tests: every registered workload flows through the
//! full pipeline, and mappings are validated and functionally verified.

use plaid::pipeline::{compile_workload, ArchChoice, MapperChoice};
use plaid_dfg::interp::MemoryImage;
use plaid_sim::engine::execute_mapping;
use plaid_workloads::{table2_workloads, Workload};

fn workload(name: &str) -> Workload {
    table2_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name} missing from registry"))
}

#[test]
fn every_workload_lowers_and_identifies_motifs() {
    for w in table2_workloads() {
        let dfg = w.lower().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        dfg.validate_structure().unwrap();
        let hdfg = plaid_motif::identify_motifs(&dfg, &plaid_motif::IdentifyOptions::default());
        assert!(hdfg.covered_compute_nodes() <= dfg.compute_node_count());
        for motif in hdfg.motifs() {
            assert!(motif.is_valid_in(&dfg), "{}: invalid motif", w.name);
        }
    }
}

#[test]
fn representative_workloads_map_on_all_architectures() {
    // One workload per domain keeps the integration test fast while touching
    // every architecture and mapper combination used in the evaluation.
    for name in ["atax_u2", "conv2x2", "jacobi_u2"] {
        let w = workload(name);
        for (arch, mapper) in [
            (ArchChoice::SpatioTemporal4x4, MapperChoice::Sa),
            (ArchChoice::Spatial4x4, MapperChoice::Spatial),
            (ArchChoice::Plaid2x2, MapperChoice::Plaid),
        ] {
            let compiled = compile_workload(&w, arch, mapper)
                .unwrap_or_else(|e| panic!("{name} on {arch:?}: {e}"));
            assert!(compiled.metrics.cycles > 0);
            if let Some(mapping) = &compiled.mapping {
                let built = arch.build();
                mapping.validate(&compiled.dfg, &built).unwrap();
            }
        }
    }
}

#[test]
fn mapped_execution_matches_reference_semantics() {
    for name in ["dwconv", "gesumm_u2", "fc"] {
        let w = workload(name);
        let compiled = compile_workload(&w, ArchChoice::Plaid2x2, MapperChoice::Plaid)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let arch = ArchChoice::Plaid2x2.build();
        let mapping = compiled.mapping.as_ref().unwrap();
        let memory = MemoryImage::for_kernel(&w.kernel, |array, i| {
            (array.len() as i64 * 3 + i as i64) % 19 + 1
        });
        let report = execute_mapping(&compiled.dfg, &arch, mapping, &memory)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.verified, "{name}: mapped execution diverged");
        assert_eq!(report.cycles, compiled.metrics.cycles);
    }
}

#[test]
fn plaid_mapper_is_competitive_with_generic_mappers_on_plaid() {
    // Figure 18's claim is about the average across the suite; individual
    // kernels can swing either way because all three mappers are stochastic
    // search procedures. Here we only require that the motif-aware mapper
    // stays within a factor of two of the SA baseline on a couple of kernels;
    // the suite-level comparison lives in the fig18_mappers bench.
    for name in ["gemm_u2", "bicg_u2"] {
        let w = workload(name);
        let plaid = compile_workload(&w, ArchChoice::Plaid2x2, MapperChoice::Plaid).unwrap();
        if let Ok(sa) = compile_workload(&w, ArchChoice::Plaid2x2, MapperChoice::Sa) {
            assert!(
                plaid.metrics.cycles <= sa.metrics.cycles * 2,
                "{name}: plaid mapper much slower than SA ({} vs {})",
                plaid.metrics.cycles,
                sa.metrics.cycles
            );
        }
    }
}

#[test]
fn spatial_partitioning_pays_for_large_unrolled_kernels() {
    let small = workload("atax_u2");
    let large = workload("atax_u4");
    let small_sp = compile_workload(&small, ArchChoice::Spatial4x4, MapperChoice::Spatial).unwrap();
    let large_sp = compile_workload(&large, ArchChoice::Spatial4x4, MapperChoice::Spatial).unwrap();
    let small_parts = small_sp.spatial.as_ref().unwrap().partition_count();
    let large_parts = large_sp.spatial.as_ref().unwrap().partition_count();
    assert!(large_parts >= small_parts);
}
