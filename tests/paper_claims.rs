//! Shape-level checks of the paper's headline claims, with generous
//! tolerances (our substrate is an analytical model plus portable mappers,
//! not the authors' RTL flow and testbed).

use plaid::experiments::{architecture_comparison, domain_specialization, ExperimentScope};
use plaid_arch::plaid as plaid_fabric;
use plaid_arch::{spatial, spatio_temporal};
use plaid_sim::cost::CostModel;

#[test]
fn plaid_reduces_power_and_area_versus_the_spatio_temporal_baseline() {
    let model = CostModel::default();
    let st = spatio_temporal::build(4, 4);
    let pl = plaid_fabric::build(2, 2);
    let power_reduction = 1.0 - model.fabric_power(&pl).total() / model.fabric_power(&st).total();
    let area_reduction = 1.0 - model.fabric_area(&pl).total() / model.fabric_area(&st).total();
    // Paper: 43% power and 46% area reduction.
    assert!(
        (0.30..=0.60).contains(&power_reduction),
        "power reduction {power_reduction}"
    );
    assert!(
        (0.30..=0.60).contains(&area_reduction),
        "area reduction {area_reduction}"
    );
}

#[test]
fn plaid_saves_area_versus_the_spatial_baseline_at_similar_power() {
    let model = CostModel::default();
    let sp = spatial::build(4, 4);
    let pl = plaid_fabric::build(2, 2);
    let area_reduction = 1.0 - model.fabric_area(&pl).total() / model.fabric_area(&sp).total();
    // Paper: 48% area savings with almost the same power.
    assert!(
        (0.30..=0.60).contains(&area_reduction),
        "area reduction {area_reduction}"
    );
    let power_ratio = model.fabric_power(&pl).total() / model.fabric_power(&sp).total();
    assert!(
        (0.75..=1.15).contains(&power_ratio),
        "power ratio {power_ratio}"
    );
}

#[test]
fn plaid_tracks_spatio_temporal_performance_and_beats_spatial() {
    // A stride-5 subset (6 workloads across domains) keeps the test fast.
    let scope = ExperimentScope {
        workload_limit: None,
        stride: 5,
    };
    let result = architecture_comparison(scope);
    assert!(result.rows.len() >= 4);
    let plaid_vs_st = result.plaid_vs_st_cycles();
    // Paper: average performance is almost the same (Plaid within a few
    // percent of the baseline); allow a wide band.
    assert!(
        plaid_vs_st <= 1.35,
        "plaid vs spatio-temporal cycles {plaid_vs_st}"
    );
    // Paper: 1.4x faster than the spatial baseline on average; require Plaid
    // to be at least as fast.
    let spatial_vs_plaid = result.spatial_vs_plaid_cycles();
    assert!(
        spatial_vs_plaid >= 1.0,
        "spatial vs plaid cycles {spatial_vs_plaid}"
    );
    // Paper: 42% energy reduction vs the spatio-temporal baseline.
    let energy = result.plaid_vs_st_energy();
    assert!(energy <= 0.85, "plaid vs spatio-temporal energy {energy}");
}

#[test]
fn domain_specialization_keeps_plaid_ahead_of_the_specialized_baseline() {
    let (rows, _) = domain_specialization();
    let get = |label: &str| rows.iter().find(|r| r.arch == label).unwrap();
    let st_ml = get("ST-ML");
    let plaid = get("Plaid");
    let plaid_ml = get("Plaid-ML");
    // Paper: Plaid reduces energy by ~18% vs ST-ML and Plaid-ML by ~25.5%,
    // with 1.26x / 1.46x performance per area.
    assert!(plaid.energy_nj < st_ml.energy_nj);
    assert!(plaid_ml.energy_nj < plaid.energy_nj);
    assert!(plaid.perf_per_area > st_ml.perf_per_area);
    assert!(plaid_ml.perf_per_area > plaid.perf_per_area);
}
