//! Cross-crate integration tests of the design-space exploration subsystem:
//! Pareto-frontier invariants, cache behaviour and JSON round-tripping.

use plaid::pipeline::{compile_workload, ArchChoice, CompileSummary, MapperChoice};
use plaid_arch::{ArchClass, BwClass, CommSpec, DesignPoint, SpaceSpec, Topology};
use plaid_explore::{
    cache_key, run_sweep, run_sweep_with, EvalRecord, FrontierReport, Objectives, ResultCache,
    SeedPolicy, SweepOutcome, SweepPlan,
};
use plaid_workloads::find_workload;

fn small_plan() -> SweepPlan {
    let spec = SpaceSpec {
        classes: vec![ArchClass::SpatioTemporal, ArchClass::Plaid],
        dims: vec![(2, 2)],
        config_entries: vec![8, 16],
        comm_specs: CommSpec::presets(),
    };
    let workloads = vec![
        find_workload("dwconv").unwrap(),
        find_workload("atax_u2").unwrap(),
    ];
    SweepPlan::cross(&workloads, &spec)
}

#[test]
fn no_dominated_point_survives_the_frontier() {
    let cache = ResultCache::new();
    let outcome = run_sweep(&small_plan(), &cache);
    let report = FrontierReport::from_records(&outcome.records);
    assert!(!report.frontiers.is_empty());
    for frontier in &report.frontiers {
        assert!(
            !frontier.points.is_empty(),
            "{} has an empty frontier",
            frontier.workload
        );
        // Frontier points must be mutually non-dominated, and no evaluated
        // point of the same workload may dominate any of them.
        let candidates: Vec<&EvalRecord> = outcome
            .records
            .iter()
            .filter(|r| r.ok && r.workload.name == frontier.workload)
            .collect();
        for point in &frontier.points {
            let obj = point.objectives().unwrap();
            for other in &candidates {
                let other_obj = other.objectives().unwrap();
                assert!(
                    !other_obj.dominates(&obj),
                    "{}: frontier point {} dominated by {}",
                    frontier.workload,
                    point.arch,
                    other.arch
                );
            }
        }
        // And every non-frontier evaluated point is dominated by some
        // frontier point (otherwise it should have survived).
        for candidate in &candidates {
            let on_frontier = frontier
                .points
                .iter()
                .any(|p| p.arch == candidate.arch && p.mapper == candidate.mapper);
            if !on_frontier {
                let obj = candidate.objectives().unwrap();
                assert!(
                    frontier
                        .points
                        .iter()
                        .any(|p| p.objectives().unwrap().dominates(&obj)),
                    "{}: non-frontier point {} is not dominated",
                    frontier.workload,
                    candidate.arch
                );
            }
        }
    }
}

#[test]
fn frontier_extraction_is_deterministic() {
    let cache = ResultCache::new();
    let outcome = run_sweep(&small_plan(), &cache);
    let a = FrontierReport::from_records(&outcome.records);
    let b = FrontierReport::from_records(&outcome.records);
    assert_eq!(a, b);
    // Shuffled record order produces the identical report.
    let mut reversed = outcome.records.clone();
    reversed.reverse();
    let c = FrontierReport::from_records(&reversed);
    assert_eq!(a, c, "frontier depends on record order");
    // And serialization is byte-stable.
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&c).unwrap()
    );
}

#[test]
fn repeated_sweep_recompiles_nothing() {
    let plan = small_plan();
    let cache = ResultCache::new();
    let cold = run_sweep(&plan, &cache);
    assert_eq!(cold.stats.compiled, plan.len());
    assert_eq!(cold.stats.cache_hits, 0);

    let warm = run_sweep(&plan, &cache);
    assert_eq!(
        warm.stats.compiled, 0,
        "second identical sweep must not recompile"
    );
    assert_eq!(warm.stats.cache_hits, plan.len());
    assert!(
        (warm.stats.hit_rate() - 1.0).abs() < 1e-12,
        "hit rate must be 100%"
    );
    assert_eq!(warm.records, cold.records);
}

#[test]
fn persisted_cache_survives_process_boundaries() {
    let plan = small_plan();
    let dir = std::env::temp_dir().join("plaid-dse-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");
    std::fs::remove_file(&path).ok();

    let cache = ResultCache::new();
    let cold = run_sweep(&plan, &cache);
    cache.save(&path).unwrap();

    // A fresh cache loaded from disk serves the whole sweep.
    let reloaded = ResultCache::load(&path).unwrap();
    assert_eq!(reloaded.len(), plan.len());
    let warm = run_sweep(&plan, &reloaded);
    assert_eq!(warm.stats.compiled, 0);
    assert_eq!(warm.records, cold.records);
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_outcome_round_trips_through_json() {
    let spec = SpaceSpec {
        classes: vec![ArchClass::Plaid],
        dims: vec![(2, 2)],
        config_entries: vec![16],
        comm_specs: vec![CommSpec::ALIGNED, CommSpec::LEAN],
    };
    let plan = SweepPlan::cross(&[find_workload("dwconv").unwrap()], &spec);
    let cache = ResultCache::new();
    let outcome = run_sweep(&plan, &cache);

    let json = serde_json::to_string_pretty(&outcome).unwrap();
    let back: SweepOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(back, outcome);

    let report = FrontierReport::from_records(&outcome.records);
    let json = serde_json::to_string(&report).unwrap();
    let back: FrontierReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn compile_summary_round_trips_through_json() {
    let w = find_workload("dwconv").unwrap();
    let compiled = compile_workload(&w, ArchChoice::Plaid2x2, MapperChoice::Plaid).unwrap();
    let summary = compiled.summary();
    let json = serde_json::to_string(&summary).unwrap();
    let back: CompileSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(back, summary);
    assert_eq!(back.metrics.cycles, compiled.metrics.cycles);
    assert_eq!(back.coverage.total_nodes, compiled.coverage.total_nodes);
}

#[test]
fn design_points_and_params_round_trip_through_json() {
    for point in SpaceSpec::default_grid().enumerate() {
        let json = serde_json::to_string(&point).unwrap();
        let back: DesignPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, point);
        let params_json = serde_json::to_string(&point.params()).unwrap();
        let params: plaid_arch::ArchParams = serde_json::from_str(&params_json).unwrap();
        assert_eq!(params, point.params());
    }
}

#[test]
fn objectives_dominance_matches_frontier_membership() {
    // Hand-constructed objective vectors with a known frontier.
    let objs = [
        Objectives {
            cycles: 100,
            area_um2: 50.0,
            energy_nj: 10.0,
        },
        Objectives {
            cycles: 100,
            area_um2: 50.0,
            energy_nj: 12.0,
        }, // dominated
        Objectives {
            cycles: 80,
            area_um2: 70.0,
            energy_nj: 9.0,
        },
        Objectives {
            cycles: 120,
            area_um2: 40.0,
            energy_nj: 11.0,
        },
    ];
    let keep = plaid_explore::pareto_indices(&objs);
    assert_eq!(keep, vec![0, 2, 3]);
}

#[test]
fn topology_sweep_covers_non_mesh_points() {
    // The structured communication axis end-to-end: a sweep over
    // {mesh, torus, express} x {half, base} must enumerate distinct points,
    // evaluate them, and surface non-mesh points in the frontier. On the
    // 3x3 Plaid fabric the atax_u2 workload genuinely benefits from the
    // wraparound links: the half-bandwidth torus achieves a lower II (288
    // cycles vs. 320 for every mesh variant), so it is non-dominated despite
    // its wiring premium — the BandMap-style trade the structured axis
    // exists to expose.
    let spec = SpaceSpec {
        classes: vec![ArchClass::Plaid],
        dims: vec![(3, 3)],
        config_entries: vec![16],
        comm_specs: CommSpec::presets(),
    }
    .with_comm_grid(
        &[
            Topology::Mesh,
            Topology::Torus,
            Topology::Express { stride: 2 },
        ],
        &[BwClass::Half, BwClass::Base],
    );
    assert_eq!(spec.cardinality(), 6);
    let designs = spec.enumerate();
    // Labels and cache keys are unique across the structured axis; the
    // uniform mesh specs collapse onto the legacy presets.
    let workload = find_workload("atax_u2").unwrap();
    let plan = SweepPlan::cross(std::slice::from_ref(&workload), &spec);
    let mut labels: Vec<String> = designs.iter().map(|d| d.label()).collect();
    assert!(labels.iter().any(|l| l.ends_with("/lean")));
    assert!(labels.iter().any(|l| l.ends_with("/aligned")));
    labels.sort();
    labels.dedup();
    assert_eq!(labels.len(), designs.len());
    let mut keys: Vec<String> = plan.points.iter().map(cache_key).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), plan.len(), "comm specs alias cache keys");
    // Non-mesh fabrics are structurally richer than their mesh siblings.
    let link_count = |comm: CommSpec| {
        DesignPoint {
            class: ArchClass::Plaid,
            rows: 3,
            cols: 3,
            config_entries: 16,
            comm,
        }
        .build()
        .links()
        .len()
    };
    let mesh_links = link_count(CommSpec::ALIGNED);
    assert!(link_count(CommSpec::uniform(Topology::Torus, BwClass::Base)) > mesh_links);
    assert!(
        link_count(CommSpec::uniform(
            Topology::Express { stride: 2 },
            BwClass::Base
        )) > mesh_links
    );

    let outcome = run_sweep(&plan, &ResultCache::new());
    assert_eq!(outcome.stats.points, 6);
    let succeeded: Vec<&EvalRecord> = outcome.records.iter().filter(|r| r.ok).collect();
    assert!(
        succeeded
            .iter()
            .any(|r| r.design.comm.topology == Topology::Torus),
        "torus point must map"
    );
    let report = FrontierReport::from_records(&outcome.records);
    assert!(
        report
            .frontiers
            .iter()
            .flat_map(|f| f.points.iter())
            .any(|p| p.design.comm.topology != Topology::Mesh),
        "frontier must surface a non-mesh point: {:?}",
        report
            .frontiers
            .iter()
            .flat_map(|f| f.points.iter().map(|p| p.arch.clone()))
            .collect::<Vec<_>>()
    );
    // Structured design points survive the record JSON round trip.
    let json = serde_json::to_string(&outcome).unwrap();
    let back: SweepOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(back, outcome);
}

#[test]
fn exact_seeding_preserves_the_frontier_bit_for_bit() {
    // The warm-start acceptance property: an exactly-seeded sweep must emit
    // the same frontier JSON as a cold sweep of the same plan, while
    // actually exercising the seeding path (seeded > 0).
    let plan = small_plan();
    let cold = run_sweep_with(&plan, &ResultCache::new(), SeedPolicy::Off);
    let seeded = run_sweep_with(&plan, &ResultCache::new(), SeedPolicy::Exact);
    assert!(seeded.stats.seeded > 0, "plan must exercise warm starts");
    assert!(
        seeded.stats.seed_hits > 0,
        "warm starts must demonstrably skip work"
    );
    let cold_json = serde_json::to_string(&FrontierReport::from_records(&cold.records)).unwrap();
    let seeded_json =
        serde_json::to_string(&FrontierReport::from_records(&seeded.records)).unwrap();
    assert_eq!(cold_json, seeded_json);
    // Off-policy stats never report seeding activity.
    assert_eq!(cold.stats.seeded, 0);
    assert_eq!(cold.stats.seed_hits, 0);
}
