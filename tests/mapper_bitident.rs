//! Pins the exact mappings the three search mappers produce on the workload
//! suite, so kernel-level refactors (move journals, dense occupancy tables,
//! scratch-based routing) can prove they changed *nothing* about results:
//! same RNG consumption, same tie-breaks, same placements, same routes.
//!
//! The pinned constants were captured from the snapshot-based kernel that
//! predates the incremental one (commit 47473cb); any divergence means the
//! refactor is not behaviour-preserving and must be fixed, not re-pinned.
//!
//! Run with `PLAID_PIN_PRINT=1` to print the current fingerprints instead of
//! asserting (the capture mode used to generate the table).

use plaid_arch::{plaid as plaid_fabric, spatio_temporal, Architecture};
use plaid_mapper::{Mapper, Mapping, PathFinderMapper, PlaidMapper, SaMapper};
use plaid_workloads::table2_workloads;

/// FNV-1a over a word stream; stable across platforms and runs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Canonical content hash of a mapping: II, placements sorted by node id,
/// routes sorted by edge id with their full hop sequences.
fn mapping_fingerprint(mapping: &Mapping) -> u64 {
    let mut h = Fnv::new();
    h.word(u64::from(mapping.ii));
    let mut placements: Vec<_> = mapping.placements.iter().collect();
    placements.sort_by_key(|(n, _)| n.0);
    for (n, p) in placements {
        h.word(u64::from(n.0));
        h.word(u64::from(p.fu.0));
        h.word(u64::from(p.cycle));
    }
    let mut routes: Vec<_> = mapping.routes.iter().collect();
    routes.sort_by_key(|(e, _)| e.0);
    for (e, route) in routes {
        h.word(u64::from(e.0));
        for hop in &route.hops {
            h.word(u64::from(hop.resource.0));
            h.word(u64::from(hop.cycle));
        }
    }
    h.0
}

/// The suite: every 5th registry workload (6 of 30, spanning all domains)
/// crossed with one spatio-temporal and one Plaid fabric.
fn suite() -> Vec<(String, Architecture)> {
    let fabrics = [
        ("st4x4", spatio_temporal::build(4, 4)),
        ("plaid2x2", plaid_fabric::build(2, 2)),
    ];
    let mut cases = Vec::new();
    for w in table2_workloads().into_iter().step_by(5) {
        for (fname, fab) in &fabrics {
            cases.push((format!("{}/{}", w.name, fname), fab.clone()));
        }
    }
    cases
}

fn run_mapper(mapper: &dyn Mapper, case: &str, arch: &Architecture) -> Option<u64> {
    let name = case.split('/').next().unwrap();
    let workload = table2_workloads().into_iter().find(|w| w.name == name)?;
    let dfg = workload.lower().ok()?;
    let mapping = mapper.map(&dfg, arch).ok()?;
    mapping.validate(&dfg, arch).expect("mapping validates");
    Some(mapping_fingerprint(&mapping))
}

/// `(case, sa, pathfinder, plaid)` — `0` marks "no mapping found", which is
/// itself a pinned outcome (the search must keep failing identically).
const PINNED: &[(&str, u64, u64, u64)] = &[
    (
        "atax_u2/st4x4",
        0xde278d3ff679edfa,
        0x52735c90468425f6,
        0x52735c90468425f6,
    ),
    (
        "atax_u2/plaid2x2",
        0xeb04e3481b739421,
        0x384c5e82d6580dc6,
        0xd391c54b04555d21,
    ),
    (
        "gesumm_u2/st4x4",
        0x116de8e29ce6b06b,
        0x96c6f2a3139a9029,
        0x116de8e29ce6b06b,
    ),
    (
        "gesumm_u2/plaid2x2",
        0x7130f9b111d0cbd8,
        0x0,
        0x7d69512cab7dd5d3,
    ),
    ("gemver_u4/st4x4", 0x0, 0x0, 0x0),
    ("gemver_u4/plaid2x2", 0x3045afbdaeb8354d, 0x0, 0x0),
    (
        "dwconv_u5/st4x4",
        0xa74f760eaba5c166,
        0x9b6aff6dbe8e7be4,
        0xa74f760eaba5c166,
    ),
    (
        "dwconv_u5/plaid2x2",
        0x45a1d5c2ff063367,
        0x0,
        0x3d9e47d6afb04cbe,
    ),
    (
        "gramsc_u2/st4x4",
        0x8704cfc8094dd9e3,
        0x8704cfc8094dd9e3,
        0x8704cfc8094dd9e3,
    ),
    (
        "gramsc_u2/plaid2x2",
        0x522a213c0a53fbd,
        0xd5db50e5013faea5,
        0x522a213c0a53fbd,
    ),
    (
        "jacobi/st4x4",
        0x12f3c00d549222ac,
        0x12f3c00d549222ac,
        0x12f3c00d549222ac,
    ),
    (
        "jacobi/plaid2x2",
        0xf4d98aff3101ee5e,
        0xf4d98aff3101ee5e,
        0xf4d98aff3101ee5e,
    ),
];

#[test]
fn mappings_are_bit_identical_to_the_snapshot_kernel() {
    let print_mode = std::env::var("PLAID_PIN_PRINT").is_ok();
    let sa = SaMapper::default();
    let pf = PathFinderMapper::default();
    let pl = PlaidMapper::default();
    let mut failures = Vec::new();
    for (case, arch) in suite() {
        let got = (
            run_mapper(&sa, &case, &arch).unwrap_or(0),
            run_mapper(&pf, &case, &arch).unwrap_or(0),
            run_mapper(&pl, &case, &arch).unwrap_or(0),
        );
        if print_mode {
            println!(
                "    (\n        \"{case}\",\n        {:#x},\n        {:#x},\n        {:#x},\n    ),",
                got.0, got.1, got.2
            );
            continue;
        }
        let pinned = PINNED
            .iter()
            .find(|(name, ..)| *name == case)
            .unwrap_or_else(|| panic!("case {case} missing from the pinned table"));
        if got != (pinned.1, pinned.2, pinned.3) {
            failures.push(format!(
                "{case}: got (sa={:#x}, pf={:#x}, plaid={:#x}), pinned ({:#x}, {:#x}, {:#x})",
                got.0, got.1, got.2, pinned.1, pinned.2, pinned.3
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "mappings diverged from the snapshot-based kernel:\n{}",
        failures.join("\n")
    );
}
