//! Property tests for the sweep-sharding layer: `partition_plan` is a true
//! partition (disjoint, covering, stable under point permutation) and
//! `ResultCache::union_merge` of arbitrarily split caches reconstructs the
//! unsplit cache — including colliding-key buckets, where two records of
//! different identity share one 64-bit key (the PR 2 bucket format).

use plaid_arch::{ArchClass, CommSpec, SpaceSpec};
use plaid_explore::{
    cache_key, partition_plan, shard_of, EvalRecord, ResultCache, SweepPlan, SweepPoint,
};
use plaid_workloads::find_workload;
use proptest::prelude::*;

/// A deterministic pool of distinct sweep points to sample from: two
/// workloads crossed with a mixed preset/structured grid.
fn point_pool() -> Vec<SweepPoint> {
    let spec = SpaceSpec {
        classes: vec![
            ArchClass::SpatioTemporal,
            ArchClass::Spatial,
            ArchClass::Plaid,
        ],
        dims: vec![(2, 2), (3, 3)],
        config_entries: vec![8, 16],
        comm_specs: CommSpec::presets(),
    };
    let workloads = [
        find_workload("dwconv").unwrap(),
        find_workload("fc").unwrap(),
    ];
    SweepPlan::cross(&workloads, &spec).points
}

/// Deterministic Fisher–Yates driven by an LCG, so permutations are
/// reproducible from the proptest-generated seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// Selects a subset of the pool from a bitmask seed (always non-empty).
fn subset(pool: &[SweepPoint], mask: u64) -> Vec<SweepPoint> {
    let picked: Vec<SweepPoint> = pool
        .iter()
        .enumerate()
        .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
        .map(|(_, p)| p.clone())
        .collect();
    if picked.is_empty() {
        vec![pool[0].clone()]
    } else {
        picked
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partition_is_disjoint_covering_and_permutation_stable(
        mask in any::<u64>(),
        perm_seed in any::<u64>(),
        count in 1u32..7,
    ) {
        let pool = point_pool();
        let points = subset(&pool, mask);
        let plan = SweepPlan { points: points.clone() };
        let shards = partition_plan(&plan, count);

        // Disjoint and covering: every point appears in exactly one shard,
        // and in the shard its content hash names.
        prop_assert_eq!(shards.len(), count as usize);
        let mut seen = std::collections::HashMap::new();
        for (i, shard) in shards.iter().enumerate() {
            for point in &shard.points {
                prop_assert_eq!(shard_of(point, count) as usize, i);
                prop_assert!(
                    seen.insert(cache_key(point), i).is_none(),
                    "point assigned to two shards"
                );
            }
        }
        prop_assert_eq!(seen.len(), plan.len());

        // Permutation-stable: shuffling the plan changes only within-shard
        // order, never membership.
        let mut permuted_points = points;
        shuffle(&mut permuted_points, perm_seed);
        let permuted = partition_plan(&SweepPlan { points: permuted_points }, count);
        for (a, b) in shards.iter().zip(permuted.iter()) {
            let mut ka: Vec<String> = a.points.iter().map(cache_key).collect();
            let mut kb: Vec<String> = b.points.iter().map(cache_key).collect();
            ka.sort();
            kb.sort();
            prop_assert_eq!(ka, kb, "shard membership moved under permutation");
        }
    }

    #[test]
    fn union_merge_of_random_splits_equals_the_unsplit_cache(
        mask in any::<u64>(),
        split_seed in any::<u64>(),
        parts in 1usize..6,
    ) {
        let pool = point_pool();
        let points = subset(&pool, mask);

        // The unsplit reference: every point's record under its own key,
        // plus forced colliding-key buckets — the first two pool points
        // stored under one shared key with distinct identities (the PR 2
        // bucket format survives 64-bit collisions).
        let collider_key = "v1:00000000c0111de5".to_string();
        let colliders = [
            EvalRecord::failed(&pool[0], "collider-a"),
            EvalRecord::failed(&pool[1], "collider-b"),
        ];
        let unsplit = ResultCache::new();
        for point in &points {
            unsplit.insert(cache_key(point), EvalRecord::failed(point, "probe"));
        }
        for record in &colliders {
            unsplit.insert(collider_key.clone(), record.clone());
        }

        // Split the same inserts across `parts` caches by an LCG draw —
        // crucially, the two colliding records may land in *different*
        // caches, so the merge must union their bucket rather than evict.
        let split: Vec<ResultCache> = (0..parts).map(|_| ResultCache::new()).collect();
        let mut seed = split_seed;
        let mut draw = |n: usize| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize % n
        };
        for point in &points {
            split[draw(parts)].insert(cache_key(point), EvalRecord::failed(point, "probe"));
        }
        for record in &colliders {
            split[draw(parts)].insert(collider_key.clone(), record.clone());
        }

        let merged = ResultCache::new();
        let mut added = 0usize;
        for part in &split {
            added += merged.union_merge(part);
        }
        prop_assert_eq!(added, unsplit.len(), "every record newly added once");
        prop_assert_eq!(merged.len(), unsplit.len());
        // Canonical snapshots are byte-comparable regardless of which cache
        // each record travelled through.
        prop_assert_eq!(merged.canonical_records(), unsplit.canonical_records());
    }
}
