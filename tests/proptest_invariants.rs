//! Property-based tests of the core invariants.

use proptest::prelude::*;

use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
use plaid_dfg::lower::{lower_kernel, LoweringOptions};
use plaid_dfg::{Dfg, EdgeKind, Op, Operand};
use plaid_motif::{identify_motifs, IdentifyOptions};

/// Strategy: a random layered DAG of compute nodes fed by one load, with a
/// store at the end. Layered construction guarantees acyclicity.
fn arbitrary_dfg() -> impl Strategy<Value = Dfg> {
    (2usize..18, any::<u64>()).prop_map(|(compute_nodes, seed)| {
        let mut dfg = Dfg::new(format!("random_{compute_nodes}"));
        let load = dfg.add_load("ld", "x", AffineExpr::var(0));
        let mut previous: Vec<_> = vec![load];
        let mut state = seed | 1;
        let mut next = || {
            // xorshift for reproducible pseudo-randomness inside the strategy
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ops = [Op::Add, Op::Mul, Op::Sub, Op::Xor, Op::Min];
        let mut all_compute = Vec::new();
        for i in 0..compute_nodes {
            let op = ops[(next() % ops.len() as u64) as usize];
            let node = dfg.add_compute_node(format!("c{i}"), op);
            let lhs = previous[(next() % previous.len() as u64) as usize];
            dfg.add_edge(lhs, node, Operand::Lhs, EdgeKind::Data)
                .unwrap();
            if next() % 2 == 0 && previous.len() > 1 {
                let rhs = previous[(next() % previous.len() as u64) as usize];
                if dfg
                    .add_edge(rhs, node, Operand::Rhs, EdgeKind::Data)
                    .is_err()
                {
                    dfg.set_immediate(node, (next() % 64) as i64).unwrap();
                }
            } else {
                dfg.set_immediate(node, (next() % 64) as i64).unwrap();
            }
            previous.push(node);
            all_compute.push(node);
        }
        let store = dfg.add_store("st", "y", AffineExpr::var(0));
        dfg.add_edge(
            *previous.last().unwrap(),
            store,
            Operand::Lhs,
            EdgeKind::Data,
        )
        .unwrap();
        dfg
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Motif identification always yields a valid partition of compute nodes.
    #[test]
    fn motif_cover_is_a_valid_partition(dfg in arbitrary_dfg()) {
        prop_assert!(dfg.validate_structure().is_ok());
        let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
        let mut seen = std::collections::HashSet::new();
        for motif in hdfg.motifs() {
            prop_assert!(motif.is_valid_in(&dfg));
            for &node in &motif.nodes {
                prop_assert!(dfg.node(node).is_compute());
                prop_assert!(seen.insert(node), "node covered twice");
            }
        }
        prop_assert!(hdfg.covered_compute_nodes() <= dfg.compute_node_count());
        prop_assert_eq!(
            hdfg.covered_compute_nodes() + hdfg.standalone_nodes().len(),
            dfg.node_count()
        );
    }

    /// Topological order respects every same-iteration data edge.
    #[test]
    fn topological_order_is_consistent(dfg in arbitrary_dfg()) {
        let order = dfg.topological_order().unwrap();
        let position: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for edge in dfg.edges().filter(|e| !e.kind.is_recurrence()) {
            prop_assert!(position[&edge.src] < position[&edge.dst]);
        }
    }

    /// Affine expressions evaluate linearly under variable substitution.
    #[test]
    fn affine_substitution_is_consistent(
        coeff in -8i64..8,
        constant in -16i64..16,
        scale in 1i64..5,
        shift in 0i64..5,
        point in 0i64..10,
    ) {
        let expr = AffineExpr::scaled_var(0, coeff).offset(constant);
        let substituted = expr.substitute(0, scale, shift);
        // Evaluating the substituted expression at `point` must equal the
        // original evaluated at `scale * point + shift`.
        prop_assert_eq!(substituted.eval(&[point]), expr.eval(&[scale * point + shift]));
    }

    /// Kernel unrolling preserves total work: the unrolled DFG has `factor`
    /// times as many nodes and its iteration count shrinks by `factor`.
    #[test]
    fn unrolling_preserves_total_work(factor in prop::sample::select(vec![1u64, 2, 4])) {
        let kernel = KernelBuilder::new("axpy")
            .loop_var("i", 16)
            .array("x", 16)
            .array("y", 16)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        let base = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        let unrolled = lower_kernel(&kernel, &LoweringOptions::unrolled(factor)).unwrap();
        prop_assert_eq!(unrolled.node_count() as u64, base.node_count() as u64 * factor);
        prop_assert_eq!(unrolled.total_iterations() * factor, base.total_iterations());
        // The operation mix is preserved (each op count scales by the factor).
        let base_hist = base.op_histogram();
        let unrolled_hist = unrolled.op_histogram();
        for (op, count) in base_hist {
            prop_assert_eq!(unrolled_hist.get(&op).copied().unwrap_or(0) as u64, count as u64 * factor);
        }
    }
}

/// Structured-communication-axis invariants: rebuilding a design point from
/// the same [`plaid_arch::CommSpec`] is deterministic (identical fabric
/// signature), and capacity / select-bit provisioning is monotone in the
/// bandwidth class.
mod comm_spec_properties {
    use super::*;
    use plaid_arch::{ArchClass, BwClass, CommSpec, DesignPoint, LinkBw, SelectPolicy, Topology};
    use plaid_mapper::{fabric_signature, fabric_signature_nocap};

    fn arbitrary_comm_spec() -> impl Strategy<Value = CommSpec> {
        (0u32..4, 0usize..4, 0usize..4, any::<bool>()).prop_map(|(topo, local, global, fixed)| {
            CommSpec {
                topology: match topo {
                    0 => Topology::Mesh,
                    1 => Topology::Torus,
                    2 => Topology::Express { stride: 2 },
                    _ => Topology::Express { stride: 3 },
                },
                link_bw: LinkBw {
                    local: BwClass::ALL[local],
                    global: BwClass::ALL[global],
                },
                select_policy: if fixed {
                    SelectPolicy::Fixed
                } else {
                    SelectPolicy::Proportional
                },
            }
        })
    }

    fn point(class: ArchClass, comm: CommSpec) -> DesignPoint {
        // 3x4 so every generated topology (express strides up to 3) fits
        // the array and the points stay valid.
        DesignPoint {
            class,
            rows: 3,
            cols: 4,
            config_entries: 16,
            comm,
        }
    }

    fn total_switch_capacity(p: &DesignPoint) -> u64 {
        p.build()
            .resources()
            .iter()
            .filter(|r| !r.kind.is_func_unit())
            .map(|r| u64::from(r.kind.capacity()))
            .sum()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Same spec => bit-identical fabric: two independent rebuilds hash
        /// to the same full and no-capacity signatures, and the structured
        /// spec survives a JSON round trip of its design point.
        #[test]
        fn rebuild_round_trips_for_random_specs(comm in arbitrary_comm_spec()) {
            for class in [ArchClass::SpatioTemporal, ArchClass::Plaid] {
                let p = point(class, comm);
                let a = p.build();
                let b = p.build();
                prop_assert_eq!(fabric_signature(&a), fabric_signature(&b));
                prop_assert_eq!(fabric_signature_nocap(&a), fabric_signature_nocap(&b));
                prop_assert_eq!(a.name(), b.name());
                let json = serde_json::to_string(&p).unwrap();
                let back: DesignPoint = serde_json::from_str(&json).unwrap();
                prop_assert_eq!(back, p);
                // Bandwidth never changes the structure, only capacities:
                // the no-capacity signature matches the family's.
                let family = DesignPoint { comm: comm.structural_family(), ..p };
                prop_assert_eq!(
                    fabric_signature_nocap(&family.build()),
                    fabric_signature_nocap(&a)
                );
            }
        }

        /// Raising a uniform bandwidth class never lowers any switch
        /// capacity sum or the select-bit budget (monotone provisioning).
        #[test]
        fn capacity_and_bits_are_monotone_in_bw_class(
            topo in 0u32..3,
            lo in 0usize..4,
            hi in 0usize..4,
        ) {
            let topology = match topo {
                0 => Topology::Mesh,
                1 => Topology::Torus,
                _ => Topology::Express { stride: 2 },
            };
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            let lean = CommSpec::uniform(topology, BwClass::ALL[lo]);
            let rich = CommSpec::uniform(topology, BwClass::ALL[hi]);
            for class in [ArchClass::SpatioTemporal, ArchClass::Plaid] {
                let lean_point = point(class, lean);
                let rich_point = point(class, rich);
                prop_assert!(
                    total_switch_capacity(&lean_point) <= total_switch_capacity(&rich_point)
                );
                prop_assert!(
                    lean_point.params().config.communication_bits
                        <= rich_point.params().config.communication_bits
                );
            }
        }
    }
}

/// Mapping invariants on random DFGs: any mapping the SA mapper produces
/// passes the independent validator (FU exclusivity, timing, capacities).
mod mapping_properties {
    use super::*;
    use plaid_arch::spatio_temporal;
    use plaid_mapper::{Mapper, SaMapper};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn sa_mappings_validate(dfg in arbitrary_dfg()) {
            let arch = spatio_temporal::build(4, 4);
            if let Ok(mapping) = SaMapper::default().map(&dfg, &arch) {
                prop_assert!(mapping.validate(&dfg, &arch).is_ok());
                prop_assert!(mapping.ii >= plaid_mapper::mii(&dfg, &arch));
                prop_assert!(mapping.fu_utilization(&arch) <= 1.0);
            }
        }
    }
}

/// Warm-start invariants: on any random DFG, a seeded `SaMapper` or
/// `PathFinderMapper` run produces a valid mapping that is never slower
/// (achieved II, hence total cycles) than the unseeded run on the same
/// point, and a seed captured on an incompatible fabric falls back to the
/// exact cold result.
mod warm_start_properties {
    use super::*;
    use plaid_arch::spatio_temporal;
    use plaid_mapper::{MapSeed, PathFinderMapper, SaMapper, SeededMapping};
    use proptest::test_runner::TestCaseError;

    /// Runs one mapper closure cold and seeded-with-its-own-seed, checking
    /// the seeded result is valid and no slower.
    fn check_self_seed(
        dfg: &Dfg,
        map: impl Fn(Option<&MapSeed>) -> Result<SeededMapping, plaid_mapper::MapError>,
    ) -> Result<(), TestCaseError> {
        let arch = spatio_temporal::build(4, 4);
        let Ok(cold) = map(None) else {
            // Nothing to compare against; infeasible DFGs are exercised by
            // the fallback property below.
            return Ok(());
        };
        let hint = MapSeed {
            seed: Some(cold.seed.clone()),
            infeasible: None,
            allow_warm: false,
        };
        let warm = map(Some(&hint));
        prop_assert!(warm.is_ok(), "own seed must replay");
        let warm = warm.unwrap();
        prop_assert!(warm.mapping.validate(dfg, &arch).is_ok());
        prop_assert!(warm.mapping.ii <= cold.mapping.ii);
        let iterations = dfg.total_iterations();
        prop_assert!(
            warm.mapping.total_cycles(iterations) <= cold.mapping.total_cycles(iterations)
        );
        Ok(())
    }

    /// Seeds captured on a structurally different fabric must not change
    /// the result: the mapper rejects the replay and anneals from scratch,
    /// reproducing the cold mapping exactly.
    fn check_foreign_seed_fallback(
        donor: impl Fn() -> Result<SeededMapping, plaid_mapper::MapError>,
        map: impl Fn(Option<&MapSeed>) -> Result<SeededMapping, plaid_mapper::MapError>,
    ) -> Result<(), TestCaseError> {
        let Ok(foreign) = donor() else {
            return Ok(());
        };
        let hint = MapSeed {
            seed: Some(foreign.seed),
            infeasible: None,
            allow_warm: false,
        };
        match (map(None), map(Some(&hint))) {
            (Ok(cold), Ok(warm)) => {
                prop_assert_eq!(warm.mapping.ii, cold.mapping.ii);
                prop_assert_eq!(warm.mapping.placements, cold.mapping.placements);
                prop_assert_eq!(warm.mapping.routes, cold.mapping.routes);
            }
            (Err(_), Err(_)) => {}
            (cold, warm) => {
                return Err(TestCaseError::fail(format!(
                    "foreign seed changed feasibility: cold ok={} warm ok={}",
                    cold.is_ok(),
                    warm.is_ok()
                )));
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn seeded_sa_runs_validate_and_never_regress(dfg in arbitrary_dfg()) {
            let arch = spatio_temporal::build(4, 4);
            check_self_seed(&dfg, |hint| SaMapper::default().map_with_seed(&dfg, &arch, hint))?;
        }

        #[test]
        fn seeded_pathfinder_runs_validate_and_never_regress(dfg in arbitrary_dfg()) {
            let arch = spatio_temporal::build(4, 4);
            check_self_seed(&dfg, |hint| {
                PathFinderMapper::default().map_with_seed(&dfg, &arch, hint)
            })?;
        }

        #[test]
        fn foreign_seeds_fall_back_to_the_cold_result(dfg in arbitrary_dfg()) {
            let arch = spatio_temporal::build(4, 4);
            let small = spatio_temporal::build(3, 3);
            check_foreign_seed_fallback(
                || SaMapper::default().map_with_seed(&dfg, &small, None),
                |hint| SaMapper::default().map_with_seed(&dfg, &arch, hint),
            )?;
            check_foreign_seed_fallback(
                || PathFinderMapper::default().map_with_seed(&dfg, &small, None),
                |hint| PathFinderMapper::default().map_with_seed(&dfg, &arch, hint),
            )?;
        }
    }
}
