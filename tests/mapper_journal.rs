//! Property tests of the incremental mapper kernel: journal-based rollback
//! must leave a [`MapState`] *exactly* equal — placements, routes, occupancy
//! table and all incrementally maintained aggregates — to a snapshot taken
//! before the move, across arbitrary interleavings of rip-up, re-place,
//! re-route, commit and rollback. This is the invariant that let the move
//! loops drop their per-move full-state clone.

use proptest::prelude::*;

use plaid_arch::{plaid, spatio_temporal, Architecture};
use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
use plaid_dfg::lower::{lower_kernel, LoweringOptions};
use plaid_dfg::{Dfg, NodeId, Op};
use plaid_mapper::placement::{greedy_place, MapState};
use plaid_mapper::route::HardCapacityCost;

/// Deterministic xorshift so each proptest case replays exactly.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// A small family of kernels with fan-out, accumulation and stores — enough
/// structure for moves to rip up routed edges and recurrences.
fn kernel_dfg(variant: u8) -> Dfg {
    let unroll = 1u64 << (variant % 3); // 1, 2, 4 all divide the trip count
    let kernel = KernelBuilder::new("journal_mac")
        .loop_var("i", 16)
        .array("a", 64)
        .array("b", 64)
        .array("out", 1)
        .accumulate(
            "out",
            AffineExpr::constant(0),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("a", AffineExpr::var(0)),
                Expr::load("b", AffineExpr::var(0)),
            ),
        )
        .build()
        .unwrap();
    lower_kernel(&kernel, &LoweringOptions::unrolled(unroll)).unwrap()
}

fn fabric(variant: u8) -> Architecture {
    match variant % 3 {
        0 => spatio_temporal::build(2, 2),
        1 => spatio_temporal::build(4, 4),
        _ => plaid::build(2, 2),
    }
}

/// Field-wise equality of the mutable mapping state (the pieces rollback
/// must restore).
fn states_equal(a: &MapState<'_>, b: &MapState<'_>) -> bool {
    a.placements == b.placements && a.routes == b.routes && a.state == b.state
}

/// One random move transaction mirroring what the SA / Plaid move loops do:
/// rip up one node, try a few re-placements, re-route its incident edges.
fn random_move(state: &mut MapState<'_>, rng: &mut XorShift) {
    let policy = HardCapacityCost;
    let node = NodeId(rng.below(state.dfg.node_count()) as u32);
    state.unplace(node);
    let candidates = state.candidate_fus(node);
    if candidates.is_empty() {
        return;
    }
    let base = state.earliest_cycle(node);
    for _ in 0..4 {
        let fu = candidates[rng.below(candidates.len())];
        let cycle = base + rng.below(state.ii as usize * 2) as u32;
        if state.can_place(node, fu, cycle) {
            state.place(node, fu, cycle);
            break;
        }
    }
    // Route whatever can be routed again (failures are part of the test —
    // partial mutations must still roll back cleanly).
    let adj = std::sync::Arc::clone(state.adjacency());
    for &e in adj.incident(node) {
        let _ = state.route_edge(e, &policy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rolled-back transactions restore the exact pre-move state; committed
    /// ones keep their mutations, across random interleavings.
    #[test]
    fn rollback_is_exact_inverse_of_any_move(
        seed in any::<u64>(),
        dfg_variant in 0u8..3,
        arch_variant in 0u8..3,
        moves in 1usize..24,
    ) {
        let dfg = kernel_dfg(dfg_variant);
        let arch = fabric(arch_variant);
        let ii = 4;
        let mut rng = XorShift(seed | 1);
        let mut state = MapState::new(&dfg, &arch, ii);
        // A full greedy placement when possible, otherwise whatever partial
        // state greedy left behind — rollback must work from either.
        let _ = greedy_place(&mut state, &HardCapacityCost);

        for _ in 0..moves {
            let snapshot = state.clone();
            let cost_before = state.cost();
            state.begin_txn();
            random_move(&mut state, &mut rng);
            if rng.next().is_multiple_of(2) {
                state.rollback_txn();
                prop_assert!(
                    states_equal(&state, &snapshot),
                    "rollback diverged from the pre-move snapshot"
                );
                prop_assert_eq!(state.cost(), cost_before);
                prop_assert_eq!(
                    state.state.occupied_slots(),
                    snapshot.state.occupied_slots()
                );
                prop_assert_eq!(
                    state.state.total_overuse(),
                    snapshot.state.total_overuse()
                );
            } else {
                state.commit_txn();
                // Committed moves keep a consistent state: aggregates must
                // match a from-scratch recomputation.
                let unrouted_slow = dfg
                    .edges()
                    .filter(|e| dfg.edge_carries_data(e) && !state.routes.contains_key(&e.id))
                    .count();
                prop_assert_eq!(state.unrouted_edges(), unrouted_slow);
                let hops_slow: usize = state.routes.values().map(|r| r.hops.len()).sum();
                let expected_cost = unrouted_slow as f64 * 1_000.0
                    + hops_slow as f64
                    + f64::from(state.state.total_overuse()) * 10.0;
                prop_assert_eq!(state.cost(), expected_cost);
            }
        }
    }

    /// A rollback after a *failed* move (nothing re-placed, partial routes)
    /// still restores the snapshot — the journal handles every abort path
    /// the move loops take.
    #[test]
    fn rollback_after_unplace_only_restores_snapshot(
        seed in any::<u64>(),
        arch_variant in 0u8..3,
    ) {
        let dfg = kernel_dfg(0);
        let arch = fabric(arch_variant);
        let mut state = MapState::new(&dfg, &arch, 4);
        let _ = greedy_place(&mut state, &HardCapacityCost);
        let mut rng = XorShift(seed | 1);
        let node = NodeId(rng.below(dfg.node_count()) as u32);

        let snapshot = state.clone();
        state.begin_txn();
        state.unplace(node); // rip up with no re-placement at all
        state.rollback_txn();
        prop_assert!(states_equal(&state, &snapshot));
    }
}
