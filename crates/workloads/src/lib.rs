//! Workload kernels used in the Plaid evaluation (Table 2) and the three DNN
//! applications of Section 6.4.
//!
//! Kernels are expressed in the loop-nest IR of `plaid-dfg` and mirror the
//! computation patterns of the paper's PolyBench linear-algebra suite, the
//! TinyML machine-learning kernels and the PolyBench image kernels. Trip
//! counts are kept small (the paper's scratch-pads are 4 KiB banks) so the
//! whole evaluation runs in seconds; DFG *structure* — the number of loads,
//! stores, compute operations, reductions and unrolled replicas — is what the
//! mapper sees, and that is what the table reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnn;
pub mod kernels;
pub mod registry;

pub use dnn::{dnn_applications, DnnApplication, DnnLayer};
pub use registry::{find_workload, table2_workloads, Domain, Workload, WorkloadDescriptor};
