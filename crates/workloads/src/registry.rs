//! The workload registry: the 30 DFG variants of Table 2.

use plaid_dfg::kernel::Kernel;
use plaid_dfg::lower::{lower_kernel, LoweringOptions};
use plaid_dfg::{Dfg, DfgError};

use crate::kernels;

/// Application domain of a workload (the three groups of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Domain {
    /// PolyBench linear-algebra kernels.
    LinearAlgebra,
    /// TinyML machine-learning kernels.
    MachineLearning,
    /// PolyBench image-processing kernels.
    Image,
}

impl Domain {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Domain::LinearAlgebra => "linear-algebra",
            Domain::MachineLearning => "machine-learning",
            Domain::Image => "image",
        }
    }
}

/// One evaluated workload: a kernel plus an unroll factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Display name, matching the paper's naming (e.g. `atax_u2`).
    pub name: String,
    /// Domain group.
    pub domain: Domain,
    /// The rolled kernel.
    pub kernel: Kernel,
    /// Unroll factor applied to the innermost loop.
    pub unroll: u64,
}

impl Workload {
    fn new(domain: Domain, kernel: Kernel, unroll: u64) -> Self {
        let name = if unroll > 1 {
            format!("{}_u{}", kernel.name, unroll)
        } else {
            kernel.name.clone()
        };
        Workload {
            name,
            domain,
            kernel,
            unroll,
        }
    }

    /// Lowers the workload to a DFG (applying the unroll factor).
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (none are expected for registry workloads).
    pub fn lower(&self) -> Result<Dfg, DfgError> {
        lower_kernel(&self.kernel, &LoweringOptions::unrolled(self.unroll))
    }

    /// Total loop iterations of the (unrolled) kernel.
    pub fn iterations(&self) -> u64 {
        self.kernel.total_iterations() / self.unroll.max(1)
    }

    /// The serializable descriptor of this workload.
    pub fn descriptor(&self) -> WorkloadDescriptor {
        WorkloadDescriptor {
            name: self.name.clone(),
            domain: self.domain,
            kernel: self.kernel.name.clone(),
            unroll: self.unroll,
            iterations: self.iterations(),
        }
    }
}

/// Serializable identity of a workload: everything needed to name a sweep
/// point and re-resolve the workload from the registry, without embedding the
/// kernel IR itself.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadDescriptor {
    /// Display name, e.g. `atax_u2`.
    pub name: String,
    /// Domain group.
    pub domain: Domain,
    /// Rolled kernel name, e.g. `atax`.
    pub kernel: String,
    /// Unroll factor applied to the innermost loop.
    pub unroll: u64,
    /// Total loop iterations of the (unrolled) kernel.
    pub iterations: u64,
}

/// Resolves a registry workload by display name (e.g. `gemm_u4`).
pub fn find_workload(name: &str) -> Option<Workload> {
    table2_workloads().into_iter().find(|w| w.name == name)
}

/// The 30 workloads of Table 2: the first six PolyBench linear-algebra
/// kernels at unroll factors 2 and 4, five TinyML kernels, and the PolyBench
/// image kernels at their respective unroll factors.
pub fn table2_workloads() -> Vec<Workload> {
    use Domain::*;
    let mut out = Vec::new();
    // Linear algebra: unroll 2 and 4.
    for unroll in [2u64, 4] {
        out.push(Workload::new(LinearAlgebra, kernels::atax(), unroll));
        out.push(Workload::new(LinearAlgebra, kernels::bicg(), unroll));
        out.push(Workload::new(LinearAlgebra, kernels::doitgen(), unroll));
        out.push(Workload::new(LinearAlgebra, kernels::gemm(), unroll));
        out.push(Workload::new(LinearAlgebra, kernels::gemver(), unroll));
        out.push(Workload::new(LinearAlgebra, kernels::gesummv(), unroll));
    }
    // Machine learning.
    out.push(Workload::new(MachineLearning, kernels::conv2x2(), 1));
    out.push(Workload::new(MachineLearning, kernels::conv3x3(), 1));
    out.push(Workload::new(MachineLearning, kernels::dwconv(), 1));
    out.push(Workload::new(MachineLearning, kernels::dwconv(), 5));
    out.push(Workload::new(MachineLearning, kernels::fc(), 1));
    // Image.
    for unroll in [2u64, 4] {
        out.push(Workload::new(Image, kernels::cholesky(), unroll));
        out.push(Workload::new(Image, kernels::durbin(), unroll));
        out.push(Workload::new(Image, kernels::fdtd(), unroll));
        out.push(Workload::new(Image, kernels::gramschmidt(), unroll));
    }
    out.push(Workload::new(Image, kernels::jacobi(), 1));
    out.push(Workload::new(Image, kernels::jacobi(), 2));
    out.push(Workload::new(Image, kernels::jacobi(), 4));
    out.push(Workload::new(Image, kernels::seidel(), 1));
    out.push(Workload::new(Image, kernels::seidel(), 2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_thirty_workloads_with_unique_names() {
        let workloads = table2_workloads();
        assert_eq!(workloads.len(), 30);
        let mut names: Vec<&str> = workloads.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30, "duplicate workload names");
    }

    #[test]
    fn every_workload_lowers_to_a_valid_dfg() {
        for w in table2_workloads() {
            let dfg = w.lower().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            dfg.validate_structure().unwrap();
            assert!(dfg.node_count() >= 5, "{} too small", w.name);
            assert!(w.iterations() > 0);
            if w.unroll > 1 {
                assert!(w.name.ends_with(&format!("_u{}", w.unroll)));
            }
        }
    }

    #[test]
    fn domain_split_matches_the_paper() {
        let workloads = table2_workloads();
        let count = |d: Domain| workloads.iter().filter(|w| w.domain == d).count();
        assert_eq!(count(Domain::LinearAlgebra), 12);
        assert_eq!(count(Domain::MachineLearning), 5);
        assert_eq!(count(Domain::Image), 13);
        assert_eq!(Domain::Image.label(), "image");
    }

    #[test]
    fn unrolling_grows_dfg_size() {
        let workloads = table2_workloads();
        let atax2 = workloads.iter().find(|w| w.name == "atax_u2").unwrap();
        let atax4 = workloads.iter().find(|w| w.name == "atax_u4").unwrap();
        assert!(atax4.lower().unwrap().node_count() > atax2.lower().unwrap().node_count());
    }
}
