//! The three DNN applications adapted from TinyML (Section 6.4).
//!
//! Each application is a sequence of layers; most layers are convolution and
//! depth-wise convolution layers, with fully-connected layers at the end,
//! mirroring the 10-, 13- and 16-layer networks the paper evaluates.
//! Application-level metrics are layer-wise sums of kernel-level metrics.

use plaid_dfg::kernel::Kernel;

use crate::kernels;

/// One layer of a DNN application.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnLayer {
    /// Layer name, e.g. `"conv3x3_l04"`.
    pub name: String,
    /// Kernel implementing the layer.
    pub kernel: Kernel,
    /// Unroll factor used when compiling the layer.
    pub unroll: u64,
    /// How many times the layer's kernel invocation is repeated (channel
    /// tiling); scales the cycle count linearly.
    pub invocations: u64,
}

/// A DNN application: an ordered list of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnApplication {
    /// Application name (`DNN1`, `DNN2`, `DNN3`).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<DnnLayer>,
}

impl DnnApplication {
    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

fn layer(index: usize, kernel: Kernel, unroll: u64, invocations: u64) -> DnnLayer {
    DnnLayer {
        name: format!("{}_l{index:02}", kernel.name),
        kernel,
        unroll,
        invocations,
    }
}

fn build_app(name: &str, layer_count: usize) -> DnnApplication {
    let mut layers = Vec::new();
    for i in 0..layer_count {
        // Alternate convolution and depth-wise convolution layers (the
        // MobileNet-style structure TinyML uses), closing with a
        // fully-connected classifier.
        let l = if i + 1 == layer_count {
            layer(i, kernels::fc(), 1, 1)
        } else if i % 2 == 0 {
            layer(i, kernels::conv3x3(), 1, 2)
        } else {
            layer(i, kernels::dwconv(), 5, 2)
        };
        layers.push(l);
    }
    DnnApplication {
        name: name.to_string(),
        layers,
    }
}

/// The three evaluated DNN applications (10, 13 and 16 layers).
pub fn dnn_applications() -> Vec<DnnApplication> {
    vec![
        build_app("DNN1", 10),
        build_app("DNN2", 13),
        build_app("DNN3", 16),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applications_have_the_papers_layer_counts() {
        let apps = dnn_applications();
        assert_eq!(apps.len(), 3);
        assert_eq!(apps[0].layer_count(), 10);
        assert_eq!(apps[1].layer_count(), 13);
        assert_eq!(apps[2].layer_count(), 16);
    }

    #[test]
    fn layers_are_mostly_convolutions() {
        for app in dnn_applications() {
            let conv_like = app
                .layers
                .iter()
                .filter(|l| l.kernel.name.contains("conv"))
                .count();
            assert!(
                conv_like * 2 >= app.layer_count(),
                "{} not conv-dominated",
                app.name
            );
            // Final layer is the fully-connected classifier.
            assert_eq!(app.layers.last().unwrap().kernel.name, "fc");
        }
    }

    #[test]
    fn layer_kernels_validate() {
        for app in dnn_applications() {
            for l in &app.layers {
                l.kernel.validate().unwrap();
                assert!(l.invocations >= 1);
                assert!(l.unroll >= 1);
            }
        }
    }
}
