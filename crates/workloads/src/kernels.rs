//! Kernel definitions in the loop-nest IR.
//!
//! Each function returns the *rolled* kernel; unrolling is applied by the
//! registry (the `_u2` / `_u4` variants of Table 2) via
//! [`plaid_dfg::Kernel::unroll_innermost`] during lowering.

use plaid_dfg::kernel::{AffineExpr, Expr, Kernel, KernelBuilder};
use plaid_dfg::Op;

const N: u64 = 8;

fn av(v: usize) -> AffineExpr {
    AffineExpr::var(v)
}

fn idx2(outer: usize, inner: usize, stride: i64) -> AffineExpr {
    AffineExpr::scaled_var(outer, stride).add(&AffineExpr::var(inner))
}

/// `atax`: matrix transpose times matrix-vector product.
/// Inner loop: `tmp[i] += A[i][j] * x[j]; y[j] += A[i][j] * tmp[i]`.
pub fn atax() -> Kernel {
    KernelBuilder::new("atax")
        .loop_var("i", N)
        .loop_var("j", N)
        .array("A", (N * N) as usize)
        .array("x", N as usize)
        .array("y", N as usize)
        .array("tmp", N as usize)
        .accumulate(
            "tmp",
            av(0),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("A", idx2(0, 1, N as i64)),
                Expr::load("x", av(1)),
            ),
        )
        .accumulate(
            "y",
            av(1),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("A", idx2(0, 1, N as i64)),
                Expr::load("tmp", av(0)),
            ),
        )
        .build()
        .expect("atax kernel is well-formed")
}

/// `bicg`: BiCG sub-kernel of BiCGStab.
/// Inner loop: `s[j] += r[i] * A[i][j]; q[i] += A[i][j] * p[j]`.
pub fn bicg() -> Kernel {
    KernelBuilder::new("bicg")
        .loop_var("i", N)
        .loop_var("j", N)
        .array("A", (N * N) as usize)
        .array("r", N as usize)
        .array("p", N as usize)
        .array("s", N as usize)
        .array("q", N as usize)
        .accumulate(
            "s",
            av(1),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("r", av(0)),
                Expr::load("A", idx2(0, 1, N as i64)),
            ),
        )
        .accumulate(
            "q",
            av(0),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("A", idx2(0, 1, N as i64)),
                Expr::load("p", av(1)),
            ),
        )
        .build()
        .expect("bicg kernel is well-formed")
}

/// `doitgen`: multi-resolution analysis kernel.
/// Inner loop: `sum[p] += A[r][q][s] * C4[s][p]`.
pub fn doitgen() -> Kernel {
    KernelBuilder::new("doitgen")
        .loop_var("q", N)
        .loop_var("p", N)
        .loop_var("s", N)
        .array("A", (N * N) as usize)
        .array("C4", (N * N) as usize)
        .array("sum", N as usize)
        .accumulate(
            "sum",
            av(1),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("A", idx2(0, 2, N as i64)),
                Expr::load("C4", idx2(2, 1, N as i64)),
            ),
        )
        .store(
            "sum",
            av(1),
            Expr::binary(Op::Max, Expr::load("sum", av(1)), Expr::Const(0)),
        )
        .build()
        .expect("doitgen kernel is well-formed")
}

/// `gemm`: general matrix multiply `C[i][j] += alpha * A[i][k] * B[k][j]`.
pub fn gemm() -> Kernel {
    KernelBuilder::new("gemm")
        .loop_var("i", N)
        .loop_var("j", N)
        .loop_var("k", N)
        .array("A", (N * N) as usize)
        .array("B", (N * N) as usize)
        .array("C", (N * N) as usize)
        .accumulate(
            "C",
            idx2(0, 1, N as i64),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::binary(
                    Op::Mul,
                    Expr::load("A", idx2(0, 2, N as i64)),
                    Expr::Const(3),
                ),
                Expr::load("B", idx2(2, 1, N as i64)),
            ),
        )
        .build()
        .expect("gemm kernel is well-formed")
}

/// `gemver`: vector multiplication and matrix addition.
/// Inner loop: `A[i][j] += u1[i]*v1[j] + u2[i]*v2[j]; x[i] += beta*A[j][i]*y[j]`.
pub fn gemver() -> Kernel {
    KernelBuilder::new("gemver")
        .loop_var("i", N)
        .loop_var("j", N)
        .array("A", (N * N) as usize)
        .array("u1", N as usize)
        .array("v1", N as usize)
        .array("u2", N as usize)
        .array("v2", N as usize)
        .array("x", N as usize)
        .array("y", N as usize)
        .accumulate(
            "A",
            idx2(0, 1, N as i64),
            Op::Add,
            Expr::binary(
                Op::Add,
                Expr::binary(Op::Mul, Expr::load("u1", av(0)), Expr::load("v1", av(1))),
                Expr::binary(Op::Mul, Expr::load("u2", av(0)), Expr::load("v2", av(1))),
            ),
        )
        .accumulate(
            "x",
            av(0),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::binary(
                    Op::Mul,
                    Expr::load("A", idx2(1, 0, N as i64)),
                    Expr::Const(2),
                ),
                Expr::load("y", av(1)),
            ),
        )
        .build()
        .expect("gemver kernel is well-formed")
}

/// `gesummv`: scalar, vector and matrix multiplication.
/// Inner loop: `tmp[i] += A[i][j]*x[j]; y[i] += B[i][j]*x[j]`.
pub fn gesummv() -> Kernel {
    KernelBuilder::new("gesumm")
        .loop_var("i", N)
        .loop_var("j", N)
        .array("A", (N * N) as usize)
        .array("B", (N * N) as usize)
        .array("x", N as usize)
        .array("tmp", N as usize)
        .array("y", N as usize)
        .accumulate(
            "tmp",
            av(0),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("A", idx2(0, 1, N as i64)),
                Expr::load("x", av(1)),
            ),
        )
        .accumulate(
            "y",
            av(0),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("B", idx2(0, 1, N as i64)),
                Expr::load("x", av(1)),
            ),
        )
        .build()
        .expect("gesummv kernel is well-formed")
}

/// `conv2x2`: 2×2 convolution over a feature map (TinyML).
pub fn conv2x2() -> Kernel {
    conv("conv2x2", 2)
}

/// `conv3x3`: 3×3 convolution over a feature map (TinyML).
pub fn conv3x3() -> Kernel {
    conv("conv3x3", 3)
}

fn conv(name: &str, k: i64) -> Kernel {
    let width = N as i64 + k;
    let mut sum: Option<Expr> = None;
    for dy in 0..k {
        for dx in 0..k {
            let input = Expr::load(
                "in",
                AffineExpr::scaled_var(0, width)
                    .add(&AffineExpr::var(1))
                    .offset(dy * width + dx),
            );
            let weight = Expr::load("w", AffineExpr::constant(dy * k + dx));
            let term = Expr::binary(Op::Mul, input, weight);
            sum = Some(match sum {
                Some(acc) => Expr::binary(Op::Add, acc, term),
                None => term,
            });
        }
    }
    KernelBuilder::new(name)
        .loop_var("y", N)
        .loop_var("x", N)
        .array("in", ((N as i64 + k) * (N as i64 + k)) as usize)
        .array("w", (k * k) as usize)
        .array("out", (N * N) as usize)
        .store("out", idx2(0, 1, N as i64), sum.expect("k > 0"))
        .build()
        .expect("conv kernel is well-formed")
}

/// `dwconv`: depth-wise convolution (TinyML), one tap per iteration.
/// Inner loop: `out[i] += in[i + k] * w[k]`.
pub fn dwconv() -> Kernel {
    KernelBuilder::new("dwconv")
        .loop_var("i", N)
        .loop_var("k", 5)
        .array("in", (N + 5) as usize)
        .array("w", 5)
        .array("out", N as usize)
        .accumulate(
            "out",
            av(0),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("in", AffineExpr::var(0).add(&AffineExpr::var(1))),
                Expr::load("w", av(1)),
            ),
        )
        .build()
        .expect("dwconv kernel is well-formed")
}

/// `fc`: fully connected layer with ReLU (TinyML).
/// Inner loop: `acc[i] += w[i][j]*x[j]; out[i] = max(acc[i] >> 4, 0)`.
pub fn fc() -> Kernel {
    KernelBuilder::new("fc")
        .loop_var("i", N)
        .loop_var("j", N)
        .array("w", (N * N) as usize)
        .array("x", N as usize)
        .array("acc", N as usize)
        .array("out", N as usize)
        .accumulate(
            "acc",
            av(0),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("w", idx2(0, 1, N as i64)),
                Expr::load("x", av(1)),
            ),
        )
        .store(
            "out",
            av(0),
            Expr::binary(
                Op::Max,
                Expr::binary(Op::Shr, Expr::load("acc", av(0)), Expr::Const(4)),
                Expr::Const(0),
            ),
        )
        .build()
        .expect("fc kernel is well-formed")
}

/// `cholesky`: Cholesky decomposition inner update
/// `A[i][j] -= A[i][k] * A[j][k]`.
pub fn cholesky() -> Kernel {
    KernelBuilder::new("cholesky")
        .loop_var("j", N)
        .loop_var("k", N)
        .array("A", (N * N) as usize)
        .array("L", (N * N) as usize)
        .accumulate(
            "A",
            idx2(0, 0, 0).add(&AffineExpr::var(0)),
            Op::Sub,
            Expr::binary(
                Op::Mul,
                Expr::load("L", idx2(0, 1, N as i64)),
                Expr::load("L", idx2(0, 1, N as i64).offset(1)),
            ),
        )
        .build()
        .expect("cholesky kernel is well-formed")
}

/// `durbin`: Toeplitz solver inner update
/// `sum[0] += r[k] * y[k]; y[k] = y[k] + alpha * z[k]`.
pub fn durbin() -> Kernel {
    KernelBuilder::new("durbin")
        .loop_var("i", N)
        .loop_var("k", N)
        .array("r", N as usize)
        .array("y", N as usize)
        .array("z", N as usize)
        .array("sum", 1)
        .accumulate(
            "sum",
            AffineExpr::constant(0),
            Op::Add,
            Expr::binary(Op::Mul, Expr::load("r", av(1)), Expr::load("y", av(1))),
        )
        .store(
            "y",
            av(1),
            Expr::binary(
                Op::Add,
                Expr::load("y", av(1)),
                Expr::binary(Op::Mul, Expr::load("z", av(1)), Expr::Const(3)),
            ),
        )
        .build()
        .expect("durbin kernel is well-formed")
}

/// `fdtd`: 2-D finite-difference time-domain update
/// `ey[i][j] -= c*(hz[i][j] - hz[i-1][j]); ex[i][j] -= c*(hz[i][j] - hz[i][j-1])`.
pub fn fdtd() -> Kernel {
    let n = N as i64;
    KernelBuilder::new("fdtd")
        .loop_var("i", N)
        .loop_var("j", N)
        .array("hz", ((N + 1) * (N + 1)) as usize)
        .array("ey", (N * N) as usize)
        .array("ex", (N * N) as usize)
        .accumulate(
            "ey",
            idx2(0, 1, n),
            Op::Sub,
            Expr::binary(
                Op::Mul,
                Expr::binary(
                    Op::Sub,
                    Expr::load("hz", idx2(0, 1, n + 1).offset(n + 1)),
                    Expr::load("hz", idx2(0, 1, n + 1)),
                ),
                Expr::Const(2),
            ),
        )
        .accumulate(
            "ex",
            idx2(0, 1, n),
            Op::Sub,
            Expr::binary(
                Op::Mul,
                Expr::binary(
                    Op::Sub,
                    Expr::load("hz", idx2(0, 1, n + 1).offset(1)),
                    Expr::load("hz", idx2(0, 1, n + 1)),
                ),
                Expr::Const(2),
            ),
        )
        .build()
        .expect("fdtd kernel is well-formed")
}

/// `gramschmidt`: modified Gram-Schmidt inner update
/// `R[k][j] += Q[i][k] * A[i][j]`.
pub fn gramschmidt() -> Kernel {
    KernelBuilder::new("gramsc")
        .loop_var("i", N)
        .loop_var("j", N)
        .array("Q", (N * N) as usize)
        .array("A", (N * N) as usize)
        .array("R", (N * N) as usize)
        .accumulate(
            "R",
            av(1),
            Op::Add,
            Expr::binary(
                Op::Mul,
                Expr::load("Q", idx2(0, 0, 0).add(&AffineExpr::var(0))),
                Expr::load("A", idx2(0, 1, N as i64)),
            ),
        )
        .build()
        .expect("gramschmidt kernel is well-formed")
}

/// `jacobi`: 1-D Jacobi stencil `B[i] = (A[i] + A[i+1] + A[i+2]) * c`.
pub fn jacobi() -> Kernel {
    KernelBuilder::new("jacobi")
        .loop_var("t", 2)
        .loop_var("i", N)
        .array("A", (N + 2) as usize)
        .array("B", N as usize)
        .store(
            "B",
            av(1),
            Expr::binary(
                Op::Mul,
                Expr::binary(
                    Op::Add,
                    Expr::binary(
                        Op::Add,
                        Expr::load("A", av(1)),
                        Expr::load("A", AffineExpr::var(1).offset(1)),
                    ),
                    Expr::load("A", AffineExpr::var(1).offset(2)),
                ),
                Expr::Const(2),
            ),
        )
        .build()
        .expect("jacobi kernel is well-formed")
}

/// `seidel`: 2-D Gauss-Seidel stencil over a single array.
pub fn seidel() -> Kernel {
    let n = N as i64 + 2;
    KernelBuilder::new("seidel")
        .loop_var("i", N)
        .loop_var("j", N)
        .array("A", ((N + 2) * (N + 2)) as usize)
        .store(
            "A",
            idx2(0, 1, n).offset(n + 1),
            Expr::binary(
                Op::Shr,
                Expr::binary(
                    Op::Add,
                    Expr::binary(
                        Op::Add,
                        Expr::binary(
                            Op::Add,
                            Expr::load("A", idx2(0, 1, n)),
                            Expr::load("A", idx2(0, 1, n).offset(n)),
                        ),
                        Expr::binary(
                            Op::Add,
                            Expr::load("A", idx2(0, 1, n).offset(n + 1)),
                            Expr::load("A", idx2(0, 1, n).offset(n + 2)),
                        ),
                    ),
                    Expr::load("A", idx2(0, 1, n).offset(2 * n + 1)),
                ),
                Expr::Const(2),
            ),
        )
        .build()
        .expect("seidel kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_dfg::interp::{check_lowering_equivalence, MemoryImage};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};

    fn all_kernels() -> Vec<Kernel> {
        vec![
            atax(),
            bicg(),
            doitgen(),
            gemm(),
            gemver(),
            gesummv(),
            conv2x2(),
            conv3x3(),
            dwconv(),
            fc(),
            cholesky(),
            durbin(),
            fdtd(),
            gramschmidt(),
            jacobi(),
            seidel(),
        ]
    }

    #[test]
    fn all_kernels_validate_and_lower() {
        for kernel in all_kernels() {
            kernel
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            let dfg = lower_kernel(&kernel, &LoweringOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            assert!(dfg.node_count() >= 5, "{} suspiciously small", kernel.name);
            assert!(dfg.compute_node_count() >= 1);
            dfg.validate_structure().unwrap();
        }
    }

    #[test]
    fn lowering_matches_reference_interpretation() {
        for kernel in all_kernels() {
            let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
            let memory = MemoryImage::for_kernel(&kernel, |name, i| {
                (name.len() as i64 * 5 + i as i64 * 3) % 17 + 1
            });
            check_lowering_equivalence(&kernel, &dfg, &memory)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        }
    }

    #[test]
    fn unrolled_variants_also_match_reference() {
        for kernel in [atax(), gemm(), dwconv(), jacobi()] {
            for factor in [2u64, 4] {
                if kernel.loops.last().unwrap().trip_count % factor != 0 {
                    continue;
                }
                let dfg = lower_kernel(&kernel, &LoweringOptions::unrolled(factor)).unwrap();
                let memory = MemoryImage::for_kernel(&kernel, |_, i| (i as i64 % 13) + 1);
                check_lowering_equivalence(&kernel, &dfg, &memory)
                    .unwrap_or_else(|e| panic!("{}_u{factor}: {e}", kernel.name));
            }
        }
    }

    #[test]
    fn conv_kernels_scale_with_window_size() {
        let small = lower_kernel(&conv2x2(), &LoweringOptions::default()).unwrap();
        let large = lower_kernel(&conv3x3(), &LoweringOptions::default()).unwrap();
        assert!(large.node_count() > small.node_count());
        assert!(large.compute_node_count() > small.compute_node_count());
    }

    #[test]
    fn ml_kernel_characteristics_are_in_the_papers_ballpark() {
        // Table 2: conv2x2 has ~20 nodes / ~12 compute; conv3x3 ~37 / ~26;
        // dwconv is tiny (~7 nodes / ~3 compute). Allow generous bands: the
        // exact front-end differs, the structure should not.
        let c22 = lower_kernel(&conv2x2(), &LoweringOptions::default()).unwrap();
        assert!(
            (12..=26).contains(&c22.node_count()),
            "conv2x2 {} nodes",
            c22.node_count()
        );
        let c33 = lower_kernel(&conv3x3(), &LoweringOptions::default()).unwrap();
        assert!(
            (26..=48).contains(&c33.node_count()),
            "conv3x3 {} nodes",
            c33.node_count()
        );
        let dw = lower_kernel(&dwconv(), &LoweringOptions::default()).unwrap();
        assert!(
            (5..=10).contains(&dw.node_count()),
            "dwconv {} nodes",
            dw.node_count()
        );
    }
}
