//! The end-to-end compilation pipeline: kernel → DFG → motifs → mapping →
//! configuration → metrics.

use std::fmt;

use plaid_arch::{plaid, spatial, spatio_temporal, specialize, Architecture};
use plaid_dfg::Dfg;
pub use plaid_mapper::{
    dfg_fingerprint, fabric_signature, fabric_signature_nocap, InfeasiblePrefix, MapSeed,
    PlacementSeed, SeedOutcome, SeededMapping,
};
use plaid_mapper::{
    MapError, Mapping, PathFinderMapper, PlaidMapper, SaMapper, SpatialMapper, SpatialSchedule,
};
use plaid_motif::{coverage, identify_motifs, CoverageStats, IdentifyOptions};
use plaid_sim::config::{generate_config, ConfigImage};
use plaid_sim::cost::CostModel;
use plaid_sim::metrics::EvalMetrics;
use plaid_workloads::Workload;

/// Architectures evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ArchChoice {
    /// 4×4 high-performance spatio-temporal CGRA.
    SpatioTemporal4x4,
    /// 6×6 spatio-temporal CGRA (used in the scalability study).
    SpatioTemporal6x6,
    /// 4×4 energy-minimal spatial CGRA.
    Spatial4x4,
    /// 2×2 Plaid PCU array (16 functional units).
    Plaid2x2,
    /// 3×3 Plaid PCU array (36 functional units).
    Plaid3x3,
    /// Machine-learning-specialized spatio-temporal CGRA.
    SpatioTemporalMl,
    /// Machine-learning-specialized Plaid.
    PlaidMl,
}

impl ArchChoice {
    /// Builds the architecture instance.
    pub fn build(self) -> Architecture {
        match self {
            ArchChoice::SpatioTemporal4x4 => spatio_temporal::build(4, 4),
            ArchChoice::SpatioTemporal6x6 => spatio_temporal::build(6, 6),
            ArchChoice::Spatial4x4 => spatial::build(4, 4),
            ArchChoice::Plaid2x2 => plaid::build(2, 2),
            ArchChoice::Plaid3x3 => plaid::build(3, 3),
            ArchChoice::SpatioTemporalMl => specialize::spatio_temporal_ml(4, 4),
            ArchChoice::PlaidMl => specialize::plaid_ml_2x2(),
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            ArchChoice::SpatioTemporal4x4 => "Spatio-temporal",
            ArchChoice::SpatioTemporal6x6 => "Spatio-temporal 6x6",
            ArchChoice::Spatial4x4 => "Spatial",
            ArchChoice::Plaid2x2 => "Plaid 2x2",
            ArchChoice::Plaid3x3 => "Plaid 3x3",
            ArchChoice::SpatioTemporalMl => "ST-ML",
            ArchChoice::PlaidMl => "Plaid-ML",
        }
    }
}

/// Mappers evaluated in the paper (Figure 18) plus the spatial partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MapperChoice {
    /// Simulated-annealing baseline.
    Sa,
    /// PathFinder negotiation baseline.
    PathFinder,
    /// The hierarchical motif-aware Plaid mapper (Algorithm 2).
    Plaid,
    /// The spatial partitioning mapper (only valid on spatial architectures).
    Spatial,
}

impl MapperChoice {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            MapperChoice::Sa => "SA",
            MapperChoice::PathFinder => "PathFinder",
            MapperChoice::Plaid => "Plaid mapper",
            MapperChoice::Spatial => "Spatial partitioner",
        }
    }
}

/// Errors produced by the pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Lowering the kernel failed.
    Lowering(plaid_dfg::DfgError),
    /// Mapping failed.
    Mapping(MapError),
    /// Configuration generation failed.
    Config(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Lowering(e) => write!(f, "lowering failed: {e}"),
            PipelineError::Mapping(e) => write!(f, "mapping failed: {e}"),
            PipelineError::Config(e) => write!(f, "configuration generation failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<plaid_dfg::DfgError> for PipelineError {
    fn from(e: plaid_dfg::DfgError) -> Self {
        PipelineError::Lowering(e)
    }
}

impl From<MapError> for PipelineError {
    fn from(e: MapError) -> Self {
        PipelineError::Mapping(e)
    }
}

/// The result of compiling one workload for one architecture.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    /// Workload name.
    pub name: String,
    /// The lowered DFG.
    pub dfg: Dfg,
    /// Motif coverage statistics (Table 2 columns).
    pub coverage: CoverageStats,
    /// The modulo-scheduled mapping (absent for spatial execution).
    pub mapping: Option<Mapping>,
    /// The spatial schedule (present only for spatial execution).
    pub spatial: Option<SpatialSchedule>,
    /// Configuration image (absent for spatial execution).
    pub config: Option<ConfigImage>,
    /// Evaluation metrics.
    pub metrics: EvalMetrics,
    /// Placement seed captured from the mapping (absent for spatial
    /// execution), reusable to warm-start neighbouring design points.
    pub placement_seed: Option<PlacementSeed>,
    /// How warm-start seeding contributed to this compilation.
    pub seed_outcome: SeedOutcome,
}

impl CompiledWorkload {
    /// Achieved initiation interval (averaged per partition for spatial).
    pub fn ii(&self) -> u32 {
        self.metrics.ii
    }

    /// The serializable summary of this compilation (everything a sweep
    /// needs to keep; drops the DFG, mapping and configuration image).
    pub fn summary(&self) -> CompileSummary {
        CompileSummary {
            name: self.name.clone(),
            coverage: self.coverage.clone(),
            metrics: self.metrics.clone(),
            seed: self.placement_seed.clone(),
        }
    }
}

/// Serializable result of one pipeline run: what design-space sweeps persist
/// per (workload × architecture × mapper) point.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompileSummary {
    /// Workload name.
    pub name: String,
    /// Motif coverage statistics (Table 2 columns).
    pub coverage: CoverageStats,
    /// Evaluation metrics (cycles, power, energy, area).
    pub metrics: EvalMetrics,
    /// Placement seed for warm-starting neighbouring design points (absent
    /// for spatial execution and in records persisted before seeding
    /// existed).
    pub seed: Option<PlacementSeed>,
}

/// Compiles `workload` for `arch_choice` with `mapper_choice` and evaluates it
/// with the default cost model.
///
/// # Errors
///
/// Returns a [`PipelineError`] if lowering, mapping or configuration
/// generation fails.
pub fn compile_workload(
    workload: &Workload,
    arch_choice: ArchChoice,
    mapper_choice: MapperChoice,
) -> Result<CompiledWorkload, PipelineError> {
    compile_workload_on(workload, &arch_choice.build(), mapper_choice)
}

/// Compiles `workload` onto an arbitrary architecture instance — the entry
/// point design-space sweeps use for architectures outside the paper's fixed
/// [`ArchChoice`] set (e.g. points enumerated by
/// [`plaid_arch::enumerate::SpaceSpec`]).
///
/// Takes only `&` references to plain data and allocates everything it needs
/// per call, so it is safe to invoke concurrently from many threads.
///
/// # Errors
///
/// Returns a [`PipelineError`] if lowering, mapping or configuration
/// generation fails.
pub fn compile_workload_on(
    workload: &Workload,
    arch: &Architecture,
    mapper_choice: MapperChoice,
) -> Result<CompiledWorkload, PipelineError> {
    compile_workload_on_seeded(workload, arch, mapper_choice, None)
}

/// Like [`compile_workload_on`], but threads an optional warm-start hint
/// into the mapper: a canonical seed from a structurally identical fabric
/// replays exactly, a proven-infeasible ladder prefix is skipped, and a
/// foreign-fabric seed warm-starts the search heuristically. The produced
/// [`CompiledWorkload`] carries its own [`PlacementSeed`] (via
/// [`CompiledWorkload::summary`]) so sweeps can chain seeds across
/// neighbouring design points.
///
/// # Errors
///
/// Returns a [`PipelineError`] if lowering, mapping or configuration
/// generation fails.
pub fn compile_workload_on_seeded(
    workload: &Workload,
    arch: &Architecture,
    mapper_choice: MapperChoice,
    hint: Option<&MapSeed>,
) -> Result<CompiledWorkload, PipelineError> {
    let model = CostModel::default();
    let dfg = workload.lower()?;
    let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
    let stats = coverage(&dfg, &hdfg);
    let iterations = dfg.total_iterations();

    if mapper_choice == MapperChoice::Spatial {
        let schedule = SpatialMapper::default()
            .map_spatial(&dfg, arch)
            .map_err(PipelineError::Mapping)?;
        let cycles = schedule.total_cycles(iterations);
        let ii = schedule.partitions.iter().map(|p| p.ii).max().unwrap_or(1);
        let metrics = EvalMetrics::from_cycles(
            workload.name.clone(),
            mapper_choice.label(),
            arch,
            &model,
            ii,
            cycles,
        );
        return Ok(CompiledWorkload {
            name: workload.name.clone(),
            dfg,
            coverage: stats,
            mapping: None,
            spatial: Some(schedule),
            config: None,
            metrics,
            placement_seed: None,
            seed_outcome: SeedOutcome::Scratch,
        });
    }

    let seeded = match mapper_choice {
        MapperChoice::Sa => SaMapper::default().map_with_seed(&dfg, arch, hint),
        MapperChoice::PathFinder => PathFinderMapper::default().map_with_seed(&dfg, arch, hint),
        MapperChoice::Plaid => PlaidMapper::default().map_with_seed(&dfg, arch, hint),
        MapperChoice::Spatial => unreachable!("handled above"),
    }?;
    let SeededMapping {
        mapping,
        outcome,
        seed,
    } = seeded;
    let config = generate_config(&dfg, arch, &mapping).map_err(PipelineError::Config)?;
    let cycles = mapping.total_cycles(iterations);
    let metrics = EvalMetrics::from_cycles(
        workload.name.clone(),
        mapper_choice.label(),
        arch,
        &model,
        mapping.ii,
        cycles,
    );
    Ok(CompiledWorkload {
        name: workload.name.clone(),
        dfg,
        coverage: stats,
        mapping: Some(mapping),
        spatial: None,
        config: Some(config),
        metrics,
        placement_seed: Some(seed),
        seed_outcome: outcome,
    })
}

/// Default mapper used for an architecture in the paper's main comparison:
/// the Plaid mapper on Plaid fabrics, the better of the two generic mappers
/// on the spatio-temporal baseline, and the partitioner on spatial fabrics.
pub fn default_mapper_for(arch_choice: ArchChoice) -> MapperChoice {
    match arch_choice {
        ArchChoice::Plaid2x2 | ArchChoice::Plaid3x3 | ArchChoice::PlaidMl => MapperChoice::Plaid,
        ArchChoice::Spatial4x4 => MapperChoice::Spatial,
        _ => MapperChoice::Sa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_workloads::table2_workloads;

    fn workload(name: &str) -> Workload {
        table2_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("workload {name} not in registry"))
    }

    #[test]
    fn compiles_atax_on_all_three_main_architectures() {
        let w = workload("atax_u2");
        for (arch, mapper) in [
            (ArchChoice::SpatioTemporal4x4, MapperChoice::Sa),
            (ArchChoice::Spatial4x4, MapperChoice::Spatial),
            (ArchChoice::Plaid2x2, MapperChoice::Plaid),
        ] {
            let result = compile_workload(&w, arch, mapper).unwrap();
            assert!(result.metrics.cycles > 0, "{:?}", arch);
            assert!(result.metrics.power_uw > 0.0);
            if mapper == MapperChoice::Spatial {
                assert!(result.spatial.is_some());
            } else {
                assert!(result.mapping.is_some());
                assert!(result.config.is_some());
            }
        }
    }

    #[test]
    fn plaid_matches_spatio_temporal_performance_on_a_simple_kernel() {
        let w = workload("dwconv");
        let st = compile_workload(&w, ArchChoice::SpatioTemporal4x4, MapperChoice::Sa).unwrap();
        let pl = compile_workload(&w, ArchChoice::Plaid2x2, MapperChoice::Plaid).unwrap();
        let ratio = pl.metrics.cycles as f64 / st.metrics.cycles as f64;
        assert!(ratio <= 1.5, "plaid/st cycle ratio {ratio}");
        // And Plaid consumes less power for the same work.
        assert!(pl.metrics.power_uw < st.metrics.power_uw);
    }

    #[test]
    fn default_mappers_match_architectures() {
        assert_eq!(
            default_mapper_for(ArchChoice::Plaid2x2),
            MapperChoice::Plaid
        );
        assert_eq!(
            default_mapper_for(ArchChoice::Spatial4x4),
            MapperChoice::Spatial
        );
        assert_eq!(
            default_mapper_for(ArchChoice::SpatioTemporal4x4),
            MapperChoice::Sa
        );
    }

    #[test]
    fn coverage_statistics_accompany_every_compilation() {
        let w = workload("gemm_u2");
        let result = compile_workload(&w, ArchChoice::Plaid2x2, MapperChoice::Plaid).unwrap();
        assert_eq!(result.coverage.total_nodes, result.dfg.node_count());
        assert!(result.coverage.covered_nodes <= result.coverage.compute_nodes);
        assert!(result.ii() >= 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArchChoice::Plaid2x2.label(), "Plaid 2x2");
        assert_eq!(MapperChoice::PathFinder.label(), "PathFinder");
    }
}
