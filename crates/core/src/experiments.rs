//! Experiment runners: one per table / figure of the paper's evaluation.
//!
//! Every runner returns structured rows plus a plain-text rendering that
//! mirrors the corresponding table or figure series (normalized to the same
//! baseline the paper uses). The Criterion benches in `crates/bench` invoke
//! these runners and print their output, and EXPERIMENTS.md records the
//! paper-reported versus measured values.

use plaid_arch::Architecture;
use plaid_motif::{coverage, identify_motifs, IdentifyOptions};
use plaid_sim::cost::CostModel;
use plaid_workloads::{dnn_applications, table2_workloads, Workload};

use crate::pipeline::{compile_workload, ArchChoice, MapperChoice};
use crate::report::{geomean, ratio, render_table};

/// Selects how many of the 30 workloads an experiment runs over (useful to
/// keep unit tests fast while benches run everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScope {
    /// Number of workloads (after striding); `None` keeps all.
    pub workload_limit: Option<usize>,
    /// Keep every `stride`-th workload of the registry (1 keeps all). Striding
    /// preserves the domain mix while shrinking the run.
    pub stride: usize,
}

impl ExperimentScope {
    /// Full evaluation (all 30 workloads).
    pub const FULL: ExperimentScope = ExperimentScope {
        workload_limit: None,
        stride: 1,
    };

    /// Every other workload (15 of 30, spanning all three domains) — the
    /// default for the benchmark harness.
    pub const REPRESENTATIVE: ExperimentScope = ExperimentScope {
        workload_limit: None,
        stride: 2,
    };

    /// Reduced evaluation used by unit tests.
    pub const SMOKE: ExperimentScope = ExperimentScope {
        workload_limit: Some(4),
        stride: 1,
    };

    fn workloads(&self) -> Vec<Workload> {
        let mut all: Vec<Workload> = table2_workloads()
            .into_iter()
            .step_by(self.stride.max(1))
            .collect();
        if let Some(limit) = self.workload_limit {
            all.truncate(limit);
        }
        all
    }
}

/// One row of the main performance/energy/efficiency comparison
/// (Figures 12, 14 and 15 share the same underlying runs).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Workload name.
    pub kernel: String,
    /// Spatio-temporal baseline cycles.
    pub st_cycles: u64,
    /// Spatial baseline cycles.
    pub spatial_cycles: u64,
    /// Plaid cycles.
    pub plaid_cycles: u64,
    /// Spatio-temporal energy (nJ).
    pub st_energy: f64,
    /// Spatial energy (nJ).
    pub spatial_energy: f64,
    /// Plaid energy (nJ).
    pub plaid_energy: f64,
    /// Spatio-temporal performance per area (arbitrary units).
    pub st_perf_per_area: f64,
    /// Spatial performance per area.
    pub spatial_perf_per_area: f64,
    /// Plaid performance per area.
    pub plaid_perf_per_area: f64,
}

/// Result of the three-way comparison underlying Figures 12, 14 and 15.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonResult {
    /// Per-workload rows.
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonResult {
    /// Geometric-mean of Plaid cycles normalized to the spatio-temporal
    /// baseline (≈1.0 in the paper).
    pub fn plaid_vs_st_cycles(&self) -> f64 {
        geomean(
            self.rows
                .iter()
                .map(|r| r.plaid_cycles as f64 / r.st_cycles as f64),
        )
    }

    /// Geometric-mean of spatial cycles normalized to Plaid (≈1.4 in the
    /// paper).
    pub fn spatial_vs_plaid_cycles(&self) -> f64 {
        geomean(
            self.rows
                .iter()
                .map(|r| r.spatial_cycles as f64 / r.plaid_cycles as f64),
        )
    }

    /// Geometric-mean of Plaid energy normalized to the spatio-temporal
    /// baseline (≈0.58 in the paper).
    pub fn plaid_vs_st_energy(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.plaid_energy / r.st_energy))
    }

    /// Geometric-mean of Plaid energy normalized to the spatial baseline
    /// (≈0.72 in the paper).
    pub fn plaid_vs_spatial_energy(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.plaid_energy / r.spatial_energy))
    }

    /// Figure 12 rendering: cycles normalized to the spatio-temporal CGRA.
    pub fn render_performance(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.kernel.clone(),
                    // Normalization baseline: identically 1.00 by definition.
                    ratio(1.0),
                    ratio(r.spatial_cycles as f64 / r.st_cycles as f64),
                    ratio(r.plaid_cycles as f64 / r.st_cycles as f64),
                ]
            })
            .collect();
        render_table(
            "Figure 12: normalized cycles (lower is better, baseline = spatio-temporal)",
            &["kernel", "spatio-temporal", "spatial", "plaid"],
            &rows,
        )
    }

    /// Figure 14 rendering: energy normalized to the spatio-temporal CGRA.
    pub fn render_energy(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.kernel.clone(),
                    ratio(1.0),
                    ratio(r.spatial_energy / r.st_energy),
                    ratio(r.plaid_energy / r.st_energy),
                ]
            })
            .collect();
        render_table(
            "Figure 14: normalized total energy (lower is better, baseline = spatio-temporal)",
            &["kernel", "spatio-temporal", "spatial", "plaid"],
            &rows,
        )
    }

    /// Figure 15 rendering: performance per area normalized to the
    /// spatio-temporal CGRA.
    pub fn render_perf_per_area(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.kernel.clone(),
                    ratio(1.0),
                    ratio(r.spatial_perf_per_area / r.st_perf_per_area),
                    ratio(r.plaid_perf_per_area / r.st_perf_per_area),
                ]
            })
            .collect();
        render_table(
            "Figure 15: normalized performance per area (higher is better, baseline = spatio-temporal)",
            &["kernel", "spatio-temporal", "spatial", "plaid"],
            &rows,
        )
    }
}

/// Runs the three-way architecture comparison (Figures 12, 14, 15).
pub fn architecture_comparison(scope: ExperimentScope) -> ComparisonResult {
    let mut rows = Vec::new();
    for workload in scope.workloads() {
        let st = compile_workload(&workload, ArchChoice::SpatioTemporal4x4, MapperChoice::Sa);
        let sp = compile_workload(&workload, ArchChoice::Spatial4x4, MapperChoice::Spatial);
        let pl = compile_workload(&workload, ArchChoice::Plaid2x2, MapperChoice::Plaid);
        let (Ok(st), Ok(sp), Ok(pl)) = (st, sp, pl) else {
            continue;
        };
        rows.push(ComparisonRow {
            kernel: workload.name.clone(),
            st_cycles: st.metrics.cycles,
            spatial_cycles: sp.metrics.cycles,
            plaid_cycles: pl.metrics.cycles,
            st_energy: st.metrics.energy_nj,
            spatial_energy: sp.metrics.energy_nj,
            plaid_energy: pl.metrics.energy_nj,
            st_perf_per_area: st.metrics.perf_per_area(),
            spatial_perf_per_area: sp.metrics.perf_per_area(),
            plaid_perf_per_area: pl.metrics.perf_per_area(),
        });
    }
    ComparisonResult { rows }
}

/// Figure 2: fabric power breakdown of the spatio-temporal baseline and Plaid.
pub fn power_breakdown() -> String {
    let model = CostModel::default();
    let st = ArchChoice::SpatioTemporal4x4.build();
    let pl = ArchChoice::Plaid2x2.build();
    let rows = |arch: &Architecture| {
        let p = model.fabric_power(arch);
        vec![
            arch.name().to_string(),
            format!("{:.1}", p.total()),
            format!("{:.0}%", p.share(p.routers()) * 100.0),
            format!("{:.0}%", p.share(p.comm_config) * 100.0),
            format!("{:.0}%", p.share(p.compute_config) * 100.0),
            format!("{:.0}%", p.share(p.compute) * 100.0),
            format!("{:.0}%", p.share(p.others) * 100.0),
        ]
    };
    let reduction = 1.0 - model.fabric_power(&pl).total() / model.fabric_power(&st).total();
    let mut out = render_table(
        "Figure 2: fabric power distribution",
        &[
            "architecture",
            "total µW",
            "routers",
            "comm cfg",
            "compute cfg",
            "compute",
            "others",
        ],
        &[rows(&st), rows(&pl)],
    );
    out.push_str(&format!(
        "Plaid power reduction vs spatio-temporal: {:.1}%\n",
        reduction * 100.0
    ));
    out
}

/// Figure 13: area breakdown of the Plaid fabric.
pub fn area_breakdown() -> String {
    let model = CostModel::default();
    let pl = ArchChoice::Plaid2x2.build();
    let a = model.fabric_area(&pl);
    let rows = vec![vec![
        format!("{:.0}", a.total()),
        format!("{:.0}%", a.share(a.local_routers) * 100.0),
        format!("{:.0}%", a.share(a.global_routers) * 100.0),
        format!("{:.0}%", a.share(a.compute_config) * 100.0),
        format!("{:.0}%", a.share(a.comm_config) * 100.0),
        format!("{:.0}%", a.share(a.compute) * 100.0),
        format!("{:.0}%", a.share(a.others) * 100.0),
    ]];
    render_table(
        "Figure 13: Plaid fabric area breakdown",
        &[
            "total µm²",
            "local router",
            "global router",
            "cfg compute",
            "cfg comm",
            "compute",
            "others",
        ],
        &rows,
    )
}

/// Table 2: workload characteristics (nodes, compute nodes, motif-covered
/// nodes).
pub fn table2_characteristics(scope: ExperimentScope) -> String {
    let mut rows = Vec::new();
    for workload in scope.workloads() {
        let Ok(dfg) = workload.lower() else { continue };
        let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
        let stats = coverage(&dfg, &hdfg);
        rows.push(vec![
            workload.name.clone(),
            workload.domain.label().to_string(),
            stats.total_nodes.to_string(),
            stats.compute_nodes.to_string(),
            stats.covered_nodes.to_string(),
        ]);
    }
    render_table(
        "Table 2: workload characteristics (nodes, compute nodes, motif-covered nodes)",
        &["kernel", "domain", "nodes", "compute", "covered"],
        &rows,
    )
}

/// One row of the mapper ablation (Figure 18).
#[derive(Debug, Clone, PartialEq)]
pub struct MapperRow {
    /// Workload name.
    pub kernel: String,
    /// Cycles with the PathFinder mapper on Plaid.
    pub pathfinder_cycles: u64,
    /// Cycles with the SA mapper on Plaid.
    pub sa_cycles: u64,
    /// Cycles with the Plaid mapper on Plaid.
    pub plaid_cycles: u64,
}

/// Figure 18: mapper comparison on the Plaid architecture.
pub fn mapper_comparison(scope: ExperimentScope) -> (Vec<MapperRow>, String) {
    let mut rows = Vec::new();
    for workload in scope.workloads() {
        let pf = compile_workload(&workload, ArchChoice::Plaid2x2, MapperChoice::PathFinder);
        let sa = compile_workload(&workload, ArchChoice::Plaid2x2, MapperChoice::Sa);
        let pl = compile_workload(&workload, ArchChoice::Plaid2x2, MapperChoice::Plaid);
        let Ok(pl) = pl else { continue };
        // Generic mappers may fail on the trimmed-down fabric for complex
        // DFGs — exactly the effect Figure 18 highlights. Failures are charged
        // the configuration-memory bound (the mapper gave up at max II).
        let fallback = |r: Result<crate::pipeline::CompiledWorkload, _>| match r {
            Ok(c) => c.metrics.cycles,
            Err(_) => {
                let max_ii = u64::from(ArchChoice::Plaid2x2.build().params().max_ii());
                pl.dfg.total_iterations() * max_ii
            }
        };
        rows.push(MapperRow {
            kernel: workload.name.clone(),
            pathfinder_cycles: fallback(pf),
            sa_cycles: fallback(sa),
            plaid_cycles: pl.metrics.cycles,
        });
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                ratio(r.pathfinder_cycles as f64 / r.plaid_cycles as f64),
                ratio(r.sa_cycles as f64 / r.plaid_cycles as f64),
                ratio(1.0),
            ]
        })
        .collect();
    let text = render_table(
        "Figure 18: cycles on Plaid, normalized to the Plaid mapper (lower is better)",
        &["kernel", "PathFinder", "SA", "Plaid mapper"],
        &table_rows,
    );
    (rows, text)
}

/// One row of the scalability study (Figure 17).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityRow {
    /// Workload name.
    pub kernel: String,
    /// Cycles on the 2×2 PCU array.
    pub plaid_2x2_cycles: u64,
    /// Cycles on the 3×3 PCU array.
    pub plaid_3x3_cycles: u64,
}

/// Figure 17: 2×2 versus 3×3 Plaid.
///
/// As in the paper, workloads whose performance is limited by inter-iteration
/// dependencies (RecMII ≥ ResMII on the 2×2 array) are excluded, because a
/// larger array cannot help them.
pub fn scalability(scope: ExperimentScope) -> (Vec<ScalabilityRow>, String) {
    let mut rows = Vec::new();
    for workload in scope.workloads() {
        let Ok(dfg) = workload.lower() else { continue };
        let small_arch = ArchChoice::Plaid2x2.build();
        let res = plaid_mapper_res_mii(&dfg, &small_arch);
        let rec = plaid_mapper_rec_mii(&dfg);
        if rec >= res {
            continue;
        }
        let small = compile_workload(&workload, ArchChoice::Plaid2x2, MapperChoice::Plaid);
        let large = compile_workload(&workload, ArchChoice::Plaid3x3, MapperChoice::Plaid);
        let (Ok(small), Ok(large)) = (small, large) else {
            continue;
        };
        rows.push(ScalabilityRow {
            kernel: workload.name.clone(),
            plaid_2x2_cycles: small.metrics.cycles,
            plaid_3x3_cycles: large.metrics.cycles,
        });
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                ratio(1.0),
                ratio(r.plaid_3x3_cycles as f64 / r.plaid_2x2_cycles as f64),
            ]
        })
        .collect();
    let speedup = geomean(
        rows.iter()
            .map(|r| r.plaid_2x2_cycles as f64 / r.plaid_3x3_cycles as f64),
    );
    let mut text = render_table(
        "Figure 17: normalized cycles, 3x3 Plaid vs 2x2 Plaid (lower is better)",
        &["kernel", "2x2 (4 PCUs)", "3x3 (9 PCUs)"],
        &table_rows,
    );
    text.push_str(&format!("geomean speedup of 3x3 over 2x2: {speedup:.2}x\n"));
    (rows, text)
}

fn plaid_mapper_res_mii(dfg: &plaid_dfg::Dfg, arch: &Architecture) -> u32 {
    plaid_mapper::res_mii(dfg, arch)
}

fn plaid_mapper_rec_mii(dfg: &plaid_dfg::Dfg) -> u32 {
    plaid_mapper::rec_mii(dfg)
}

/// One row of the DNN application study (Figure 16).
#[derive(Debug, Clone, PartialEq)]
pub struct DnnRow {
    /// Application name.
    pub application: String,
    /// Total cycles on the spatial baseline.
    pub spatial_cycles: u64,
    /// Total cycles on Plaid.
    pub plaid_cycles: u64,
    /// Total energy (nJ) on the spatial baseline.
    pub spatial_energy: f64,
    /// Total energy (nJ) on Plaid.
    pub plaid_energy: f64,
    /// Performance per area on the spatial baseline.
    pub spatial_perf_per_area: f64,
    /// Performance per area on Plaid.
    pub plaid_perf_per_area: f64,
}

/// Figure 16: application-level comparison of the spatial baseline and Plaid
/// on the three DNN applications.
pub fn dnn_comparison() -> (Vec<DnnRow>, String) {
    let model = CostModel::default();
    let spatial_arch = ArchChoice::Spatial4x4.build();
    let plaid_arch = ArchChoice::Plaid2x2.build();
    let mut rows = Vec::new();
    for app in dnn_applications() {
        let mut spatial_cycles = 0u64;
        let mut plaid_cycles = 0u64;
        for layer in &app.layers {
            let workload = Workload {
                name: layer.name.clone(),
                domain: plaid_workloads::Domain::MachineLearning,
                kernel: layer.kernel.clone(),
                unroll: layer.unroll,
            };
            let sp = compile_workload(&workload, ArchChoice::Spatial4x4, MapperChoice::Spatial);
            let pl = compile_workload(&workload, ArchChoice::Plaid2x2, MapperChoice::Plaid);
            let (Ok(sp), Ok(pl)) = (sp, pl) else { continue };
            spatial_cycles += sp.metrics.cycles * layer.invocations;
            plaid_cycles += pl.metrics.cycles * layer.invocations;
        }
        let spatial_energy = model.energy_nj(&spatial_arch, spatial_cycles);
        let plaid_energy = model.energy_nj(&plaid_arch, plaid_cycles);
        let spatial_area = model.fabric_area(&spatial_arch).total();
        let plaid_area = model.fabric_area(&plaid_arch).total();
        rows.push(DnnRow {
            application: app.name.clone(),
            spatial_cycles,
            plaid_cycles,
            spatial_energy,
            plaid_energy,
            spatial_perf_per_area: 1.0e9 / (spatial_cycles as f64 * spatial_area),
            plaid_perf_per_area: 1.0e9 / (plaid_cycles as f64 * plaid_area),
        });
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.application.clone(),
                ratio(r.spatial_energy / r.plaid_energy),
                ratio(r.spatial_perf_per_area / r.plaid_perf_per_area),
            ]
        })
        .collect();
    let text = render_table(
        "Figure 16: spatial CGRA vs Plaid on DNN applications (normalized to Plaid)",
        &[
            "application",
            "energy (spatial/plaid)",
            "perf/area (spatial/plaid)",
        ],
        &table_rows,
    );
    (rows, text)
}

/// One row of the domain-specialization study (Figure 19).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecializationRow {
    /// Architecture label (ST, ST-ML, Plaid, Plaid-ML).
    pub arch: String,
    /// Total cycles over the ML kernels.
    pub cycles: u64,
    /// Total energy in nJ.
    pub energy_nj: f64,
    /// Performance per area.
    pub perf_per_area: f64,
}

/// Figure 19: domain specialization comparison on the machine-learning
/// kernels (ST, ST-ML, Plaid, Plaid-ML), normalized to Plaid in the
/// rendering.
pub fn domain_specialization() -> (Vec<SpecializationRow>, String) {
    let model = CostModel::default();
    let ml_workloads: Vec<Workload> = table2_workloads()
        .into_iter()
        .filter(|w| w.domain == plaid_workloads::Domain::MachineLearning)
        .collect();
    let configs = [
        (ArchChoice::SpatioTemporal4x4, MapperChoice::Sa, "ST"),
        (ArchChoice::SpatioTemporalMl, MapperChoice::Sa, "ST-ML"),
        (ArchChoice::Plaid2x2, MapperChoice::Plaid, "Plaid"),
        (ArchChoice::PlaidMl, MapperChoice::Plaid, "Plaid-ML"),
    ];
    let mut rows = Vec::new();
    for (arch_choice, mapper, label) in configs {
        let arch = arch_choice.build();
        let mut cycles = 0u64;
        for w in &ml_workloads {
            if let Ok(c) = compile_workload(w, arch_choice, mapper) {
                cycles += c.metrics.cycles;
            }
        }
        let energy = model.energy_nj(&arch, cycles);
        let area = model.fabric_area(&arch).total();
        rows.push(SpecializationRow {
            arch: label.to_string(),
            cycles,
            energy_nj: energy,
            perf_per_area: if cycles > 0 {
                1.0e9 / (cycles as f64 * area)
            } else {
                0.0
            },
        });
    }
    let plaid_row = rows.iter().find(|r| r.arch == "Plaid").cloned();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (e, p) = match &plaid_row {
                Some(base) => (
                    r.energy_nj / base.energy_nj,
                    r.perf_per_area / base.perf_per_area,
                ),
                None => (1.0, 1.0),
            };
            vec![r.arch.clone(), ratio(e), ratio(p)]
        })
        .collect();
    let text = render_table(
        "Figure 19: domain specialization on ML kernels (normalized to Plaid)",
        &["architecture", "energy", "perf/area"],
        &table_rows,
    );
    (rows, text)
}

/// Section 7 headline numbers: power/area/performance of Plaid versus both
/// baselines.
pub fn headline_summary(scope: ExperimentScope) -> String {
    let model = CostModel::default();
    let st = ArchChoice::SpatioTemporal4x4.build();
    let sp = ArchChoice::Spatial4x4.build();
    let pl = ArchChoice::Plaid2x2.build();
    let comparison = architecture_comparison(scope);
    let power_red = 1.0 - model.fabric_power(&pl).total() / model.fabric_power(&st).total();
    let area_red_st = 1.0 - model.fabric_area(&pl).total() / model.fabric_area(&st).total();
    let area_red_sp = 1.0 - model.fabric_area(&pl).total() / model.fabric_area(&sp).total();
    let rows = vec![
        vec![
            "power reduction vs spatio-temporal".into(),
            format!("{:.0}%", power_red * 100.0),
            "43%".into(),
        ],
        vec![
            "area reduction vs spatio-temporal".into(),
            format!("{:.0}%", area_red_st * 100.0),
            "46%".into(),
        ],
        vec![
            "area reduction vs spatial".into(),
            format!("{:.0}%", area_red_sp * 100.0),
            "48%".into(),
        ],
        vec![
            "performance vs spatial".into(),
            format!("{:.2}x", comparison.spatial_vs_plaid_cycles()),
            "1.40x".into(),
        ],
        vec![
            "performance vs spatio-temporal".into(),
            format!("{:.2}x", 1.0 / comparison.plaid_vs_st_cycles()),
            "~1.0x".into(),
        ],
        vec![
            "energy vs spatio-temporal".into(),
            format!(
                "{:.0}% lower",
                (1.0 - comparison.plaid_vs_st_energy()) * 100.0
            ),
            "42% lower".into(),
        ],
        vec![
            "energy vs spatial".into(),
            format!(
                "{:.0}% lower",
                (1.0 - comparison.plaid_vs_spatial_energy()) * 100.0
            ),
            "27.7% lower".into(),
        ],
    ];
    render_table(
        "Headline summary (measured vs paper-reported)",
        &["metric", "measured", "paper"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_and_area_breakdowns_render() {
        let p = power_breakdown();
        assert!(p.contains("Figure 2"));
        assert!(p.contains("plaid-2x2"));
        let a = area_breakdown();
        assert!(a.contains("Figure 13"));
    }

    #[test]
    fn table2_renders_rows_for_the_scope() {
        let t = table2_characteristics(ExperimentScope::SMOKE);
        assert!(t.contains("atax_u2"));
        assert!(t.contains("covered"));
    }

    #[test]
    fn architecture_comparison_preserves_the_papers_shape() {
        let result = architecture_comparison(ExperimentScope::SMOKE);
        assert!(!result.rows.is_empty());
        // Plaid tracks the spatio-temporal baseline closely...
        let plaid_vs_st = result.plaid_vs_st_cycles();
        assert!(plaid_vs_st < 1.5, "plaid vs st {plaid_vs_st}");
        // ...and Plaid consumes less energy than the baseline.
        assert!(result.plaid_vs_st_energy() < 0.9);
        let text = result.render_performance();
        assert!(text.contains("Figure 12"));
        assert!(result.render_energy().contains("Figure 14"));
        assert!(result.render_perf_per_area().contains("Figure 15"));
    }

    #[test]
    fn mapper_comparison_runs_on_a_subset() {
        let (rows, text) = mapper_comparison(ExperimentScope {
            workload_limit: Some(2),
            stride: 1,
        });
        assert!(!rows.is_empty());
        assert!(text.contains("Figure 18"));
        for r in &rows {
            assert!(r.plaid_cycles > 0);
            assert!(r.sa_cycles > 0);
            assert!(r.pathfinder_cycles > 0);
        }
    }

    #[test]
    fn domain_specialization_orders_architectures() {
        let (rows, text) = domain_specialization();
        assert!(text.contains("Figure 19"));
        let find = |label: &str| rows.iter().find(|r| r.arch == label).unwrap().clone();
        let st = find("ST");
        let st_ml = find("ST-ML");
        let plaid = find("Plaid");
        let plaid_ml = find("Plaid-ML");
        // Specialization helps each family; Plaid beats the specialized
        // baseline (the paper's key claim in Section 7.3).
        assert!(st_ml.energy_nj < st.energy_nj);
        assert!(plaid_ml.energy_nj < plaid.energy_nj);
        assert!(plaid.energy_nj < st_ml.energy_nj);
        assert!(plaid.perf_per_area > st_ml.perf_per_area);
    }
}
