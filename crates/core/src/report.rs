//! Plain-text table rendering for experiment results.

use serde::{Deserialize, Serialize};

/// A rendered-result table in structured form: what the experiment runners
/// produce before formatting, and what sweep tooling serializes to JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table from borrowed headers.
    pub fn new(title: impl Into<String>, header: &[&str], rows: Vec<Vec<String>>) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let header: Vec<&str> = self.header.iter().map(String::as_str).collect();
        render_table(&self.title, &header, &self.rows)
    }
}

/// Renders a table with a header row and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:<width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio with two decimal places.
pub fn ratio(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a percentage with one decimal place.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Geometric-mean helper used for normalized summaries.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut product = 0.0f64;
    let mut count = 0usize;
    for v in values {
        if v > 0.0 {
            product += v.ln();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (product / count as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_header_and_rows() {
        let table = render_table(
            "Demo",
            &["kernel", "cycles"],
            &[
                vec!["atax_u2".into(), "123".into()],
                vec!["gemm_u4".into(), "4567".into()],
            ],
        );
        assert!(table.contains("Demo"));
        assert!(table.contains("kernel"));
        assert!(table.contains("atax_u2"));
        assert!(table.contains("4567"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.379), "1.38");
        assert_eq!(percent(0.431), "43.1%");
    }

    #[test]
    fn geomean_of_identical_values() {
        let g = geomean([2.0, 2.0, 2.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(Vec::<f64>::new()), 0.0);
    }
}
