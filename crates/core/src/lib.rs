//! End-to-end Plaid compilation and evaluation pipeline.
//!
//! This crate ties the substrates together into the public API a user of the
//! reproduction works with:
//!
//! * [`pipeline`] — compile a kernel (or a Table 2 workload) onto any of the
//!   modelled architectures with any of the mappers, obtaining a validated
//!   mapping, a configuration image and evaluation metrics.
//! * [`experiments`] — one runner per table/figure of the paper's evaluation
//!   (performance, energy, performance/area, DNN applications, scalability,
//!   mapper ablation, domain specialization, power/area breakdowns).
//! * [`report`] — plain-text table rendering used by the benches and
//!   examples to print the same rows the paper reports.
//!
//! # Quickstart
//!
//! ```
//! use plaid::pipeline::{compile_workload, ArchChoice, MapperChoice};
//! use plaid_workloads::table2_workloads;
//!
//! let workload = &table2_workloads()[0]; // atax_u2
//! let result = compile_workload(workload, ArchChoice::Plaid2x2, MapperChoice::Plaid).unwrap();
//! assert!(result.metrics.cycles > 0);
//! assert!(result.mapping.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod pipeline;
pub mod report;

pub use pipeline::{
    compile_workload, compile_workload_on, default_mapper_for, ArchChoice, CompileSummary,
    CompiledWorkload, MapperChoice, PipelineError,
};
