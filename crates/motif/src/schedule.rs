//! Flexible motif schedule templates (Section 5.2).
//!
//! A schedule template assigns each node of a motif to one of the three ALUs
//! of a PCU and to a cycle offset relative to the motif's start cycle. The
//! paper shows that allowing "reversed" and "stretched" templates (rather
//! than a strict left-to-right order) noticeably improves utilization of the
//! motif compute unit (Figure 11).

use crate::motif::MotifKind;

/// Placement of one motif node on the PCU's ALU row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleSlot {
    /// Index of the node within [`crate::Motif::nodes`].
    pub node: usize,
    /// ALU index within the PCU (0 = leftmost, 2 = rightmost).
    pub alu: usize,
    /// Cycle offset relative to the motif's start cycle.
    pub cycle: u32,
}

/// A complete schedule template for one motif.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotifSchedule {
    /// One slot per motif node.
    pub slots: Vec<ScheduleSlot>,
}

impl MotifSchedule {
    fn new(slots: &[(usize, usize, u32)]) -> Self {
        MotifSchedule {
            slots: slots
                .iter()
                .map(|&(node, alu, cycle)| ScheduleSlot { node, alu, cycle })
                .collect(),
        }
    }

    /// Latest cycle offset used by the template.
    pub fn span(&self) -> u32 {
        self.slots.iter().map(|s| s.cycle).max().unwrap_or(0)
    }

    /// Slot of a given motif-node index.
    pub fn slot_of(&self, node: usize) -> Option<ScheduleSlot> {
        self.slots.iter().copied().find(|s| s.node == node)
    }

    /// Checks that every internal dependency of `kind` is satisfied: each
    /// consumer is scheduled at least one cycle after its producer, and no two
    /// nodes share an ALU in the same cycle.
    pub fn respects_dependencies(&self, kind: MotifKind) -> bool {
        let dep_pairs: Vec<(usize, usize)> = match kind {
            MotifKind::FanIn => vec![(0, 2), (1, 2)],
            MotifKind::FanOut => vec![(0, 1), (0, 2)],
            MotifKind::Unicast => vec![(0, 1), (1, 2)],
            MotifKind::Pair => vec![(0, 1)],
        };
        for (producer, consumer) in dep_pairs {
            let (Some(p), Some(c)) = (self.slot_of(producer), self.slot_of(consumer)) else {
                return false;
            };
            if c.cycle <= p.cycle {
                return false;
            }
        }
        for (i, a) in self.slots.iter().enumerate() {
            for b in &self.slots[i + 1..] {
                if a.alu == b.alu && a.cycle == b.cycle {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the template uses the registered ALU-to-ALU bypass path for the
    /// internal edge `producer -> consumer` (adjacent ALUs, left to right, one
    /// cycle apart).
    pub fn uses_bypass(&self, producer: usize, consumer: usize) -> bool {
        match (self.slot_of(producer), self.slot_of(consumer)) {
            (Some(p), Some(c)) => c.alu == p.alu + 1 && c.cycle == p.cycle + 1,
            _ => false,
        }
    }
}

/// Returns the schedule templates for a motif kind, in preference order
/// (templates that finish earlier and use bypass paths come first).
pub fn schedule_templates(kind: MotifKind) -> Vec<MotifSchedule> {
    match kind {
        MotifKind::FanOut => vec![
            // Producer first, both consumers the next cycle.
            MotifSchedule::new(&[(0, 0, 0), (1, 1, 1), (2, 2, 1)]),
            MotifSchedule::new(&[(0, 0, 0), (1, 1, 1), (2, 2, 2)]),
            MotifSchedule::new(&[(0, 0, 0), (1, 1, 2), (2, 2, 1)]),
            // Reversed ALU order (producer on the rightmost ALU).
            MotifSchedule::new(&[(0, 2, 0), (1, 1, 1), (2, 0, 1)]),
            MotifSchedule::new(&[(0, 2, 0), (1, 1, 1), (2, 0, 2)]),
            MotifSchedule::new(&[(0, 2, 0), (1, 1, 2), (2, 0, 1)]),
        ],
        MotifKind::FanIn => vec![
            // Both producers in the same cycle, consumer the next cycle.
            MotifSchedule::new(&[(0, 0, 0), (1, 1, 0), (2, 2, 1)]),
            MotifSchedule::new(&[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            MotifSchedule::new(&[(0, 0, 0), (1, 2, 0), (2, 1, 1)]),
            // Staggered producers.
            MotifSchedule::new(&[(0, 0, 0), (1, 1, 1), (2, 2, 2)]),
            MotifSchedule::new(&[(0, 2, 0), (1, 1, 1), (2, 0, 2)]),
        ],
        MotifKind::Unicast => vec![
            // Left-to-right pipeline (uses both bypass paths).
            MotifSchedule::new(&[(0, 0, 0), (1, 1, 1), (2, 2, 2)]),
            // Reversed order (no bypass, local router carries the edges).
            MotifSchedule::new(&[(0, 2, 0), (1, 1, 1), (2, 0, 2)]),
            // Folded variants freeing one ALU for another motif.
            MotifSchedule::new(&[(0, 0, 0), (1, 1, 1), (2, 0, 2)]),
            MotifSchedule::new(&[(0, 1, 0), (1, 2, 1), (2, 1, 2)]),
        ],
        MotifKind::Pair => vec![
            MotifSchedule::new(&[(0, 0, 0), (1, 1, 1)]),
            MotifSchedule::new(&[(0, 1, 0), (1, 2, 1)]),
            MotifSchedule::new(&[(0, 2, 0), (1, 1, 1)]),
            MotifSchedule::new(&[(0, 0, 0), (1, 0, 1)]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_template_respects_dependencies() {
        for kind in [
            MotifKind::FanIn,
            MotifKind::FanOut,
            MotifKind::Unicast,
            MotifKind::Pair,
        ] {
            let templates = schedule_templates(kind);
            assert!(!templates.is_empty());
            for (i, t) in templates.iter().enumerate() {
                assert!(
                    t.respects_dependencies(kind),
                    "{kind:?} template {i} violates a dependency"
                );
                assert_eq!(t.slots.len(), kind.node_count());
            }
        }
    }

    #[test]
    fn fan_out_has_six_templates_like_the_paper() {
        assert_eq!(schedule_templates(MotifKind::FanOut).len(), 6);
    }

    #[test]
    fn templates_fit_within_three_alus() {
        for kind in [
            MotifKind::FanIn,
            MotifKind::FanOut,
            MotifKind::Unicast,
            MotifKind::Pair,
        ] {
            for t in schedule_templates(kind) {
                assert!(t.slots.iter().all(|s| s.alu < 3));
            }
        }
    }

    #[test]
    fn unicast_primary_template_uses_bypass_paths() {
        let t = &schedule_templates(MotifKind::Unicast)[0];
        assert!(t.uses_bypass(0, 1));
        assert!(t.uses_bypass(1, 2));
        assert_eq!(t.span(), 2);
    }

    #[test]
    fn reversed_unicast_does_not_use_bypass() {
        let t = &schedule_templates(MotifKind::Unicast)[1];
        assert!(!t.uses_bypass(0, 1));
        assert!(!t.uses_bypass(1, 2));
        assert!(t.respects_dependencies(MotifKind::Unicast));
    }

    #[test]
    fn span_and_slot_queries() {
        let t = &schedule_templates(MotifKind::FanIn)[0];
        assert_eq!(t.span(), 1);
        assert_eq!(t.slot_of(2).unwrap().alu, 2);
        assert!(t.slot_of(5).is_none());
    }

    #[test]
    fn same_alu_same_cycle_is_rejected() {
        let bad = MotifSchedule::new(&[(0, 0, 0), (1, 0, 0), (2, 1, 1)]);
        assert!(!bad.respects_dependencies(MotifKind::FanIn));
    }
}
