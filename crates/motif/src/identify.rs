//! Algorithm 1: motif generation.
//!
//! The algorithm greedily seeds a motif cover by traversing the DFG in
//! topological order, then iteratively improves it: break a random motif,
//! shuffle the standalone nodes and regrow motifs from them, keeping the new
//! cover whenever the motif count increases. The process stops when the count
//! no longer improves (or a patience budget is exhausted), or when motifs
//! outnumber standalone nodes — the latter keeps the PCU's ALSU busy, as
//! discussed in Section 5.2.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use plaid_dfg::{Dfg, NodeId};

use crate::hierarchy::HierarchicalDfg;
use crate::motif::{Motif, MotifKind};

/// Options for [`identify_motifs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifyOptions {
    /// Seed of the pseudo-random generator used by the iterative phase;
    /// identical seeds give identical covers.
    pub seed: u64,
    /// Maximum break-and-regrow rounds.
    pub max_rounds: usize,
    /// Rounds without improvement tolerated before stopping.
    pub patience: usize,
    /// Also form two-node pair motifs from leftover standalone compute nodes.
    /// Disabled by default so that coverage statistics count three-node
    /// motifs, as Table 2 does.
    pub allow_pairs: bool,
}

impl Default for IdentifyOptions {
    fn default() -> Self {
        IdentifyOptions {
            seed: 0xC0FF_EE00,
            max_rounds: 64,
            patience: 8,
            allow_pairs: false,
        }
    }
}

/// Runs Algorithm 1 on `dfg` and returns the hierarchical DFG.
pub fn identify_motifs(dfg: &Dfg, options: &IdentifyOptions) -> HierarchicalDfg {
    let mut rng = SmallRng::seed_from_u64(options.seed);

    // Line 1: greedy initial cover in topological order.
    let order = dfg
        .topological_order()
        .unwrap_or_else(|_| dfg.node_ids().collect());
    let mut motifs = greedy_cover(dfg, &order);

    // Lines 2-7: iterative break-and-regrow refinement.
    let mut stale = 0usize;
    for _ in 0..options.max_rounds {
        if stale >= options.patience {
            break;
        }
        let standalone_count =
            dfg.node_count() - motifs.iter().map(|m| m.nodes.len()).sum::<usize>();
        if motifs.len() > standalone_count {
            break;
        }
        let mut candidate = motifs.clone();
        if !candidate.is_empty() {
            let victim = rng.gen_range(0..candidate.len());
            candidate.swap_remove(victim);
        }
        let mut covered: HashSet<NodeId> = candidate
            .iter()
            .flat_map(|m| m.nodes.iter().copied())
            .collect();
        let mut standalone: Vec<NodeId> = dfg
            .node_ids()
            .filter(|&n| dfg.node(n).is_compute() && !covered.contains(&n))
            .collect();
        standalone.shuffle(&mut rng);
        for node in standalone {
            if covered.contains(&node) {
                continue;
            }
            if let Some(motif) = match_pattern(dfg, node, &covered) {
                for &n in &motif.nodes {
                    covered.insert(n);
                }
                candidate.push(motif);
            }
        }
        if candidate.len() > motifs.len() {
            motifs = candidate;
            stale = 0;
        } else {
            stale += 1;
        }
    }

    if options.allow_pairs {
        append_pairs(dfg, &mut motifs);
    }
    HierarchicalDfg::new(dfg, motifs)
}

/// Greedy seeding: walk the DFG in the given order and grab the first pattern
/// that fits each still-uncovered compute node.
fn greedy_cover(dfg: &Dfg, order: &[NodeId]) -> Vec<Motif> {
    let mut covered: HashSet<NodeId> = HashSet::new();
    let mut motifs = Vec::new();
    for &node in order {
        if covered.contains(&node) || !dfg.node(node).is_compute() {
            continue;
        }
        if let Some(motif) = match_pattern(dfg, node, &covered) {
            for &n in &motif.nodes {
                covered.insert(n);
            }
            motifs.push(motif);
        }
    }
    motifs
}

/// Uncovered compute-node data predecessors of `node`.
fn free_preds(dfg: &Dfg, node: NodeId, covered: &HashSet<NodeId>) -> Vec<NodeId> {
    let mut preds: Vec<NodeId> = dfg
        .in_edges(node)
        .filter(|e| !e.kind.is_recurrence())
        .map(|e| e.src)
        .filter(|&p| p != node && dfg.node(p).is_compute() && !covered.contains(&p))
        .collect();
    preds.sort_unstable();
    preds.dedup();
    preds
}

/// Uncovered compute-node data successors of `node`.
fn free_succs(dfg: &Dfg, node: NodeId, covered: &HashSet<NodeId>) -> Vec<NodeId> {
    let mut succs: Vec<NodeId> = dfg
        .out_edges(node)
        .filter(|e| !e.kind.is_recurrence())
        .map(|e| e.dst)
        .filter(|&s| s != node && dfg.node(s).is_compute() && !covered.contains(&s))
        .collect();
    succs.sort_unstable();
    succs.dedup();
    succs
}

/// Finds a three-node motif containing `node`, built only from uncovered
/// compute nodes, trying fan-in, fan-out and unicast in all orientations.
pub(crate) fn match_pattern(dfg: &Dfg, node: NodeId, covered: &HashSet<NodeId>) -> Option<Motif> {
    if covered.contains(&node) || !dfg.node(node).is_compute() {
        return None;
    }
    let preds = free_preds(dfg, node, covered);
    let succs = free_succs(dfg, node, covered);

    // Fan-in with `node` as the consumer.
    if preds.len() >= 2 {
        return Some(Motif::new(MotifKind::FanIn, vec![preds[0], preds[1], node]));
    }
    // Fan-out with `node` as the producer.
    if succs.len() >= 2 && succs[0] != succs[1] {
        return Some(Motif::new(
            MotifKind::FanOut,
            vec![node, succs[0], succs[1]],
        ));
    }
    // Unicast with `node` in the middle.
    if let (Some(&p), Some(&s)) = (preds.first(), succs.first()) {
        if p != s {
            return Some(Motif::new(MotifKind::Unicast, vec![p, node, s]));
        }
    }
    // Unicast with `node` at the head: node -> s -> ss.
    if let Some(&s) = succs.first() {
        let mut below = free_succs(dfg, s, covered);
        below.retain(|&x| x != node && x != s);
        if let Some(&ss) = below.first() {
            return Some(Motif::new(MotifKind::Unicast, vec![node, s, ss]));
        }
        // Fan-in with `node` as one producer: node -> s <- other.
        let mut other = free_preds(dfg, s, covered);
        other.retain(|&x| x != node && x != s);
        if let Some(&o) = other.first() {
            return Some(Motif::new(MotifKind::FanIn, vec![node, o, s]));
        }
    }
    // Unicast with `node` at the tail: pp -> p -> node.
    if let Some(&p) = preds.first() {
        let mut above = free_preds(dfg, p, covered);
        above.retain(|&x| x != node && x != p);
        if let Some(&pp) = above.first() {
            return Some(Motif::new(MotifKind::Unicast, vec![pp, p, node]));
        }
        // Fan-out with `node` as one consumer: p -> node, p -> other.
        let mut other = free_succs(dfg, p, covered);
        other.retain(|&x| x != node && x != p);
        if let Some(&o) = other.first() {
            return Some(Motif::new(MotifKind::FanOut, vec![p, node, o]));
        }
    }
    None
}

/// Greedily appends two-node pair motifs over the remaining standalone nodes.
fn append_pairs(dfg: &Dfg, motifs: &mut Vec<Motif>) {
    let mut covered: HashSet<NodeId> = motifs
        .iter()
        .flat_map(|m| m.nodes.iter().copied())
        .collect();
    let order = dfg
        .topological_order()
        .unwrap_or_else(|_| dfg.node_ids().collect());
    for &node in &order {
        if covered.contains(&node) || !dfg.node(node).is_compute() {
            continue;
        }
        let succs = free_succs(dfg, node, &covered);
        if let Some(&s) = succs.first() {
            covered.insert(node);
            covered.insert(s);
            motifs.push(Motif::new(MotifKind::Pair, vec![node, s]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::{EdgeKind, Op, Operand};

    /// The Figure 4 body: c = b[i]*k + a[i]*j; k = d[i] >> 4; out += c + f[j].
    fn figure4_dfg() -> Dfg {
        let kernel = KernelBuilder::new("figure4")
            .loop_var("i", 4)
            .loop_var("j", 4)
            .array("a", 4)
            .array("b", 4)
            .array("d", 4)
            .array("f", 4)
            .array("c", 16)
            .array("k", 4)
            .array("out", 4)
            .store(
                "c",
                AffineExpr::scaled_var(0, 4).add(&AffineExpr::var(1)),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("b", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::binary(Op::Mul, Expr::load("a", AffineExpr::var(0)), Expr::Index(1)),
                ),
            )
            .store(
                "k",
                AffineExpr::var(0),
                Expr::binary(Op::Shr, Expr::load("d", AffineExpr::var(0)), Expr::Const(4)),
            )
            .accumulate(
                "out",
                AffineExpr::var(0),
                Op::Add,
                Expr::binary(
                    Op::Add,
                    Expr::load("c", AffineExpr::scaled_var(0, 4).add(&AffineExpr::var(1))),
                    Expr::load("f", AffineExpr::var(1)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::default()).unwrap()
    }

    #[test]
    fn identification_is_deterministic_for_a_seed() {
        let dfg = figure4_dfg();
        let a = identify_motifs(&dfg, &IdentifyOptions::default());
        let b = identify_motifs(&dfg, &IdentifyOptions::default());
        assert_eq!(a.motifs(), b.motifs());
    }

    #[test]
    fn cover_is_a_partition_of_compute_nodes() {
        let dfg = figure4_dfg();
        let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
        let mut seen = HashSet::new();
        for m in hdfg.motifs() {
            assert!(m.is_valid_in(&dfg));
            for &n in &m.nodes {
                assert!(dfg.node(n).is_compute());
                assert!(seen.insert(n), "node covered twice");
            }
        }
        assert!(hdfg.covered_compute_nodes() <= dfg.compute_node_count());
    }

    #[test]
    fn figure4_finds_at_least_one_motif() {
        let dfg = figure4_dfg();
        let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
        assert!(!hdfg.motifs().is_empty());
        // The fan-in pattern (two multiplies into an add) must be covered.
        assert!(
            hdfg.coverage_ratio() >= 0.5,
            "coverage {}",
            hdfg.coverage_ratio()
        );
    }

    #[test]
    fn straight_chain_becomes_unicast_motifs() {
        let mut dfg = Dfg::new("chain6");
        let ld = dfg.add_load("ld", "x", AffineExpr::var(0));
        let mut prev = ld;
        let mut computes = Vec::new();
        for i in 0..6 {
            let n = dfg.add_compute_node(format!("c{i}"), Op::Add);
            dfg.set_immediate(n, 1).unwrap();
            dfg.add_edge(prev, n, Operand::Lhs, EdgeKind::Data).unwrap();
            computes.push(n);
            prev = n;
        }
        let st = dfg.add_store("st", "y", AffineExpr::var(0));
        dfg.add_edge(prev, st, Operand::Lhs, EdgeKind::Data)
            .unwrap();
        let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
        assert_eq!(hdfg.covered_compute_nodes(), 6);
        assert_eq!(hdfg.motifs().len(), 2);
        assert!(hdfg.motifs().iter().all(|m| m.kind == MotifKind::Unicast));
    }

    #[test]
    fn pairs_extend_coverage_when_enabled() {
        // Two independent producer/consumer pairs cannot form a 3-node motif.
        let mut dfg = Dfg::new("pairs");
        for i in 0..2 {
            let ld = dfg.add_load(format!("ld{i}"), "x", AffineExpr::var(0));
            let a = dfg.add_compute_node(format!("a{i}"), Op::Add);
            dfg.set_immediate(a, 1).unwrap();
            let st = dfg.add_store(format!("st{i}"), "y", AffineExpr::var(0));
            dfg.add_edge(ld, a, Operand::Lhs, EdgeKind::Data).unwrap();
            dfg.add_edge(a, st, Operand::Lhs, EdgeKind::Data).unwrap();
        }
        let without = identify_motifs(&dfg, &IdentifyOptions::default());
        assert_eq!(without.covered_compute_nodes(), 0);
        let with = identify_motifs(
            &dfg,
            &IdentifyOptions {
                allow_pairs: true,
                ..IdentifyOptions::default()
            },
        );
        // Each single compute node has no compute partner, so even pairs stay
        // empty here; the option must not create invalid motifs.
        assert!(with.motifs().iter().all(|m| m.is_valid_in(&dfg)));
    }

    #[test]
    fn pair_motifs_cover_two_node_chains() {
        let mut dfg = Dfg::new("two_chain");
        let ld = dfg.add_load("ld", "x", AffineExpr::var(0));
        let a = dfg.add_compute_node("a", Op::Add);
        let b = dfg.add_compute_node("b", Op::Mul);
        dfg.set_immediate(a, 1).unwrap();
        dfg.set_immediate(b, 2).unwrap();
        let st = dfg.add_store("st", "y", AffineExpr::var(0));
        dfg.add_edge(ld, a, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(a, b, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(b, st, Operand::Lhs, EdgeKind::Data).unwrap();
        let hdfg = identify_motifs(
            &dfg,
            &IdentifyOptions {
                allow_pairs: true,
                ..IdentifyOptions::default()
            },
        );
        assert_eq!(hdfg.covered_compute_nodes(), 2);
        assert_eq!(hdfg.motifs()[0].kind, MotifKind::Pair);
    }

    #[test]
    fn unrolled_kernels_keep_high_coverage() {
        // gemm-style reduction over the innermost loop k:
        // c[i][j] += a[i][k] * b[k][j].
        let kernel = KernelBuilder::new("gemm_like")
            .loop_var("i", 4)
            .loop_var("j", 4)
            .loop_var("k", 4)
            .array("a", 16)
            .array("b", 16)
            .array("c", 16)
            .accumulate(
                "c",
                AffineExpr::scaled_var(0, 4).add(&AffineExpr::var(1)),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::scaled_var(0, 4).add(&AffineExpr::var(2))),
                    Expr::load("b", AffineExpr::scaled_var(2, 4).add(&AffineExpr::var(1))),
                ),
            )
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::unrolled(2)).unwrap();
        let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
        assert!(
            hdfg.coverage_ratio() > 0.4,
            "coverage {}",
            hdfg.coverage_ratio()
        );
    }
}
