//! Motif kinds and the [`Motif`] value itself.

use plaid_dfg::{Dfg, NodeId};

/// The fundamental communication patterns of Section 3.2.
///
/// Any three-node DAG can be composed from fan-in, fan-out and unicast (the
/// acyclic triangle adds one edge to a fan-in or fan-out, and is therefore not
/// fundamental). Two-node pairs are also executed on the motif compute unit
/// (Section 6.4) and standalone nodes are degenerate single-node motifs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotifKind {
    /// Two producers feed a single consumer: `n1 -> n2 <- n3`.
    FanIn,
    /// A single producer feeds two consumers: `n2 <- n1 -> n3`.
    FanOut,
    /// A sequential chain: `n1 -> n2 -> n3`.
    Unicast,
    /// A two-node producer/consumer pair (`n1 -> n2`).
    Pair,
}

impl MotifKind {
    /// Number of DFG nodes in a motif of this kind.
    pub fn node_count(self) -> usize {
        match self {
            MotifKind::Pair => 2,
            _ => 3,
        }
    }

    /// Number of internal edges routed collectively by the local router.
    pub fn internal_edge_count(self) -> usize {
        match self {
            MotifKind::Pair => 1,
            _ => 2,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            MotifKind::FanIn => "fan-in",
            MotifKind::FanOut => "fan-out",
            MotifKind::Unicast => "unicast",
            MotifKind::Pair => "pair",
        }
    }

    /// The three fundamental three-node motif kinds.
    pub const THREE_NODE: [MotifKind; 3] =
        [MotifKind::FanIn, MotifKind::FanOut, MotifKind::Unicast];
}

/// A motif instance: a small sub-DFG of compute nodes whose internal data
/// dependencies are routed collectively within one PCU.
///
/// Node ordering conventions (used by the schedule templates):
/// * `FanIn` — `[producer_a, producer_b, consumer]`
/// * `FanOut` — `[producer, consumer_a, consumer_b]`
/// * `Unicast` — `[first, middle, last]` of the chain
/// * `Pair` — `[producer, consumer]`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Motif {
    /// Pattern of the motif.
    pub kind: MotifKind,
    /// Member nodes, ordered per the convention above.
    pub nodes: Vec<NodeId>,
}

impl Motif {
    /// Creates a motif after checking the node count matches the kind.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match [`MotifKind::node_count`].
    pub fn new(kind: MotifKind, nodes: Vec<NodeId>) -> Self {
        assert_eq!(
            nodes.len(),
            kind.node_count(),
            "motif {kind:?} requires {} nodes",
            kind.node_count()
        );
        Motif { kind, nodes }
    }

    /// The internal edges `(producer, consumer)` implied by the pattern.
    pub fn internal_edges(&self) -> Vec<(NodeId, NodeId)> {
        match self.kind {
            MotifKind::FanIn => vec![
                (self.nodes[0], self.nodes[2]),
                (self.nodes[1], self.nodes[2]),
            ],
            MotifKind::FanOut => vec![
                (self.nodes[0], self.nodes[1]),
                (self.nodes[0], self.nodes[2]),
            ],
            MotifKind::Unicast => vec![
                (self.nodes[0], self.nodes[1]),
                (self.nodes[1], self.nodes[2]),
            ],
            MotifKind::Pair => vec![(self.nodes[0], self.nodes[1])],
        }
    }

    /// Whether `node` belongs to this motif.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Verifies the motif against a DFG: all members must be compute nodes and
    /// every internal edge must exist as a same-iteration data edge.
    pub fn is_valid_in(&self, dfg: &Dfg) -> bool {
        if self.nodes.iter().any(|&n| !dfg.node(n).is_compute()) {
            return false;
        }
        let mut unique = self.nodes.clone();
        unique.sort_unstable();
        unique.dedup();
        if unique.len() != self.nodes.len() {
            return false;
        }
        self.internal_edges().iter().all(|&(src, dst)| {
            dfg.edges()
                .any(|e| e.src == src && e.dst == dst && !e.kind.is_recurrence())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_dfg::{AffineExpr, EdgeKind, Op, Operand};

    fn chain_dfg() -> (Dfg, NodeId, NodeId, NodeId) {
        let mut dfg = Dfg::new("chain");
        let ld = dfg.add_load("ld", "x", AffineExpr::var(0));
        let a = dfg.add_compute_node("a", Op::Add);
        let b = dfg.add_compute_node("b", Op::Mul);
        let c = dfg.add_compute_node("c", Op::Sub);
        dfg.set_immediate(a, 1).unwrap();
        dfg.set_immediate(b, 2).unwrap();
        dfg.set_immediate(c, 3).unwrap();
        dfg.add_edge(ld, a, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(a, b, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(b, c, Operand::Lhs, EdgeKind::Data).unwrap();
        (dfg, a, b, c)
    }

    #[test]
    fn kind_properties() {
        assert_eq!(MotifKind::FanIn.node_count(), 3);
        assert_eq!(MotifKind::Pair.node_count(), 2);
        assert_eq!(MotifKind::Unicast.internal_edge_count(), 2);
        assert_eq!(MotifKind::Pair.internal_edge_count(), 1);
        assert_eq!(MotifKind::THREE_NODE.len(), 3);
        assert_eq!(MotifKind::FanOut.label(), "fan-out");
    }

    #[test]
    fn unicast_motif_validates_against_dfg() {
        let (dfg, a, b, c) = chain_dfg();
        let motif = Motif::new(MotifKind::Unicast, vec![a, b, c]);
        assert!(motif.is_valid_in(&dfg));
        assert_eq!(motif.internal_edges(), vec![(a, b), (b, c)]);
        assert!(motif.contains(b));
    }

    #[test]
    fn wrong_direction_is_rejected() {
        let (dfg, a, b, c) = chain_dfg();
        let motif = Motif::new(MotifKind::Unicast, vec![c, b, a]);
        assert!(!motif.is_valid_in(&dfg));
    }

    #[test]
    fn memory_nodes_are_rejected() {
        let (dfg, a, b, _c) = chain_dfg();
        // Node 0 is the load.
        let motif = Motif::new(MotifKind::Unicast, vec![NodeId(0), a, b]);
        assert!(!motif.is_valid_in(&dfg));
    }

    #[test]
    fn duplicate_nodes_are_rejected() {
        let (dfg, a, b, _c) = chain_dfg();
        let motif = Motif::new(MotifKind::Unicast, vec![a, b, a]);
        assert!(!motif.is_valid_in(&dfg));
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn node_count_mismatch_panics() {
        let _ = Motif::new(MotifKind::FanIn, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn pair_motif() {
        let (dfg, a, b, _c) = chain_dfg();
        let motif = Motif::new(MotifKind::Pair, vec![a, b]);
        assert!(motif.is_valid_in(&dfg));
        assert_eq!(motif.internal_edges().len(), 1);
    }
}
