//! Structural motif identification and hierarchical DFG construction.
//!
//! The paper's central insight is that dataflow graphs decompose into small,
//! recurring communication patterns — *motifs* — whose internal dependencies
//! can be routed collectively by one lightweight local router instead of
//! several powerful per-PE crossbars (Section 3). This crate provides:
//!
//! * [`motif`] — the three fundamental three-node motifs (fan-in, fan-out,
//!   unicast) plus two-node pairs and standalone nodes.
//! * [`identify`] — Algorithm 1: greedy seeding followed by iterative
//!   break-and-regrow refinement of the motif cover.
//! * [`hierarchy`] — the hierarchical DFG: motifs, standalone nodes and the
//!   inter-motif edges that the global network must carry.
//! * [`schedule`] — the flexible per-motif schedule templates of Section 5.2.
//! * [`stats`] — coverage statistics (the motif-covered node counts of
//!   Table 2).
//!
//! # Example
//!
//! ```
//! use plaid_dfg::{Dfg, EdgeKind, Op, Operand};
//! use plaid_motif::identify::{identify_motifs, IdentifyOptions};
//!
//! // n1 -> n3 <- n2 : a fan-in motif.
//! let mut dfg = Dfg::new("fan_in");
//! let ld = dfg.add_load("ld", "x", plaid_dfg::AffineExpr::var(0));
//! let n1 = dfg.add_compute_node("n1", Op::Mul);
//! let n2 = dfg.add_compute_node("n2", Op::Mul);
//! let n3 = dfg.add_compute_node("n3", Op::Add);
//! dfg.set_immediate(n1, 2).unwrap();
//! dfg.set_immediate(n2, 3).unwrap();
//! dfg.add_edge(ld, n1, Operand::Lhs, EdgeKind::Data).unwrap();
//! dfg.add_edge(ld, n2, Operand::Lhs, EdgeKind::Data).unwrap();
//! dfg.add_edge(n1, n3, Operand::Lhs, EdgeKind::Data).unwrap();
//! dfg.add_edge(n2, n3, Operand::Rhs, EdgeKind::Data).unwrap();
//!
//! let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
//! assert_eq!(hdfg.motifs().len(), 1);
//! assert_eq!(hdfg.covered_compute_nodes(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod identify;
pub mod motif;
pub mod schedule;
pub mod stats;

pub use hierarchy::HierarchicalDfg;
pub use identify::{identify_motifs, IdentifyOptions};
pub use motif::{Motif, MotifKind};
pub use schedule::{schedule_templates, MotifSchedule, ScheduleSlot};
pub use stats::{coverage, CoverageStats};
