//! The hierarchical DFG: motifs, standalone nodes and inter-motif edges.

use std::collections::HashMap;

use plaid_dfg::{Dfg, DfgEdge, NodeId};

use crate::motif::Motif;

/// A DFG decomposed into motifs plus standalone nodes
/// (`HD = (M_HD, E_HD)` in the paper's formulation, Section 5.1).
///
/// Standalone nodes are the `H_k` helper nodes: compute nodes not covered by
/// any motif plus all memory nodes (loads/stores execute on ALSUs and are
/// never part of a motif).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalDfg {
    motifs: Vec<Motif>,
    standalone: Vec<NodeId>,
    node_to_motif: HashMap<NodeId, usize>,
    total_nodes: usize,
    compute_nodes: usize,
}

impl HierarchicalDfg {
    /// Builds a hierarchical DFG from a motif cover.
    ///
    /// # Panics
    ///
    /// Panics if a motif is invalid in `dfg` or if two motifs share a node —
    /// both indicate a bug in the identification algorithm.
    pub fn new(dfg: &Dfg, motifs: Vec<Motif>) -> Self {
        let mut node_to_motif = HashMap::new();
        for (i, m) in motifs.iter().enumerate() {
            assert!(m.is_valid_in(dfg), "motif {i} is not valid in the DFG");
            for &n in &m.nodes {
                let prev = node_to_motif.insert(n, i);
                assert!(prev.is_none(), "node {n} is covered by two motifs");
            }
        }
        let standalone: Vec<NodeId> = dfg
            .node_ids()
            .filter(|n| !node_to_motif.contains_key(n))
            .collect();
        HierarchicalDfg {
            motifs,
            standalone,
            node_to_motif,
            total_nodes: dfg.node_count(),
            compute_nodes: dfg.compute_node_count(),
        }
    }

    /// The motif cover.
    pub fn motifs(&self) -> &[Motif] {
        &self.motifs
    }

    /// Nodes not covered by any motif (includes all memory nodes).
    pub fn standalone_nodes(&self) -> &[NodeId] {
        &self.standalone
    }

    /// Index of the motif covering `node`, if any.
    pub fn motif_of(&self, node: NodeId) -> Option<usize> {
        self.node_to_motif.get(&node).copied()
    }

    /// Number of compute nodes covered by motifs (Table 2, third column).
    pub fn covered_compute_nodes(&self) -> usize {
        self.motifs.iter().map(|m| m.nodes.len()).sum()
    }

    /// Number of compute nodes in the underlying DFG.
    pub fn compute_nodes(&self) -> usize {
        self.compute_nodes
    }

    /// Number of nodes in the underlying DFG.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Fraction of compute nodes covered by motifs, in `[0, 1]`.
    pub fn coverage_ratio(&self) -> f64 {
        if self.compute_nodes == 0 {
            return 0.0;
        }
        self.covered_compute_nodes() as f64 / self.compute_nodes as f64
    }

    /// Edges of `dfg` internal to some motif (routed by a local router).
    pub fn internal_edges<'d>(&self, dfg: &'d Dfg) -> Vec<&'d DfgEdge> {
        dfg.edges().filter(|e| self.is_internal_edge(e)).collect()
    }

    /// Edges of `dfg` between different motifs / standalone nodes (routed by
    /// the global network), including recurrence edges.
    pub fn external_edges<'d>(&self, dfg: &'d Dfg) -> Vec<&'d DfgEdge> {
        dfg.edges().filter(|e| !self.is_internal_edge(e)).collect()
    }

    /// Whether an edge is covered by (internal to) a motif.
    pub fn is_internal_edge(&self, edge: &DfgEdge) -> bool {
        if edge.kind.is_recurrence() {
            return false;
        }
        match (self.motif_of(edge.src), self.motif_of(edge.dst)) {
            (Some(a), Some(b)) if a == b => self.motifs[a]
                .internal_edges()
                .iter()
                .any(|&(s, d)| s == edge.src && d == edge.dst),
            _ => false,
        }
    }

    /// Mapping-order key: motifs first (largest first), then standalone nodes.
    /// Used by Algorithm 2's dependency-aware sort.
    pub fn unit_count(&self) -> usize {
        self.motifs.len() + self.standalone.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motif::MotifKind;
    use plaid_dfg::{AffineExpr, EdgeKind, Op, Operand};

    /// Two multiplies feeding an add (fan-in), whose result is stored; plus an
    /// unrelated shift.
    fn sample() -> (Dfg, Vec<NodeId>) {
        let mut dfg = Dfg::new("sample");
        let b = dfg.add_load("b", "b", AffineExpr::var(0));
        let a = dfg.add_load("a", "a", AffineExpr::var(0));
        let n1 = dfg.add_compute_node("n1", Op::Mul);
        let n2 = dfg.add_compute_node("n2", Op::Mul);
        let n3 = dfg.add_compute_node("n3", Op::Add);
        let sh = dfg.add_compute_node("sh", Op::Shr);
        let st = dfg.add_store("st", "c", AffineExpr::var(0));
        let st2 = dfg.add_store("st2", "k", AffineExpr::var(0));
        dfg.set_immediate(n1, 4).unwrap();
        dfg.set_immediate(n2, 2).unwrap();
        dfg.set_immediate(sh, 4).unwrap();
        dfg.add_edge(b, n1, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(a, n2, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(n1, n3, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(n2, n3, Operand::Rhs, EdgeKind::Data).unwrap();
        dfg.add_edge(n3, st, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(a, sh, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(sh, st2, Operand::Lhs, EdgeKind::Data).unwrap();
        (dfg, vec![n1, n2, n3, sh])
    }

    #[test]
    fn hierarchy_partitions_nodes() {
        let (dfg, nodes) = sample();
        let motif = Motif::new(MotifKind::FanIn, vec![nodes[0], nodes[1], nodes[2]]);
        let hdfg = HierarchicalDfg::new(&dfg, vec![motif]);
        assert_eq!(hdfg.motifs().len(), 1);
        assert_eq!(hdfg.covered_compute_nodes(), 3);
        assert_eq!(hdfg.compute_nodes(), 4);
        // Standalone: shift node + 2 loads + 2 stores.
        assert_eq!(hdfg.standalone_nodes().len(), 5);
        assert_eq!(hdfg.motif_of(nodes[0]), Some(0));
        assert_eq!(hdfg.motif_of(nodes[3]), None);
        assert!((hdfg.coverage_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(hdfg.unit_count(), 6);
    }

    #[test]
    fn internal_and_external_edges() {
        let (dfg, nodes) = sample();
        let motif = Motif::new(MotifKind::FanIn, vec![nodes[0], nodes[1], nodes[2]]);
        let hdfg = HierarchicalDfg::new(&dfg, vec![motif]);
        let internal = hdfg.internal_edges(&dfg);
        assert_eq!(internal.len(), 2);
        let external = hdfg.external_edges(&dfg);
        assert_eq!(internal.len() + external.len(), dfg.edge_count());
    }

    #[test]
    #[should_panic(expected = "covered by two motifs")]
    fn overlapping_motifs_panic() {
        let (dfg, nodes) = sample();
        let m1 = Motif::new(MotifKind::FanIn, vec![nodes[0], nodes[1], nodes[2]]);
        let m2 = Motif::new(MotifKind::Pair, vec![nodes[0], nodes[2]]);
        let _ = HierarchicalDfg::new(&dfg, vec![m1, m2]);
    }

    #[test]
    fn empty_cover_is_all_standalone() {
        let (dfg, _) = sample();
        let hdfg = HierarchicalDfg::new(&dfg, Vec::new());
        assert_eq!(hdfg.standalone_nodes().len(), dfg.node_count());
        assert_eq!(hdfg.coverage_ratio(), 0.0);
    }
}
