//! Motif coverage statistics (the per-workload characteristics of Table 2).

use std::fmt;

use plaid_dfg::Dfg;

use crate::hierarchy::HierarchicalDfg;
use crate::motif::MotifKind;

/// Per-DFG characteristics as reported in Table 2: total node count, compute
/// node count and the number of compute nodes covered by motifs, plus the mix
/// of motif kinds found.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoverageStats {
    /// Kernel name.
    pub name: String,
    /// Total DFG nodes (compute + memory).
    pub total_nodes: usize,
    /// Compute (ALU) nodes.
    pub compute_nodes: usize,
    /// Compute nodes covered by motifs.
    pub covered_nodes: usize,
    /// Number of fan-in motifs.
    pub fan_in: usize,
    /// Number of fan-out motifs.
    pub fan_out: usize,
    /// Number of unicast motifs.
    pub unicast: usize,
    /// Number of two-node pair motifs.
    pub pairs: usize,
}

impl CoverageStats {
    /// Fraction of compute nodes covered by motifs.
    pub fn coverage_ratio(&self) -> f64 {
        if self.compute_nodes == 0 {
            0.0
        } else {
            self.covered_nodes as f64 / self.compute_nodes as f64
        }
    }

    /// Total number of motifs.
    pub fn motif_count(&self) -> usize {
        self.fan_in + self.fan_out + self.unicast + self.pairs
    }
}

impl fmt::Display for CoverageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} nodes={:<3} compute={:<3} covered={:<3} (fan-in {}, fan-out {}, unicast {}, pairs {})",
            self.name,
            self.total_nodes,
            self.compute_nodes,
            self.covered_nodes,
            self.fan_in,
            self.fan_out,
            self.unicast,
            self.pairs
        )
    }
}

/// Computes coverage statistics for a DFG and its motif cover.
pub fn coverage(dfg: &Dfg, hdfg: &HierarchicalDfg) -> CoverageStats {
    let count_kind = |kind: MotifKind| hdfg.motifs().iter().filter(|m| m.kind == kind).count();
    CoverageStats {
        name: dfg.name().to_string(),
        total_nodes: dfg.node_count(),
        compute_nodes: dfg.compute_node_count(),
        covered_nodes: hdfg.covered_compute_nodes(),
        fan_in: count_kind(MotifKind::FanIn),
        fan_out: count_kind(MotifKind::FanOut),
        unicast: count_kind(MotifKind::Unicast),
        pairs: count_kind(MotifKind::Pair),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::{identify_motifs, IdentifyOptions};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    #[test]
    fn coverage_counts_match_hierarchy() {
        let kernel = KernelBuilder::new("mac")
            .loop_var("i", 8)
            .array("a", 8)
            .array("b", 8)
            .array("out", 1)
            .accumulate(
                "out",
                AffineExpr::constant(0),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::unrolled(2)).unwrap();
        let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
        let stats = coverage(&dfg, &hdfg);
        assert_eq!(stats.total_nodes, dfg.node_count());
        assert_eq!(stats.compute_nodes, dfg.compute_node_count());
        assert_eq!(stats.covered_nodes, hdfg.covered_compute_nodes());
        assert_eq!(stats.motif_count(), hdfg.motifs().len());
        assert!(stats.coverage_ratio() <= 1.0);
        let row = stats.to_string();
        assert!(row.contains("mac_u2"));
        assert!(row.contains("covered"));
    }
}
