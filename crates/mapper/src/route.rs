//! Dijkstra-based routing over the time-extended (modulo) resource graph.
//!
//! A route delivers the value produced by a node placed at `(src_fu, t_src)`
//! to a consumer placed at `(dst_fu, t_dst)` (with `t_dst` already shifted by
//! `distance × II` for recurrence edges). The route must take *exactly*
//! `t_dst − t_src` cycles: a value arriving an II too late would belong to the
//! wrong iteration. Waiting is expressed physically, by looping on a
//! register/hold resource (the self-links the architectures provide).
//!
//! The search itself is allocation-free on the hot path: a reusable
//! [`RouterScratch`] owns the distance/parent tables (epoch-stamped, so
//! clearing between searches is a counter bump, not a memset) and the
//! priority queue. [`find_route`] remains as a convenience that allocates a
//! fresh scratch per call; the mappers route thousands of edges per second
//! through [`find_route_in`] with the scratch owned by their `MapState`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use plaid_arch::{Architecture, ResourceId};
use plaid_dfg::NodeId;

use crate::mapping::{Route, RouteHop};
use crate::state::RoutingState;

/// A routing request for one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRequest {
    /// Producer functional unit.
    pub src_fu: ResourceId,
    /// Producer schedule cycle.
    pub src_cycle: u32,
    /// Consumer functional unit.
    pub dst_fu: ResourceId,
    /// Absolute arrival cycle (consumer cycle, plus `distance × II` for
    /// recurrence edges).
    pub arrival_cycle: u32,
    /// The value being routed (the producer node id); identical values share
    /// switch capacity.
    pub value: NodeId,
}

/// Per-hop cost policy.
pub trait CostPolicy {
    /// Cost of occupying `(resource, slot)` with `value`, or `None` if the
    /// resource may not be used (hard capacity). Finite costs only: the
    /// router rejects non-finite hop costs at insertion (a NaN would corrupt
    /// the priority-queue ordering).
    fn hop_cost(
        &self,
        state: &RoutingState,
        resource: ResourceId,
        slot: u32,
        value: NodeId,
    ) -> Option<f64>;
}

/// Hard-capacity cost policy used by the SA and Plaid mappers: a congested
/// resource is forbidden, otherwise cost grows mildly with its load so the
/// router naturally spreads traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct HardCapacityCost;

impl CostPolicy for HardCapacityCost {
    fn hop_cost(
        &self,
        state: &RoutingState,
        resource: ResourceId,
        slot: u32,
        value: NodeId,
    ) -> Option<f64> {
        let (fits, usage) = state.admission(resource, slot, value);
        if !fits {
            return None;
        }
        Some(1.0 + 0.2 * f64::from(usage))
    }
}

/// Negotiated-congestion cost policy (PathFinder): overuse is permitted but
/// increasingly expensive, steered by per-resource history costs.
#[derive(Debug, Clone)]
pub struct NegotiatedCost {
    /// History cost per resource, grown after each routing iteration.
    pub history: Vec<f64>,
    /// Weight of present congestion.
    pub present_factor: f64,
}

impl NegotiatedCost {
    /// Creates a policy with zero history for `resource_count` resources.
    pub fn new(resource_count: usize) -> Self {
        NegotiatedCost {
            history: vec![0.0; resource_count],
            present_factor: 2.0,
        }
    }

    /// Increases the history cost of every currently overused resource.
    ///
    /// Resources with no overuse anywhere in the II are skipped via the
    /// incrementally maintained [`RoutingState::resource_overuse`] counter,
    /// so a negotiation round costs O(overused slots), not
    /// O(resources × II) — only the congested fraction of the fabric is
    /// scanned slot-by-slot.
    pub fn accumulate_history(&mut self, state: &RoutingState, arch: &Architecture) {
        for r in arch.resources() {
            if state.resource_overuse(r.id) == 0 {
                continue;
            }
            for slot in 0..state.ii() {
                if state.overuse(r.id, slot) > 0 {
                    self.history[r.id.0 as usize] += 1.0;
                }
            }
        }
    }
}

impl CostPolicy for NegotiatedCost {
    fn hop_cost(
        &self,
        state: &RoutingState,
        resource: ResourceId,
        slot: u32,
        value: NodeId,
    ) -> Option<f64> {
        let (fits, usage) = state.admission(resource, slot, value);
        let capacity = state.capacity(resource);
        let present = if fits {
            f64::from(usage) * 0.2
        } else {
            self.present_factor * f64::from(usage + 1 - capacity)
        };
        Some(1.0 + present + self.history[resource.0 as usize])
    }
}

#[derive(Debug, Clone, PartialEq)]
struct QueueEntry {
    cost: f64,
    resource: u32,
    elapsed: u32,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost. Entries are guaranteed finite at insertion
        // (`finite_or_reject` below), so `total_cmp` agrees with the IEEE
        // partial order here while staying total for safety.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.resource.cmp(&self.resource))
            .then_with(|| other.elapsed.cmp(&self.elapsed))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Rejects non-finite hop costs before they can enter the priority queue: a
/// NaN compares `Equal` to everything under a naive partial comparison and
/// silently corrupts heap order. Debug builds treat this as a policy bug.
#[inline]
fn finite_or_reject(cost: f64) -> Option<f64> {
    debug_assert!(
        cost.is_finite(),
        "cost policy produced a non-finite hop cost ({cost}); \
         hop costs must be finite"
    );
    cost.is_finite().then_some(cost)
}

/// Sentinel for "no parent" in the dense predecessor table (no resource has
/// id `u32::MAX`).
const NO_PARENT: (u32, u32) = (u32::MAX, u32::MAX);

/// Reusable search state of [`find_route_in`]: dense per-`(resource,
/// elapsed)` best-cost and parent tables, the priority queue, and the
/// exact-time reachability cache used to prune dead search cells.
///
/// Tables are epoch-stamped: a cell is live only when its stamp matches the
/// current epoch, so starting a new search is one counter increment and the
/// tables are never re-initialised (they only grow, to the largest
/// `resources × (budget + 1)` seen). One scratch serves any number of
/// sequential searches over any architectures.
#[derive(Debug, Clone, Default)]
pub struct RouterScratch {
    core: SearchCore,
    reach: ReachCache,
}

impl RouterScratch {
    /// Creates an empty scratch; tables grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a switch-only path of *exactly* `budget` cycles exists from
    /// `src_fu` to `dst_fu`, ignoring occupancy — the structural
    /// prerequisite for any route of that edge. Answered from the cached
    /// per-destination exact-time reachability table, so repeated queries
    /// against one fabric are table lookups. Used by the placement layer to
    /// skip candidate slots whose incident edges provably cannot be routed.
    pub fn structurally_routable(
        &mut self,
        arch: &Architecture,
        src_fu: ResourceId,
        dst_fu: ResourceId,
        budget: u32,
    ) -> bool {
        if budget == 0 {
            return false;
        }
        let reach = self.reach.table(arch, dst_fu, budget);
        arch.out_links(src_fu).any(|link| {
            if link.to == dst_fu {
                // Direct FU-to-FU links do not exist on the modelled
                // fabrics, but handle them soundly anyway.
                return link.latency == budget;
            }
            if arch.resource(link.to).kind.is_func_unit() {
                return false;
            }
            link.latency <= budget && reach.alive(link.to.0, budget - link.latency)
        })
    }
}

/// The Dijkstra working set (separate from the reachability cache so both
/// can be borrowed independently during a search).
#[derive(Debug, Clone, Default)]
struct SearchCore {
    epoch: u32,
    stamp: Vec<u32>,
    best: Vec<f64>,
    parent: Vec<(u32, u32)>,
    heap: BinaryHeap<QueueEntry>,
}

impl SearchCore {
    /// Starts a new search over `cells` table entries.
    fn begin(&mut self, cells: usize) {
        if self.stamp.len() < cells {
            self.stamp.resize(cells, 0);
            self.best.resize(cells, f64::INFINITY);
            self.parent.resize(cells, NO_PARENT);
        }
        self.heap.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could collide with the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Best cost recorded for `idx` in the current search.
    #[inline]
    fn best(&self, idx: usize) -> f64 {
        if self.stamp[idx] == self.epoch {
            self.best[idx]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, idx: usize, cost: f64, parent: (u32, u32)) {
        self.stamp[idx] = self.epoch;
        self.best[idx] = cost;
        self.parent[idx] = parent;
    }

    #[inline]
    fn parent(&self, idx: usize) -> (u32, u32) {
        debug_assert_eq!(self.stamp[idx], self.epoch);
        self.parent[idx]
    }
}

/// Exact-time reachability of one destination FU: `alive(r, t)` answers
/// "does a switch-only path of *exactly* `t` cycles exist from switch `r`
/// into the destination?". A Dijkstra cell `(r, elapsed)` with
/// `!alive(r, budget - elapsed)` can never complete a route — and every
/// cell it expands into is equally dead — so the search skips it without
/// probing occupancy. Pruning dead cells is exactly behaviour-preserving:
/// they never trigger the finish check, and their expansions only ever
/// update other dead cells, so the live computation (pop order, costs,
/// tie-breaks, the returned route) is untouched.
///
/// The table depends only on `(architecture, destination, budget)` — not on
/// occupancy — so it is computed once and reused across every search a
/// mapping attempt issues for that destination.
#[derive(Debug, Clone, Default)]
struct ReachTable {
    width: usize,
    live: Vec<bool>,
}

impl ReachTable {
    #[inline]
    fn alive(&self, resource: u32, t: u32) -> bool {
        self.live[resource as usize * self.width + t as usize]
    }

    fn build(arch: &Architecture, dst: ResourceId, width: usize) -> Self {
        let n = arch.resources().len();
        let mut live = vec![false; n * width];
        for t in 0..width as u32 {
            // Layers with latency > 0 read earlier (already final) layers;
            // zero-latency switch-to-switch links propagate within a layer,
            // so iterate the layer to a fixpoint (one extra pass on the
            // modelled fabrics).
            loop {
                let mut changed = false;
                for r in 0..n as u32 {
                    let idx = r as usize * width + t as usize;
                    if live[idx] || arch.resource(ResourceId(r)).kind.is_func_unit() {
                        continue;
                    }
                    let reaches = arch.out_links(ResourceId(r)).any(|link| {
                        if link.latency > t {
                            return false;
                        }
                        if link.to == dst {
                            if link.latency == t {
                                return true;
                            }
                            // Arriving early at the destination FU is not a
                            // finish, and FUs are not vias.
                            return false;
                        }
                        !arch.resource(link.to).kind.is_func_unit()
                            && live[link.to.0 as usize * width + (t - link.latency) as usize]
                    });
                    if reaches {
                        live[idx] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        ReachTable { width, live }
    }
}

/// Per-destination [`ReachTable`]s, keyed by destination resource id and
/// invalidated whenever the architecture changes.
///
/// Invalidation keys on [`Architecture::instance_id`], which is
/// process-unique and never reused, so a scratch reused across many
/// fabrics — even ones dropped and reallocated at the same address — can
/// never serve a stale table; structurally identical clones share an id
/// and therefore share tables, which is sound by construction.
#[derive(Debug, Clone, Default)]
struct ReachCache {
    /// `Architecture::instance_id` the tables were built for (0 = none yet).
    arch_instance: u64,
    tables: Vec<Option<ReachTable>>,
}

impl ReachCache {
    fn table(&mut self, arch: &Architecture, dst: ResourceId, budget: u32) -> &ReachTable {
        if self.arch_instance != arch.instance_id() {
            self.arch_instance = arch.instance_id();
            self.tables.clear();
            self.tables.resize(arch.resources().len(), None);
        }
        let slot = &mut self.tables[dst.0 as usize];
        let width = (budget + 1) as usize;
        let rebuild = match slot {
            Some(t) => t.width < width,
            None => true,
        };
        if rebuild {
            // Grow geometrically so a rising budget ladder rebuilds O(log)
            // times instead of once per budget.
            let grown = match slot {
                Some(t) => width.max(t.width * 2),
                None => width,
            };
            *slot = Some(ReachTable::build(arch, dst, grown));
        }
        slot.as_ref().expect("table just ensured")
    }
}

/// Finds the cheapest route satisfying `request`, or `None` if no route exists
/// under the given cost policy.
///
/// Convenience wrapper over [`find_route_in`] that allocates a fresh
/// [`RouterScratch`] per call; hot paths should own a scratch and reuse it.
pub fn find_route(
    arch: &Architecture,
    state: &RoutingState,
    request: &RouteRequest,
    policy: &impl CostPolicy,
) -> Option<(Route, f64)> {
    let mut scratch = RouterScratch::new();
    find_route_in(&mut scratch, arch, state, request, policy)
}

/// Finds the cheapest route satisfying `request` using a caller-owned
/// [`RouterScratch`], or `None` if no route exists under the given cost
/// policy.
///
/// The returned route contains only intermediate switch hops; both functional
/// units are excluded. The route's cost (sum of hop costs) is returned
/// alongside it. Apart from the returned `Route`'s hop vector, the search
/// performs no heap allocation once the scratch has warmed up.
///
/// A scratch caches per-destination reachability tables for the
/// architecture it last saw, keyed by [`Architecture::instance_id`]:
/// passing a different (or rebuilt) architecture safely resets the cache,
/// while structurally identical clones reuse it.
pub fn find_route_in(
    scratch: &mut RouterScratch,
    arch: &Architecture,
    state: &RoutingState,
    request: &RouteRequest,
    policy: &impl CostPolicy,
) -> Option<(Route, f64)> {
    if request.arrival_cycle <= request.src_cycle {
        return None;
    }
    let budget = request.arrival_cycle - request.src_cycle;
    let n = arch.resources().len();
    let width = (budget + 1) as usize;
    let index = |r: u32, e: u32| r as usize * width + e as usize;
    let RouterScratch { core, reach } = scratch;
    // Cells from which the destination is unreachable in exactly the
    // remaining cycles are dead: skip them before probing occupancy. See
    // [`ReachTable`] for why this cannot change the returned route.
    let reach = reach.table(arch, request.dst_fu, budget);
    core.begin(n * width);

    // Seed: leave the source FU along each outgoing link.
    for link in arch.out_links(request.src_fu) {
        if arch.resource(link.to).kind.is_func_unit() {
            // A route may only end at the destination FU, and entering it is
            // handled at pop time below; other FUs are not usable as vias.
            continue;
        }
        let elapsed = link.latency;
        if elapsed > budget || !reach.alive(link.to.0, budget - elapsed) {
            continue;
        }
        let slot = state.slot(request.src_cycle + elapsed);
        let Some(cost) = policy
            .hop_cost(state, link.to, slot, request.value)
            .and_then(finite_or_reject)
        else {
            continue;
        };
        let idx = index(link.to.0, elapsed);
        if cost < core.best(idx) {
            core.set(idx, cost, NO_PARENT);
            core.heap.push(QueueEntry {
                cost,
                resource: link.to.0,
                elapsed,
            });
        }
    }

    while let Some(entry) = core.heap.pop() {
        let idx = index(entry.resource, entry.elapsed);
        if entry.cost > core.best(idx) {
            continue;
        }
        let here = ResourceId(entry.resource);
        // Try to finish: a link into the destination FU landing exactly on the
        // arrival cycle.
        if let Some(link) = arch.out_links(here).find(|l| l.to == request.dst_fu) {
            if entry.elapsed + link.latency == budget {
                // Reconstruct the hop chain.
                let mut hops = Vec::new();
                let mut cursor = (entry.resource, entry.elapsed);
                while cursor != NO_PARENT {
                    let (r, e) = cursor;
                    hops.push(RouteHop {
                        resource: ResourceId(r),
                        cycle: request.src_cycle + e,
                    });
                    cursor = core.parent(index(r, e));
                }
                hops.reverse();
                return Some((Route { hops }, entry.cost));
            }
        }
        // Expand.
        for link in arch.out_links(here) {
            if arch.resource(link.to).kind.is_func_unit() {
                continue;
            }
            let elapsed = entry.elapsed + link.latency;
            if elapsed > budget || !reach.alive(link.to.0, budget - elapsed) {
                continue;
            }
            let slot = state.slot(request.src_cycle + elapsed);
            let Some(hop_cost) = policy
                .hop_cost(state, link.to, slot, request.value)
                .and_then(finite_or_reject)
            else {
                continue;
            };
            // Zero-latency self-loops cannot exist (links are deduplicated and
            // holds have latency 1), so progress is guaranteed; still, avoid
            // re-visiting the same (resource, elapsed) at higher cost.
            let cost = entry.cost + hop_cost;
            let nidx = index(link.to.0, elapsed);
            if cost < core.best(nidx) {
                core.set(nidx, cost, (entry.resource, entry.elapsed));
                core.heap.push(QueueEntry {
                    cost,
                    resource: link.to.0,
                    elapsed,
                });
            }
        }
    }
    None
}

/// Commits a route to the occupancy table.
pub fn commit_route(state: &mut RoutingState, route: &Route, value: NodeId) {
    for hop in &route.hops {
        state.occupy(hop.resource, hop.cycle, value);
    }
}

/// Removes a previously committed route from the occupancy table.
pub fn release_route(state: &mut RoutingState, route: &Route, value: NodeId) {
    for hop in &route.hops {
        state.release(hop.resource, hop.cycle, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};

    #[test]
    fn routes_between_neighbouring_pes() {
        let arch = spatio_temporal::build(2, 2);
        let state = RoutingState::new(&arch, 2);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 1,
            value: NodeId(0),
        };
        let (route, cost) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        // fu0 -> router0 (0 cycles) -> router1 (1 cycle) -> fu1 (0 cycles).
        assert_eq!(route.hops.len(), 2);
        assert!(cost > 0.0);
        assert_eq!(route.hops.last().unwrap().cycle, 1);
    }

    #[test]
    fn same_pe_dependency_waits_in_the_register() {
        let arch = spatio_temporal::build(2, 2);
        let state = RoutingState::new(&arch, 4);
        let fu0 = arch.clusters()[0].alus[0];
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu0,
            arrival_cycle: 3,
            value: NodeId(0),
        };
        let (route, _) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        // The value enters the router at cycle 0 and loops in its hold until it
        // is consumed at cycle 3, occupying the router in cycles 0 through 3.
        assert_eq!(route.hops.len(), 4);
        assert!(route
            .hops
            .iter()
            .all(|h| h.resource == arch.clusters()[0].global_router));
    }

    #[test]
    fn arrival_before_departure_is_rejected() {
        let arch = spatio_temporal::build(2, 2);
        let state = RoutingState::new(&arch, 2);
        let fu0 = arch.clusters()[0].alus[0];
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 5,
            dst_fu: fu0,
            arrival_cycle: 5,
            value: NodeId(0),
        };
        assert!(find_route(&arch, &state, &request, &HardCapacityCost).is_none());
    }

    #[test]
    fn congestion_blocks_hard_capacity_routing() {
        let arch = spatio_temporal::build(2, 2);
        let mut state = RoutingState::new(&arch, 1);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        let router1 = arch.clusters()[1].global_router;
        // Saturate the destination router in every slot with foreign values.
        for v in 100..(100 + state.capacity(router1)) {
            state.occupy(router1, 0, NodeId(v));
        }
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 1,
            value: NodeId(0),
        };
        assert!(find_route(&arch, &state, &request, &HardCapacityCost).is_none());
    }

    #[test]
    fn negotiated_cost_allows_overuse() {
        let arch = spatio_temporal::build(2, 2);
        let mut state = RoutingState::new(&arch, 1);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        let router1 = arch.clusters()[1].global_router;
        for v in 100..(100 + state.capacity(router1)) {
            state.occupy(router1, 0, NodeId(v));
        }
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 1,
            value: NodeId(0),
        };
        let policy = NegotiatedCost::new(arch.resources().len());
        let (route, cost) = find_route(&arch, &state, &request, &policy).unwrap();
        assert!(!route.hops.is_empty());
        assert!(cost > 1.0);
    }

    #[test]
    fn plaid_intra_pcu_route_uses_local_resources() {
        let arch = plaid::build(2, 2);
        let state = RoutingState::new(&arch, 2);
        let cluster = &arch.clusters()[0];
        let request = RouteRequest {
            src_fu: cluster.alus[0],
            src_cycle: 0,
            dst_fu: cluster.alus[1],
            arrival_cycle: 1,
            value: NodeId(0),
        };
        let (route, _) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        // Either the bypass path or the local router, but never the global
        // mesh, carries an intra-PCU dependency with slack 1.
        assert!(route
            .hops
            .iter()
            .all(|h| arch.resource(h.resource).tile == cluster.tile));
        assert!(route.hops.len() <= 2);
    }

    #[test]
    fn plaid_inter_pcu_route_crosses_the_global_mesh() {
        let arch = plaid::build(2, 2);
        let state = RoutingState::new(&arch, 4);
        let src = &arch.clusters()[0];
        let dst = &arch.clusters()[3];
        let request = RouteRequest {
            src_fu: src.alus[0],
            src_cycle: 0,
            dst_fu: dst.alus[2],
            arrival_cycle: 2,
            value: NodeId(0),
        };
        let (route, _) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        let crosses_global = route
            .hops
            .iter()
            .filter(|h| arch.resource(h.resource).name.contains("global"))
            .count();
        assert!(crosses_global >= 2, "expected at least two global hops");
    }

    #[test]
    fn route_commit_and_release_round_trip() {
        let arch = spatio_temporal::build(2, 2);
        let mut state = RoutingState::new(&arch, 2);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 1,
            value: NodeId(7),
        };
        let (route, _) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        commit_route(&mut state, &route, NodeId(7));
        assert!(state.occupied_slots() > 0);
        release_route(&mut state, &route, NodeId(7));
        assert_eq!(state.occupied_slots(), 0);
    }

    #[test]
    fn reused_scratch_reproduces_fresh_scratch_routes() {
        // The same scratch must give bit-identical answers across many
        // searches of different budgets, architectures and congestion
        // levels — the epoch stamps must fully isolate searches.
        let archs = [spatio_temporal::build(2, 2), plaid::build(2, 2)];
        let mut scratch = RouterScratch::new();
        for arch in &archs {
            let mut state = RoutingState::new(arch, 4);
            let fus: Vec<ResourceId> = arch.functional_units().map(|r| r.id).collect();
            for (i, &src) in fus.iter().enumerate() {
                let dst = fus[(i * 7 + 3) % fus.len()];
                for budget in 1..5u32 {
                    let request = RouteRequest {
                        src_fu: src,
                        src_cycle: i as u32,
                        dst_fu: dst,
                        arrival_cycle: i as u32 + budget,
                        value: NodeId(i as u32),
                    };
                    let fresh = find_route(arch, &state, &request, &HardCapacityCost);
                    let reused =
                        find_route_in(&mut scratch, arch, &state, &request, &HardCapacityCost);
                    assert_eq!(fresh, reused, "scratch reuse changed a route");
                    if let Some((route, _)) = fresh {
                        // Mutate congestion so later searches see fresh state.
                        commit_route(&mut state, &route, NodeId(i as u32));
                    }
                }
            }
        }
    }

    #[test]
    fn nan_hop_costs_are_rejected_not_propagated() {
        /// A policy that reports NaN for every switch in slot 0 and a valid
        /// cost elsewhere: routes through slot 0 must be avoided entirely
        /// rather than corrupting the heap order.
        struct NanInSlotZero;
        impl CostPolicy for NanInSlotZero {
            fn hop_cost(
                &self,
                _state: &RoutingState,
                _resource: ResourceId,
                slot: u32,
                _value: NodeId,
            ) -> Option<f64> {
                Some(if slot == 0 { f64::NAN } else { 1.0 })
            }
        }
        let arch = spatio_temporal::build(2, 2);
        let state = RoutingState::new(&arch, 4);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        // Budget 1 with src_cycle 3: the single hop lands on slot 0
        // (cycle 4 mod 4) and must be rejected -> no route.
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 3,
            dst_fu: fu1,
            arrival_cycle: 4,
            value: NodeId(0),
        };
        let result = std::panic::catch_unwind(|| {
            let mut scratch = RouterScratch::new();
            find_route_in(&mut scratch, &arch, &state, &request, &NanInSlotZero)
        });
        if cfg!(debug_assertions) {
            assert!(result.is_err(), "debug builds flag NaN as a policy bug");
        } else {
            assert_eq!(result.unwrap(), None, "NaN hops are filtered");
        }
        // A budget that can avoid slot 0 still routes.
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 2,
            value: NodeId(0),
        };
        let routed = std::panic::catch_unwind(|| {
            let mut scratch = RouterScratch::new();
            find_route_in(&mut scratch, &arch, &state, &request, &NanInSlotZero)
        });
        if let Ok(routed) = routed {
            // Release builds filter silently and still find the clean path.
            let (route, _) = routed.expect("clean-slot route exists");
            assert!(route.hops.iter().all(|h| h.cycle % 4 != 0));
        }
    }
}
