//! Dijkstra-based routing over the time-extended (modulo) resource graph.
//!
//! A route delivers the value produced by a node placed at `(src_fu, t_src)`
//! to a consumer placed at `(dst_fu, t_dst)` (with `t_dst` already shifted by
//! `distance × II` for recurrence edges). The route must take *exactly*
//! `t_dst − t_src` cycles: a value arriving an II too late would belong to the
//! wrong iteration. Waiting is expressed physically, by looping on a
//! register/hold resource (the self-links the architectures provide).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use plaid_arch::{Architecture, ResourceId};
use plaid_dfg::NodeId;

use crate::mapping::{Route, RouteHop};
use crate::state::RoutingState;

/// A routing request for one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRequest {
    /// Producer functional unit.
    pub src_fu: ResourceId,
    /// Producer schedule cycle.
    pub src_cycle: u32,
    /// Consumer functional unit.
    pub dst_fu: ResourceId,
    /// Absolute arrival cycle (consumer cycle, plus `distance × II` for
    /// recurrence edges).
    pub arrival_cycle: u32,
    /// The value being routed (the producer node id); identical values share
    /// switch capacity.
    pub value: NodeId,
}

/// Per-hop cost policy.
pub trait CostPolicy {
    /// Cost of occupying `(resource, slot)` with `value`, or `None` if the
    /// resource may not be used (hard capacity).
    fn hop_cost(
        &self,
        state: &RoutingState,
        resource: ResourceId,
        slot: u32,
        value: NodeId,
    ) -> Option<f64>;
}

/// Hard-capacity cost policy used by the SA and Plaid mappers: a congested
/// resource is forbidden, otherwise cost grows mildly with its load so the
/// router naturally spreads traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct HardCapacityCost;

impl CostPolicy for HardCapacityCost {
    fn hop_cost(
        &self,
        state: &RoutingState,
        resource: ResourceId,
        slot: u32,
        value: NodeId,
    ) -> Option<f64> {
        if !state.fits(resource, slot, value) {
            return None;
        }
        Some(1.0 + 0.2 * f64::from(state.usage(resource, slot)))
    }
}

/// Negotiated-congestion cost policy (PathFinder): overuse is permitted but
/// increasingly expensive, steered by per-resource history costs.
#[derive(Debug, Clone)]
pub struct NegotiatedCost {
    /// History cost per resource, grown after each routing iteration.
    pub history: Vec<f64>,
    /// Weight of present congestion.
    pub present_factor: f64,
}

impl NegotiatedCost {
    /// Creates a policy with zero history for `resource_count` resources.
    pub fn new(resource_count: usize) -> Self {
        NegotiatedCost {
            history: vec![0.0; resource_count],
            present_factor: 2.0,
        }
    }

    /// Increases the history cost of every currently overused resource.
    pub fn accumulate_history(&mut self, state: &RoutingState, arch: &Architecture) {
        for r in arch.resources() {
            for slot in 0..state.ii() {
                if state.overuse(r.id, slot) > 0 {
                    self.history[r.id.0 as usize] += 1.0;
                }
            }
        }
    }
}

impl CostPolicy for NegotiatedCost {
    fn hop_cost(
        &self,
        state: &RoutingState,
        resource: ResourceId,
        slot: u32,
        value: NodeId,
    ) -> Option<f64> {
        let usage = state.usage(resource, slot);
        let capacity = state.capacity(resource);
        let present = if state.fits(resource, slot, value) {
            f64::from(usage) * 0.2
        } else {
            self.present_factor * f64::from(usage + 1 - capacity)
        };
        Some(1.0 + present + self.history[resource.0 as usize])
    }
}

#[derive(Debug, PartialEq)]
struct QueueEntry {
    cost: f64,
    resource: u32,
    elapsed: u32,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.resource.cmp(&self.resource))
            .then_with(|| other.elapsed.cmp(&self.elapsed))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Finds the cheapest route satisfying `request`, or `None` if no route exists
/// under the given cost policy.
///
/// The returned route contains only intermediate switch hops; both functional
/// units are excluded. The route's cost (sum of hop costs) is returned
/// alongside it.
pub fn find_route(
    arch: &Architecture,
    state: &RoutingState,
    request: &RouteRequest,
    policy: &impl CostPolicy,
) -> Option<(Route, f64)> {
    if request.arrival_cycle <= request.src_cycle {
        return None;
    }
    let budget = request.arrival_cycle - request.src_cycle;
    let n = arch.resources().len();
    let width = (budget + 1) as usize;
    let index = |r: u32, e: u32| r as usize * width + e as usize;
    let mut best = vec![f64::INFINITY; n * width];
    let mut parent: Vec<Option<(u32, u32)>> = vec![None; n * width];
    let mut heap = BinaryHeap::new();

    // Seed: leave the source FU along each outgoing link.
    for link in arch.out_links(request.src_fu) {
        if arch.resource(link.to).kind.is_func_unit() {
            // A route may only end at the destination FU, and entering it is
            // handled at pop time below; other FUs are not usable as vias.
            continue;
        }
        let elapsed = link.latency;
        if elapsed > budget {
            continue;
        }
        let slot = state.slot(request.src_cycle + elapsed);
        let Some(cost) = policy.hop_cost(state, link.to, slot, request.value) else {
            continue;
        };
        let idx = index(link.to.0, elapsed);
        if cost < best[idx] {
            best[idx] = cost;
            parent[idx] = None;
            heap.push(QueueEntry {
                cost,
                resource: link.to.0,
                elapsed,
            });
        }
    }

    while let Some(entry) = heap.pop() {
        let idx = index(entry.resource, entry.elapsed);
        if entry.cost > best[idx] {
            continue;
        }
        let here = ResourceId(entry.resource);
        // Try to finish: a link into the destination FU landing exactly on the
        // arrival cycle.
        if let Some(link) = arch.out_links(here).find(|l| l.to == request.dst_fu) {
            if entry.elapsed + link.latency == budget {
                // Reconstruct the hop chain.
                let mut hops = Vec::new();
                let mut cursor = Some((entry.resource, entry.elapsed));
                while let Some((r, e)) = cursor {
                    hops.push(RouteHop {
                        resource: ResourceId(r),
                        cycle: request.src_cycle + e,
                    });
                    cursor = parent[index(r, e)];
                }
                hops.reverse();
                return Some((Route { hops }, entry.cost));
            }
        }
        // Expand.
        for link in arch.out_links(here) {
            if arch.resource(link.to).kind.is_func_unit() {
                continue;
            }
            let elapsed = entry.elapsed + link.latency;
            if elapsed > budget {
                continue;
            }
            let slot = state.slot(request.src_cycle + elapsed);
            let Some(hop_cost) = policy.hop_cost(state, link.to, slot, request.value) else {
                continue;
            };
            // Zero-latency self-loops cannot exist (links are deduplicated and
            // holds have latency 1), so progress is guaranteed; still, avoid
            // re-visiting the same (resource, elapsed) at higher cost.
            let cost = entry.cost + hop_cost;
            let nidx = index(link.to.0, elapsed);
            if cost < best[nidx] {
                best[nidx] = cost;
                parent[nidx] = Some((entry.resource, entry.elapsed));
                heap.push(QueueEntry {
                    cost,
                    resource: link.to.0,
                    elapsed,
                });
            }
        }
    }
    None
}

/// Commits a route to the occupancy table.
pub fn commit_route(state: &mut RoutingState, route: &Route, value: NodeId) {
    for hop in &route.hops {
        state.occupy(hop.resource, hop.cycle, value);
    }
}

/// Removes a previously committed route from the occupancy table.
pub fn release_route(state: &mut RoutingState, route: &Route, value: NodeId) {
    for hop in &route.hops {
        state.release(hop.resource, hop.cycle, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};

    #[test]
    fn routes_between_neighbouring_pes() {
        let arch = spatio_temporal::build(2, 2);
        let state = RoutingState::new(&arch, 2);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 1,
            value: NodeId(0),
        };
        let (route, cost) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        // fu0 -> router0 (0 cycles) -> router1 (1 cycle) -> fu1 (0 cycles).
        assert_eq!(route.hops.len(), 2);
        assert!(cost > 0.0);
        assert_eq!(route.hops.last().unwrap().cycle, 1);
    }

    #[test]
    fn same_pe_dependency_waits_in_the_register() {
        let arch = spatio_temporal::build(2, 2);
        let state = RoutingState::new(&arch, 4);
        let fu0 = arch.clusters()[0].alus[0];
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu0,
            arrival_cycle: 3,
            value: NodeId(0),
        };
        let (route, _) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        // The value enters the router at cycle 0 and loops in its hold until it
        // is consumed at cycle 3, occupying the router in cycles 0 through 3.
        assert_eq!(route.hops.len(), 4);
        assert!(route
            .hops
            .iter()
            .all(|h| h.resource == arch.clusters()[0].global_router));
    }

    #[test]
    fn arrival_before_departure_is_rejected() {
        let arch = spatio_temporal::build(2, 2);
        let state = RoutingState::new(&arch, 2);
        let fu0 = arch.clusters()[0].alus[0];
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 5,
            dst_fu: fu0,
            arrival_cycle: 5,
            value: NodeId(0),
        };
        assert!(find_route(&arch, &state, &request, &HardCapacityCost).is_none());
    }

    #[test]
    fn congestion_blocks_hard_capacity_routing() {
        let arch = spatio_temporal::build(2, 2);
        let mut state = RoutingState::new(&arch, 1);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        let router1 = arch.clusters()[1].global_router;
        // Saturate the destination router in every slot with foreign values.
        for v in 100..(100 + state.capacity(router1)) {
            state.occupy(router1, 0, NodeId(v));
        }
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 1,
            value: NodeId(0),
        };
        assert!(find_route(&arch, &state, &request, &HardCapacityCost).is_none());
    }

    #[test]
    fn negotiated_cost_allows_overuse() {
        let arch = spatio_temporal::build(2, 2);
        let mut state = RoutingState::new(&arch, 1);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        let router1 = arch.clusters()[1].global_router;
        for v in 100..(100 + state.capacity(router1)) {
            state.occupy(router1, 0, NodeId(v));
        }
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 1,
            value: NodeId(0),
        };
        let policy = NegotiatedCost::new(arch.resources().len());
        let (route, cost) = find_route(&arch, &state, &request, &policy).unwrap();
        assert!(!route.hops.is_empty());
        assert!(cost > 1.0);
    }

    #[test]
    fn plaid_intra_pcu_route_uses_local_resources() {
        let arch = plaid::build(2, 2);
        let state = RoutingState::new(&arch, 2);
        let cluster = &arch.clusters()[0];
        let request = RouteRequest {
            src_fu: cluster.alus[0],
            src_cycle: 0,
            dst_fu: cluster.alus[1],
            arrival_cycle: 1,
            value: NodeId(0),
        };
        let (route, _) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        // Either the bypass path or the local router, but never the global
        // mesh, carries an intra-PCU dependency with slack 1.
        assert!(route
            .hops
            .iter()
            .all(|h| arch.resource(h.resource).tile == cluster.tile));
        assert!(route.hops.len() <= 2);
    }

    #[test]
    fn plaid_inter_pcu_route_crosses_the_global_mesh() {
        let arch = plaid::build(2, 2);
        let state = RoutingState::new(&arch, 4);
        let src = &arch.clusters()[0];
        let dst = &arch.clusters()[3];
        let request = RouteRequest {
            src_fu: src.alus[0],
            src_cycle: 0,
            dst_fu: dst.alus[2],
            arrival_cycle: 2,
            value: NodeId(0),
        };
        let (route, _) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        let crosses_global = route
            .hops
            .iter()
            .filter(|h| arch.resource(h.resource).name.contains("global"))
            .count();
        assert!(crosses_global >= 2, "expected at least two global hops");
    }

    #[test]
    fn route_commit_and_release_round_trip() {
        let arch = spatio_temporal::build(2, 2);
        let mut state = RoutingState::new(&arch, 2);
        let fu0 = arch.clusters()[0].alus[0];
        let fu1 = arch.clusters()[1].alus[0];
        let request = RouteRequest {
            src_fu: fu0,
            src_cycle: 0,
            dst_fu: fu1,
            arrival_cycle: 1,
            value: NodeId(7),
        };
        let (route, _) = find_route(&arch, &state, &request, &HardCapacityCost).unwrap();
        commit_route(&mut state, &route, NodeId(7));
        assert!(state.occupied_slots() > 0);
        release_route(&mut state, &route, NodeId(7));
        assert_eq!(state.occupied_slots(), 0);
    }
}
