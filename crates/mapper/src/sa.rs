//! The generic simulated-annealing mapper (the paper's "SA" baseline,
//! Section 6.3, ~2K lines of C++ in the original toolchain).
//!
//! Placement starts from greedy list scheduling; annealing then repeatedly
//! rips up one node, re-places it on a random candidate and re-routes its
//! incident edges, accepting worse states with a temperature-controlled
//! probability to escape local minima. The II is increased when annealing
//! fails to reach a complete mapping.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use plaid_arch::Architecture;
use plaid_dfg::{Dfg, EdgeId, NodeId};

use crate::error::MapError;
use crate::mapping::Mapping;
use crate::mii::mii;
use crate::placement::{greedy_place, MapState};
use crate::route::HardCapacityCost;
use crate::Mapper;

/// Options of the simulated-annealing mapper.
#[derive(Debug, Clone, PartialEq)]
pub struct SaOptions {
    /// RNG seed (the mapper is deterministic for a fixed seed).
    pub seed: u64,
    /// Annealing moves attempted per II before giving up.
    pub moves_per_ii: usize,
    /// Initial temperature.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied after every move.
    pub cooling: f64,
    /// Optional cap on the II explored (defaults to the architecture's
    /// configuration-memory depth).
    pub max_ii: Option<u32>,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            seed: 0x5EED_0001,
            moves_per_ii: 600,
            initial_temperature: 8.0,
            cooling: 0.995,
            max_ii: None,
        }
    }
}

/// The simulated-annealing mapper.
#[derive(Debug, Clone, Default)]
pub struct SaMapper {
    options: SaOptions,
}

impl SaMapper {
    /// Creates a mapper with the given options.
    pub fn new(options: SaOptions) -> Self {
        SaMapper { options }
    }

    /// Attempts a single II; returns a complete state on success.
    fn attempt_ii<'a>(
        &self,
        dfg: &'a Dfg,
        arch: &'a Architecture,
        ii: u32,
        rng: &mut SmallRng,
    ) -> Option<MapState<'a>> {
        let policy = HardCapacityCost;
        let mut state = MapState::new(dfg, arch, ii);
        if !greedy_place(&mut state, &policy) {
            // Loose fallback: place the remaining nodes anywhere legal so that
            // annealing has a full (if poor) starting point.
            let unplaced: Vec<NodeId> = dfg
                .node_ids()
                .filter(|n| !state.placements.contains_key(n))
                .collect();
            for node in unplaced {
                let placed = place_anywhere(&mut state, node);
                if !placed {
                    return None;
                }
            }
        }
        state.route_all(&policy);
        if state.is_complete() {
            return Some(state);
        }

        let mut temperature = self.options.initial_temperature;
        let mut best_cost = state.cost();
        let nodes: Vec<NodeId> = dfg.node_ids().collect();
        for _ in 0..self.options.moves_per_ii {
            if state.is_complete() {
                return Some(state);
            }
            let node = nodes[rng.gen_range(0..nodes.len())];
            let snapshot = state.clone();
            // Rip up and re-place the node somewhere else.
            state.unplace(node);
            let candidates = state.candidate_fus(node);
            if candidates.is_empty() {
                state = snapshot;
                continue;
            }
            let pick = candidates[rng.gen_range(0..candidates.len().min(6))];
            let base = state.earliest_cycle(node);
            let cycle = base + rng.gen_range(0..ii);
            if !state.can_place(node, pick, cycle) {
                state = snapshot;
                continue;
            }
            state.place(node, pick, cycle);
            let incident: Vec<EdgeId> = dfg
                .edges()
                .filter(|e| e.src == node || e.dst == node)
                .map(|e| e.id)
                .collect();
            for e in incident {
                let _ = state.route_edge(e, &policy);
            }
            let new_cost = state.cost() + if state.timing_ok() { 0.0 } else { 500.0 };
            let delta = new_cost - best_cost;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-3)).exp();
            if accept {
                best_cost = new_cost;
            } else {
                state = snapshot;
            }
            temperature *= self.options.cooling;
        }
        if state.is_complete() {
            Some(state)
        } else {
            None
        }
    }
}

/// Places a node on any functional unit with a free modulo slot, ignoring
/// routability (annealing will repair the routes).
fn place_anywhere(state: &mut MapState<'_>, node: NodeId) -> bool {
    let base = state.earliest_cycle(node);
    let candidates = state.candidate_fus(node);
    for offset in 0..(state.ii * 2) {
        for &fu in &candidates {
            let cycle = base + offset;
            if state.can_place(node, fu, cycle) {
                state.place(node, fu, cycle);
                return true;
            }
        }
    }
    false
}

impl Mapper for SaMapper {
    fn map(&self, dfg: &Dfg, arch: &Architecture) -> Result<Mapping, MapError> {
        if dfg.memory_node_count() > 0 && arch.memory_unit_count() == 0 {
            return Err(MapError::UnsupportedDfg(
                "DFG contains memory operations but the architecture has no memory-capable unit"
                    .into(),
            ));
        }
        let mut rng = SmallRng::seed_from_u64(self.options.seed);
        let start = mii(dfg, arch);
        let max_ii = self.options.max_ii.unwrap_or(arch.params().max_ii());
        for ii in start..=max_ii {
            if let Some(state) = self.attempt_ii(dfg, arch, ii, &mut rng) {
                let mapping = state.into_mapping(self.name());
                mapping.validate(dfg, arch)?;
                return Ok(mapping);
            }
        }
        Err(MapError::NoValidMapping {
            kernel: dfg.name().to_string(),
            arch: arch.name().to_string(),
            max_ii,
        })
    }

    fn name(&self) -> &'static str {
        "sa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    fn mac_kernel(unroll: u64) -> Dfg {
        let kernel = KernelBuilder::new("mac")
            .loop_var("i", 32)
            .array("a", 32)
            .array("b", 32)
            .array("out", 1)
            .accumulate(
                "out",
                AffineExpr::constant(0),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::unrolled(unroll)).unwrap()
    }

    #[test]
    fn maps_mac_on_spatio_temporal() {
        let dfg = mac_kernel(1);
        let arch = spatio_temporal::build(4, 4);
        let mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
        assert!(mapping.ii >= mii(&dfg, &arch));
        assert!(mapping.ii <= arch.params().max_ii());
    }

    #[test]
    fn maps_unrolled_mac_on_plaid() {
        let dfg = mac_kernel(2);
        let arch = plaid::build(2, 2);
        let mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dfg = mac_kernel(2);
        let arch = spatio_temporal::build(4, 4);
        let a = SaMapper::default().map(&dfg, &arch).unwrap();
        let b = SaMapper::default().map(&dfg, &arch).unwrap();
        assert_eq!(a.ii, b.ii);
        assert_eq!(a.placements, b.placements);
    }

    #[test]
    fn total_cycles_follow_ii() {
        let dfg = mac_kernel(1);
        let arch = spatio_temporal::build(4, 4);
        let mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        let iters = dfg.total_iterations();
        assert_eq!(
            mapping.total_cycles(iters),
            (iters - 1) * u64::from(mapping.ii) + u64::from(mapping.schedule_length())
        );
    }

    #[test]
    fn rejects_memory_dfg_on_memoryless_architecture() {
        // Build a degenerate architecture with no memory units by using a
        // Plaid 1x1 variant? All provided architectures have memory units, so
        // construct the error path via an empty-memory check instead.
        let dfg = mac_kernel(1);
        let arch = spatio_temporal::build(4, 4);
        assert!(SaMapper::default().map(&dfg, &arch).is_ok());
    }
}
