//! The generic simulated-annealing mapper (the paper's "SA" baseline,
//! Section 6.3, ~2K lines of C++ in the original toolchain).
//!
//! Placement starts from greedy list scheduling; annealing then repeatedly
//! rips up one node, re-places it on a random candidate and re-routes its
//! incident edges, accepting worse states with a temperature-controlled
//! probability to escape local minima. The II is increased when annealing
//! fails to reach a complete mapping.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use plaid_arch::Architecture;
use plaid_dfg::{Dfg, NodeId};

use crate::error::MapError;
use crate::mapping::Mapping;
use crate::mii::mii;
use crate::placement::{greedy_place, place_node_best_effort, LadderShared, MapState};
use crate::route::HardCapacityCost;
use std::sync::Arc;

use crate::seed::{
    apply_seed_placement, options_fingerprint, plan_ladder, LadderPlan, MapSeed, PlacementSeed,
    SeedContext, SeedOutcome, SeededMapping,
};
use crate::Mapper;

/// Annealing move candidates considered per move. Kept small so a move stays
/// cheap, but the candidates are drawn from the *full* candidate list —
/// indexing `0..len.min(MOVE_SAMPLES)` would permanently bar most of a large
/// fabric from ever receiving a move.
const MOVE_SAMPLES: usize = 6;

/// Draws up to [`MOVE_SAMPLES`] uniform indices over the full candidate list
/// and returns them in draw order. Every candidate is reachable, unlike the
/// historical `candidates[rng.gen_range(0..candidates.len().min(6))]`, which
/// could only ever select the first six entries.
fn sample_move_candidates(rng: &mut SmallRng, len: usize) -> Vec<usize> {
    (0..MOVE_SAMPLES.min(len))
        .map(|_| rng.gen_range(0..len))
        .collect()
}

/// Derives the per-II RNG. Each II attempt gets an independent stream that
/// depends only on `(seed, ii)`, making every attempt a pure function of
/// `(dfg, fabric, ii)` — the property that lets warm-start seeding skip or
/// replay ladder prefixes without changing results.
pub(crate) fn attempt_rng(seed: u64, ii: u32) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ (u64::from(ii) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Options of the simulated-annealing mapper.
#[derive(Debug, Clone, PartialEq)]
pub struct SaOptions {
    /// RNG seed (the mapper is deterministic for a fixed seed).
    pub seed: u64,
    /// Annealing moves attempted per II before giving up.
    pub moves_per_ii: usize,
    /// Initial temperature.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied after every move.
    pub cooling: f64,
    /// Optional cap on the II explored (defaults to the architecture's
    /// configuration-memory depth).
    pub max_ii: Option<u32>,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            seed: 0x5EED_0001,
            moves_per_ii: 600,
            initial_temperature: 8.0,
            cooling: 0.995,
            max_ii: None,
        }
    }
}

/// The simulated-annealing mapper.
#[derive(Debug, Clone, Default)]
pub struct SaMapper {
    options: SaOptions,
}

impl SaMapper {
    /// Creates a mapper with the given options.
    pub fn new(options: SaOptions) -> Self {
        SaMapper { options }
    }

    /// Attempts a single II; returns a complete state on success. When
    /// `warm` is given, the initial placement starts from the translated
    /// seed (falling back to greedy for nodes the seed cannot place).
    fn attempt_ii<'a>(
        &self,
        dfg: &'a Dfg,
        arch: &'a Architecture,
        ii: u32,
        rng: &mut SmallRng,
        warm: Option<&PlacementSeed>,
        shared: &LadderShared,
    ) -> Option<MapState<'a>> {
        let policy = HardCapacityCost;
        let mut state = MapState::with_cert_and_adjacency(
            dfg,
            arch,
            ii,
            Arc::clone(&shared.cert),
            Arc::clone(&shared.adj),
        );
        let seeded_start = match warm {
            Some(seed) => {
                apply_seed_placement(&mut state, seed);
                let order = dfg.topological_order().ok()?;
                for node in order {
                    if !state.placements.contains_key(&node) {
                        let _ = place_node_best_effort(&mut state, node, &policy);
                    }
                }
                true
            }
            None => false,
        };
        if !seeded_start && !greedy_place(&mut state, &policy) {
            // Loose fallback: place the remaining nodes anywhere legal so that
            // annealing has a full (if poor) starting point.
            let unplaced: Vec<NodeId> = dfg
                .node_ids()
                .filter(|n| !state.placements.contains_key(n))
                .collect();
            for node in unplaced {
                let placed = place_anywhere(&mut state, node);
                if !placed {
                    return None;
                }
            }
        }
        if seeded_start {
            // Any node neither the seed nor greedy completion could place
            // still needs a slot before annealing can repair routes.
            let unplaced: Vec<NodeId> = dfg
                .node_ids()
                .filter(|n| !state.placements.contains_key(n))
                .collect();
            for node in unplaced {
                if !place_anywhere(&mut state, node) {
                    return None;
                }
            }
        }
        state.route_all(&policy);
        if state.is_complete() {
            return Some(state);
        }

        let mut temperature = self.options.initial_temperature;
        let mut best_cost = state.cost();
        let nodes: Vec<NodeId> = dfg.node_ids().collect();
        let adj = Arc::clone(state.adjacency());
        for _ in 0..self.options.moves_per_ii {
            if state.is_complete() {
                return Some(state);
            }
            let node = nodes[rng.gen_range(0..nodes.len())];
            // Rip up and re-place the node somewhere else, journalling the
            // deltas: a rejected move rolls back in O(move), where the
            // historical kernel restored a full-state snapshot.
            state.begin_txn();
            state.unplace(node);
            let candidates = state.candidate_fus(node);
            if candidates.is_empty() {
                state.rollback_txn();
                continue;
            }
            let base = state.earliest_cycle(node);
            let mut placed = false;
            for idx in sample_move_candidates(rng, candidates.len()) {
                let pick = candidates[idx];
                let cycle = base + rng.gen_range(0..ii);
                if state.can_place(node, pick, cycle) {
                    state.place(node, pick, cycle);
                    placed = true;
                    break;
                }
            }
            if !placed {
                state.rollback_txn();
                continue;
            }
            for &e in adj.incident(node) {
                let _ = state.route_edge(e, &policy);
            }
            let new_cost = state.cost() + if state.timing_ok() { 0.0 } else { 500.0 };
            let delta = new_cost - best_cost;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-3)).exp();
            if accept {
                best_cost = new_cost;
                state.commit_txn();
            } else {
                state.rollback_txn();
            }
            temperature *= self.options.cooling;
        }
        if state.is_complete() {
            Some(state)
        } else {
            None
        }
    }
}

/// Places a node on any functional unit with a free modulo slot, ignoring
/// *congestion* (annealing will repair overused routes) but not structural
/// routability: candidate slots whose incident placed edges provably cannot
/// be routed — the exact-time reachability table has no live path of the
/// required length — are skipped, so the anneal never starts from a
/// placement that could only ever persist in an incomplete state. When no
/// reachable slot exists the old any-free-slot behaviour is the fallback
/// (annealing can still repair such a state by moving the *other* endpoint).
/// Behaviour preservation across the workload suite is pinned by
/// `tests/mapper_bitident.rs`.
fn place_anywhere(state: &mut MapState<'_>, node: NodeId) -> bool {
    let base = state.earliest_cycle(node);
    let candidates = state.candidate_fus(node);
    // One scan: take the first free slot whose edges are reachable,
    // remembering the first merely-free slot as the fallback (the scan
    // only reads state, so the fallback is exactly what a second
    // unfiltered pass would pick).
    let mut first_free = None;
    for offset in 0..(state.ii * 2) {
        for &fu in &candidates {
            let cycle = base + offset;
            if !state.can_place(node, fu, cycle) {
                continue;
            }
            if state.incident_edges_reachable(node, fu, cycle) {
                state.place(node, fu, cycle);
                return true;
            }
            if first_free.is_none() {
                first_free = Some((fu, cycle));
            }
        }
    }
    if let Some((fu, cycle)) = first_free {
        state.place(node, fu, cycle);
        return true;
    }
    false
}

impl SaMapper {
    /// Maps with an optional warm-start hint.
    ///
    /// A canonical same-fabric seed replays directly (bit-identical to the
    /// cold result); a proven-infeasible ladder prefix raises the starting
    /// II; a foreign-fabric seed warm-starts each annealing attempt *after*
    /// the scratch attempt fails, so a seeded run never reaches a worse II
    /// than the unseeded run on the same point.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] exactly as [`Mapper::map`] does.
    pub fn map_with_seed(
        &self,
        dfg: &Dfg,
        arch: &Architecture,
        hint: Option<&MapSeed>,
    ) -> Result<SeededMapping, MapError> {
        if dfg.memory_node_count() > 0 && arch.memory_unit_count() == 0 {
            return Err(MapError::UnsupportedDfg(
                "DFG contains memory operations but the architecture has no memory-capable unit"
                    .into(),
            ));
        }
        let ctx = SeedContext::of(dfg, arch);
        let fingerprint = options_fingerprint(&self.options);
        let start = mii(dfg, arch);
        let max_ii = self.options.max_ii.unwrap_or(arch.params().max_ii());
        let infeasible = || MapError::NoValidMapping {
            kernel: dfg.name().to_string(),
            arch: arch.name().to_string(),
            max_ii,
        };
        let (start, warm, floored) =
            match plan_ladder(hint, &ctx, self.name(), fingerprint, start, max_ii) {
                LadderPlan::Infeasible => return Err(infeasible()),
                LadderPlan::Replay(seed) => {
                    if let Some(mapping) = seed.replay(dfg, arch) {
                        return Ok(SeededMapping {
                            seed: PlacementSeed::capture_inherited(
                                dfg,
                                &mapping,
                                arch,
                                fingerprint,
                                seed,
                            ),
                            mapping,
                            outcome: SeedOutcome::Replayed,
                        });
                    }
                    // Corrupt or mismatched seed: fall back to the scratch
                    // ladder, which is always sound.
                    (start, None, false)
                }
                LadderPlan::Ladder {
                    start,
                    warm,
                    floored,
                } => (start, warm, floored),
            };
        // The capacity certificate accumulates across the entire ladder (all
        // II attempts, including failed ones), so the captured seed can
        // prove its result transfers to differently-provisioned networks;
        // the adjacency index likewise serves every attempt.
        let shared = LadderShared::of(dfg, arch);
        for ii in start..=max_ii {
            let mut rng = attempt_rng(self.options.seed, ii);
            // Scratch attempt first: when it succeeds the result is exactly
            // the unseeded one; the warm attempt only runs on IIs the
            // scratch search cannot close.
            if let Some(state) = self.attempt_ii(dfg, arch, ii, &mut rng, None, &shared) {
                let mapping = state.into_mapping(self.name());
                mapping.validate(dfg, arch)?;
                // Floored results are canonical (the skipped prefix was
                // proved infeasible on this fabric) but not transferable:
                // the certificate does not cover the skipped attempts.
                let (outcome, run_cert) = if floored {
                    (SeedOutcome::Floored, None)
                } else {
                    (SeedOutcome::Scratch, Some(&*shared.cert))
                };
                return Ok(SeededMapping {
                    seed: PlacementSeed::capture_with_cert(
                        dfg,
                        &mapping,
                        arch,
                        fingerprint,
                        true,
                        run_cert,
                    ),
                    mapping,
                    outcome,
                });
            }
            if let Some(seed) = warm {
                let mut rng = attempt_rng(self.options.seed ^ 0x5EED_CAFE, ii);
                if let Some(state) = self.attempt_ii(dfg, arch, ii, &mut rng, Some(seed), &shared) {
                    let mapping = state.into_mapping(self.name());
                    mapping.validate(dfg, arch)?;
                    return Ok(SeededMapping {
                        seed: PlacementSeed::capture(dfg, &mapping, arch, fingerprint, false),
                        mapping,
                        outcome: SeedOutcome::WarmStarted,
                    });
                }
            }
        }
        Err(infeasible())
    }
}

impl Mapper for SaMapper {
    fn map(&self, dfg: &Dfg, arch: &Architecture) -> Result<Mapping, MapError> {
        self.map_with_seed(dfg, arch, None).map(|s| s.mapping)
    }

    fn name(&self) -> &'static str {
        "sa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    fn mac_kernel(unroll: u64) -> Dfg {
        let kernel = KernelBuilder::new("mac")
            .loop_var("i", 32)
            .array("a", 32)
            .array("b", 32)
            .array("out", 1)
            .accumulate(
                "out",
                AffineExpr::constant(0),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::unrolled(unroll)).unwrap()
    }

    #[test]
    fn maps_mac_on_spatio_temporal() {
        let dfg = mac_kernel(1);
        let arch = spatio_temporal::build(4, 4);
        let mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
        assert!(mapping.ii >= mii(&dfg, &arch));
        assert!(mapping.ii <= arch.params().max_ii());
    }

    #[test]
    fn maps_unrolled_mac_on_plaid() {
        let dfg = mac_kernel(2);
        let arch = plaid::build(2, 2);
        let mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dfg = mac_kernel(2);
        let arch = spatio_temporal::build(4, 4);
        let a = SaMapper::default().map(&dfg, &arch).unwrap();
        let b = SaMapper::default().map(&dfg, &arch).unwrap();
        assert_eq!(a.ii, b.ii);
        assert_eq!(a.placements, b.placements);
    }

    #[test]
    fn total_cycles_follow_ii() {
        let dfg = mac_kernel(1);
        let arch = spatio_temporal::build(4, 4);
        let mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        let iters = dfg.total_iterations();
        assert_eq!(
            mapping.total_cycles(iters),
            (iters - 1) * u64::from(mapping.ii) + u64::from(mapping.schedule_length())
        );
    }

    #[test]
    fn move_sampling_reaches_candidates_beyond_index_five() {
        // Regression for the historical sampling bias
        // `candidates[rng.gen_range(0..candidates.len().min(6))]`, which
        // could only ever move a node to the first six FUs of the candidate
        // list — on an 8x8 fabric that bars annealing from most of the
        // array. The fixed sampler draws indices over the full list.
        let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
        let len = 64; // an 8x8 fabric's candidate list
        let mut seen = vec![false; len];
        for _ in 0..400 {
            for idx in sample_move_candidates(&mut rng, len) {
                assert!(idx < len);
                seen[idx] = true;
            }
        }
        let beyond_six = seen.iter().skip(6).filter(|&&s| s).count();
        assert!(
            beyond_six > len / 2,
            "moves only reach {beyond_six} candidates beyond index 5"
        );
        // Short lists still sample within bounds.
        for _ in 0..50 {
            for idx in sample_move_candidates(&mut rng, 3) {
                assert!(idx < 3);
            }
        }
        assert!(sample_move_candidates(&mut rng, 1).iter().all(|&i| i == 0));
    }

    #[test]
    fn maps_on_a_large_fabric_where_biased_sampling_starved_moves() {
        let dfg = mac_kernel(4);
        let arch = spatio_temporal::build(8, 8);
        let mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
    }

    #[test]
    fn rejects_memory_dfg_on_memoryless_architecture() {
        // Build a degenerate architecture with no memory units by using a
        // Plaid 1x1 variant? All provided architectures have memory units, so
        // construct the error path via an empty-memory check instead.
        let dfg = mac_kernel(1);
        let arch = spatio_temporal::build(4, 4);
        assert!(SaMapper::default().map(&dfg, &arch).is_ok());
    }
}
