//! Modulo-scheduling mappers for CGRAs.
//!
//! This crate implements the compiler back end of the reproduction: given a
//! DFG (from `plaid-dfg`) and an architecture (from `plaid-arch`), a mapper
//! produces a [`Mapping`]: a placement of every node on a functional unit and
//! schedule cycle, plus a route through the routing-resource graph for every
//! data-carrying edge, valid under modulo resource constraints for some
//! initiation interval (II).
//!
//! Mappers provided (matching the paper's Section 6.3 / Figure 18):
//!
//! * [`sa`] — a generic simulated-annealing mapper (the "SA" baseline).
//! * [`pathfinder`] — a negotiation-based router in the spirit of PathFinder
//!   (the "PathFinder" baseline).
//! * [`plaid`] — Algorithm 2: the hierarchical, motif-aware Plaid mapper.
//! * [`spatial`] — the spatial-CGRA mapper, which partitions complex DFGs and
//!   spills intermediate values to the scratch-pad.
//!
//! All stochastic mappers take explicit seeds and are fully deterministic.
//!
//! # Example
//!
//! ```
//! use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
//! use plaid_dfg::lower::{lower_kernel, LoweringOptions};
//! use plaid_dfg::Op;
//! use plaid_arch::spatio_temporal;
//! use plaid_mapper::sa::{SaMapper, SaOptions};
//! use plaid_mapper::Mapper;
//!
//! let kernel = KernelBuilder::new("axpy")
//!     .loop_var("i", 16)
//!     .array("x", 16)
//!     .array("y", 16)
//!     .store("y", AffineExpr::var(0), Expr::binary(
//!         Op::Add,
//!         Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
//!         Expr::load("y", AffineExpr::var(0)),
//!     ))
//!     .build().unwrap();
//! let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
//! let arch = spatio_temporal::build(4, 4);
//! let mapping = SaMapper::new(SaOptions::default()).map(&dfg, &arch).unwrap();
//! assert!(mapping.validate(&dfg, &arch).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod error;
pub mod mapping;
pub mod mii;
pub mod pathfinder;
pub mod placement;
pub mod plaid;
pub mod route;
pub mod sa;
pub mod seed;
pub mod spatial;
pub mod state;

pub use error::MapError;
pub use mapping::{Mapping, Placement, Route, RouteHop};
pub use mii::{comm_mii, mii, rec_mii, res_mii};
pub use pathfinder::{PathFinderMapper, PathFinderOptions};
pub use plaid::{PlaidMapper, PlaidMapperOptions};
pub use sa::{SaMapper, SaOptions};
pub use seed::{
    dfg_fingerprint, fabric_signature, fabric_signature_nocap, InfeasiblePrefix, MapSeed,
    PlacementSeed, SeedOutcome, SeededMapping,
};
pub use spatial::{SpatialMapper, SpatialOptions, SpatialSchedule};
pub use state::CapacityCert;

use plaid_arch::Architecture;
use plaid_dfg::Dfg;

/// Common interface of all modulo-scheduling mappers.
pub trait Mapper {
    /// Maps `dfg` onto `arch`, returning a valid mapping or an error if no
    /// valid mapping was found within the configuration-memory bound.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the DFG cannot be mapped (e.g. it needs more
    /// memory units than the architecture offers, or no II up to the
    /// configuration-memory depth admits a valid schedule).
    fn map(&self, dfg: &Dfg, arch: &Architecture) -> Result<Mapping, MapError>;

    /// Human-readable mapper name used in reports.
    fn name(&self) -> &'static str;
}
