//! The PathFinder-style negotiation-based mapper (the paper's "PathFinder"
//! baseline, Section 6.3, adapted from McMurchie & Ebeling).
//!
//! Placement is greedy list scheduling; routing then proceeds in negotiation
//! rounds: all data edges are routed with congestion *allowed*, after which
//! the history cost of every overused resource is increased and all routes
//! are ripped up and re-routed. The process converges when no resource is
//! overused; otherwise the II is increased.

use plaid_arch::Architecture;
use std::sync::Arc;

use plaid_dfg::{Adjacency, Dfg, EdgeId, NodeId};

use crate::error::MapError;
use crate::mapping::Mapping;
use crate::mii::mii;
use crate::placement::{greedy_place, place_node_best_effort, MapState};
use crate::route::{HardCapacityCost, NegotiatedCost};
use crate::seed::{
    apply_seed_placement, options_fingerprint, plan_ladder, LadderPlan, MapSeed, PlacementSeed,
    SeedContext, SeedOutcome, SeededMapping,
};
use crate::Mapper;

/// Options of the PathFinder mapper.
#[derive(Debug, Clone, PartialEq)]
pub struct PathFinderOptions {
    /// Maximum negotiation rounds per II.
    pub max_rounds: usize,
    /// Optional cap on the II explored.
    pub max_ii: Option<u32>,
}

impl Default for PathFinderOptions {
    fn default() -> Self {
        PathFinderOptions {
            max_rounds: 24,
            max_ii: None,
        }
    }
}

/// The negotiation-based mapper.
#[derive(Debug, Clone, Default)]
pub struct PathFinderMapper {
    options: PathFinderOptions,
}

impl PathFinderMapper {
    /// Creates a mapper with the given options.
    pub fn new(options: PathFinderOptions) -> Self {
        PathFinderMapper { options }
    }

    fn attempt_ii<'a>(
        &self,
        dfg: &'a Dfg,
        arch: &'a Architecture,
        ii: u32,
        warm: Option<&PlacementSeed>,
        dfg_adj: &Arc<Adjacency>,
    ) -> Option<MapState<'a>> {
        let mut state = MapState::with_adjacency(dfg, arch, ii, Arc::clone(dfg_adj));
        // Placement uses the hard-capacity policy so the starting point is
        // already congestion-aware; negotiation then owns the routing. A
        // warm seed pre-places what translates onto the new fabric and the
        // rest completes greedily; if the seeded start is unusable the
        // attempt falls back to pure greedy placement.
        let mut placed_ok = false;
        if let Some(seed) = warm {
            apply_seed_placement(&mut state, seed);
            if let Ok(order) = dfg.topological_order() {
                placed_ok = true;
                for node in order {
                    if !state.placements.contains_key(&node)
                        && !place_node_best_effort(&mut state, node, &HardCapacityCost)
                    {
                        placed_ok = false;
                        break;
                    }
                }
            }
            if placed_ok && !state.timing_ok() {
                placed_ok = false;
            }
            if !placed_ok {
                state = MapState::with_adjacency(dfg, arch, ii, Arc::clone(dfg_adj));
            }
        }
        if !placed_ok && !greedy_place(&mut state, &HardCapacityCost) {
            return None;
        }
        if !state.timing_ok() {
            return None;
        }
        let mut policy = NegotiatedCost::new(arch.resources().len());
        for _round in 0..self.options.max_rounds {
            // Rip up all routes and re-route under the current history costs.
            for e in 0..dfg.edge_count() as u32 {
                state.unroute(EdgeId(e));
            }
            let unrouted = state.route_all(&policy);
            if unrouted == 0 && state.state.total_overuse() == 0 {
                return Some(state);
            }
            if unrouted > 0 {
                // Some edge has no path at all within its timing budget; no
                // amount of negotiation will fix that at this II.
                return None;
            }
            policy.accumulate_history(&state.state, arch);
        }
        None
    }
}

impl PathFinderMapper {
    /// Maps with an optional warm-start hint.
    ///
    /// A canonical same-fabric seed replays directly (bit-identical to the
    /// cold result); a proven-infeasible ladder prefix raises the starting
    /// II; a foreign-fabric seed warm-starts negotiation *after* the scratch
    /// attempt fails at an II, so a seeded run never reaches a worse II than
    /// the unseeded run on the same point.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] exactly as [`Mapper::map`] does.
    pub fn map_with_seed(
        &self,
        dfg: &Dfg,
        arch: &Architecture,
        hint: Option<&MapSeed>,
    ) -> Result<SeededMapping, MapError> {
        if dfg.memory_node_count() > 0 && arch.memory_unit_count() == 0 {
            return Err(MapError::UnsupportedDfg(
                "DFG contains memory operations but the architecture has no memory-capable unit"
                    .into(),
            ));
        }
        let ctx = SeedContext::of(dfg, arch);
        let fingerprint = options_fingerprint(&self.options);
        let start = mii(dfg, arch);
        let max_ii = self.options.max_ii.unwrap_or(arch.params().max_ii());
        let infeasible = || MapError::NoValidMapping {
            kernel: dfg.name().to_string(),
            arch: arch.name().to_string(),
            max_ii,
        };
        let (start, warm, floored) =
            match plan_ladder(hint, &ctx, self.name(), fingerprint, start, max_ii) {
                LadderPlan::Infeasible => return Err(infeasible()),
                LadderPlan::Replay(seed) => {
                    if let Some(mapping) = seed.replay(dfg, arch) {
                        return Ok(SeededMapping {
                            seed: PlacementSeed::capture_inherited(
                                dfg,
                                &mapping,
                                arch,
                                fingerprint,
                                seed,
                            ),
                            mapping,
                            outcome: SeedOutcome::Replayed,
                        });
                    }
                    (start, None, false)
                }
                LadderPlan::Ladder {
                    start,
                    warm,
                    floored,
                } => (start, warm, floored),
            };
        // One adjacency index serves every II attempt of the ladder.
        let dfg_adj = Arc::new(Adjacency::of(dfg));
        for ii in start..=max_ii {
            if let Some(state) = self.attempt_ii(dfg, arch, ii, None, &dfg_adj) {
                let mapping = state.into_mapping(self.name());
                mapping.validate(dfg, arch)?;
                let outcome = if floored {
                    SeedOutcome::Floored
                } else {
                    SeedOutcome::Scratch
                };
                return Ok(SeededMapping {
                    seed: PlacementSeed::capture(dfg, &mapping, arch, fingerprint, true),
                    mapping,
                    outcome,
                });
            }
            if let Some(seed) = warm {
                if let Some(state) = self.attempt_ii(dfg, arch, ii, Some(seed), &dfg_adj) {
                    let mapping = state.into_mapping(self.name());
                    mapping.validate(dfg, arch)?;
                    return Ok(SeededMapping {
                        seed: PlacementSeed::capture(dfg, &mapping, arch, fingerprint, false),
                        mapping,
                        outcome: SeedOutcome::WarmStarted,
                    });
                }
            }
        }
        Err(infeasible())
    }
}

impl Mapper for PathFinderMapper {
    fn map(&self, dfg: &Dfg, arch: &Architecture) -> Result<Mapping, MapError> {
        self.map_with_seed(dfg, arch, None).map(|s| s.mapping)
    }

    fn name(&self) -> &'static str {
        "pathfinder"
    }
}

/// Convenience used in tests and experiments: checks that all placements in a
/// mapping sit on distinct `(FU, slot)` pairs.
pub fn placements_are_exclusive(mapping: &Mapping) -> bool {
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut nodes: Vec<(&NodeId, &crate::mapping::Placement)> = mapping.placements.iter().collect();
    nodes.sort_by_key(|(n, _)| n.0);
    for (_, p) in nodes {
        if !seen.insert((p.fu.0, p.cycle % mapping.ii)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    fn stencil_kernel() -> Dfg {
        let kernel = KernelBuilder::new("jacobi_like")
            .loop_var("i", 16)
            .array("a", 18)
            .array("b", 16)
            .store(
                "b",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(
                        Op::Add,
                        Expr::load("a", AffineExpr::var(0)),
                        Expr::load("a", AffineExpr::var(0).offset(1)),
                    ),
                    Expr::load("a", AffineExpr::var(0).offset(2)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::default()).unwrap()
    }

    #[test]
    fn maps_stencil_on_spatio_temporal() {
        let dfg = stencil_kernel();
        let arch = spatio_temporal::build(4, 4);
        let mapping = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
        assert!(placements_are_exclusive(&mapping));
    }

    #[test]
    fn maps_stencil_on_plaid() {
        let dfg = stencil_kernel();
        let arch = plaid::build(2, 2);
        let mapping = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
    }

    #[test]
    fn deterministic_output() {
        let dfg = stencil_kernel();
        let arch = spatio_temporal::build(4, 4);
        let a = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        let b = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        assert_eq!(a.ii, b.ii);
        assert_eq!(a.routes.len(), b.routes.len());
    }

    #[test]
    fn ii_respects_lower_bound() {
        let dfg = stencil_kernel();
        let arch = spatio_temporal::build(4, 4);
        let mapping = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        assert!(mapping.ii >= mii(&dfg, &arch));
    }
}
