//! The spatial-CGRA mapper: DFG partitioning with scratch-pad spills.
//!
//! Spatial CGRAs (SNAFU / RipTide style) fix the fabric configuration for the
//! duration of a code segment: every DFG node owns a functional unit and data
//! streams through the array. Complex kernels whose DFGs exceed the fabric
//! must be *partitioned*; intermediate values crossing a partition boundary
//! are stored to the scratch-pad by the producing partition and re-loaded by
//! the consuming one, and the partitions execute back-to-back over the full
//! iteration space (Section 6.3 of the paper, which uses a partitioning
//! script for the same purpose).
//!
//! The mapper here is an analytical model of that execution style rather than
//! a place-and-route: each partition's throughput is limited by its memory
//! accesses per iteration (the scratch-pad has a fixed number of ports), its
//! recurrences, and the fabric size. This captures exactly the effects the
//! paper attributes to the spatial baseline: kernels with simple dependencies
//! match the spatio-temporal CGRA, while partitioned kernels pay for extra
//! loads/stores and extra passes.

use std::collections::{HashMap, HashSet};

use plaid_arch::{ArchClass, Architecture};
use plaid_dfg::{Dfg, NodeId};

use crate::error::MapError;
use crate::mii::rec_mii;

/// Options of the spatial mapper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpatialOptions {
    /// Maximum nodes (original plus spill operations) per partition; defaults
    /// to the number of functional units of the fabric.
    pub max_nodes_per_partition: Option<usize>,
}

/// One spatial partition of the DFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Original DFG nodes assigned to this partition.
    pub nodes: Vec<NodeId>,
    /// Memory operations of the original DFG in this partition.
    pub memory_nodes: usize,
    /// Spill stores emitted by this partition (values consumed downstream).
    pub spill_stores: usize,
    /// Spill loads emitted by this partition (values produced upstream).
    pub spill_loads: usize,
    /// Effective initiation interval of the partition.
    pub ii: u32,
}

impl Partition {
    /// Memory accesses per iteration including spills.
    pub fn memory_accesses(&self) -> usize {
        self.memory_nodes + self.spill_stores + self.spill_loads
    }
}

/// The result of spatial mapping: an ordered list of partitions executed
/// back-to-back over the full iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpatialSchedule {
    /// Kernel name.
    pub kernel: String,
    /// Architecture name.
    pub arch_name: String,
    /// Partitions in execution order.
    pub partitions: Vec<Partition>,
}

impl SpatialSchedule {
    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total spill memory operations added by partitioning.
    pub fn added_memory_ops(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.spill_loads + p.spill_stores)
            .sum()
    }

    /// Total execution cycles over `iterations` loop iterations: partitions
    /// run sequentially, each streaming the full iteration space at its own
    /// initiation interval (plus a small pipeline-fill overhead).
    pub fn total_cycles(&self, iterations: u64) -> u64 {
        self.partitions
            .iter()
            .map(|p| iterations * u64::from(p.ii) + u64::from(p.nodes.len() as u32))
            .sum()
    }

    /// Effective initiation interval averaged over partitions (for reports).
    pub fn effective_ii(&self) -> f64 {
        if self.partitions.is_empty() {
            return 0.0;
        }
        self.partitions.iter().map(|p| f64::from(p.ii)).sum::<f64>()
    }
}

/// The spatial mapper.
#[derive(Debug, Clone, Default)]
pub struct SpatialMapper {
    options: SpatialOptions,
}

impl SpatialMapper {
    /// Creates a mapper with the given options.
    pub fn new(options: SpatialOptions) -> Self {
        SpatialMapper { options }
    }

    /// Partitions `dfg` for spatial execution on `arch`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::UnsupportedDfg`] if `arch` is not a spatial-class
    /// architecture or offers no memory port while the DFG needs one.
    pub fn map_spatial(&self, dfg: &Dfg, arch: &Architecture) -> Result<SpatialSchedule, MapError> {
        if arch.class() != ArchClass::Spatial {
            return Err(MapError::UnsupportedDfg(format!(
                "spatial mapper requires a spatial-class architecture, got {}",
                arch.class().label()
            )));
        }
        if dfg.memory_node_count() > 0 && arch.memory_unit_count() == 0 {
            return Err(MapError::UnsupportedDfg(
                "DFG contains memory operations but the architecture has no memory port".into(),
            ));
        }
        let fabric_nodes = self
            .options
            .max_nodes_per_partition
            .unwrap_or_else(|| arch.functional_units().count());
        let memory_ports = arch.memory_unit_count().max(1);
        let order = dfg
            .topological_order()
            .map_err(|e| MapError::UnsupportedDfg(e.to_string()))?;

        // Greedy contiguous partitioning in topological order: a partition
        // closes when adding the next node would exceed the fabric.
        let mut assignment: HashMap<NodeId, usize> = HashMap::new();
        let mut partitions: Vec<Vec<NodeId>> = vec![Vec::new()];
        for &node in &order {
            let current = partitions.len() - 1;
            if partitions[current].len() + 1 > fabric_nodes {
                partitions.push(Vec::new());
            }
            let current = partitions.len() - 1;
            partitions[current].push(node);
            assignment.insert(node, current);
        }

        // Count spills: every distinct (value, consumer-partition) pair of a
        // data-carrying edge crossing partitions needs one store upstream and
        // one load downstream.
        let mut spill_stores = vec![HashSet::new(); partitions.len()];
        let mut spill_loads = vec![HashSet::new(); partitions.len()];
        for edge in dfg.edges() {
            if !dfg.edge_carries_data(edge) {
                continue;
            }
            let src_p = assignment[&edge.src];
            let dst_p = assignment[&edge.dst];
            if src_p != dst_p {
                spill_stores[src_p].insert(edge.src);
                spill_loads[dst_p].insert((edge.src, dst_p));
            }
        }

        let global_rec = rec_mii(dfg);
        let built: Vec<Partition> = partitions
            .iter()
            .enumerate()
            .map(|(i, nodes)| {
                let memory_nodes = nodes.iter().filter(|&&n| dfg.node(n).is_memory()).count();
                let stores = spill_stores[i].len();
                let loads = spill_loads[i].len();
                let has_recurrence = dfg
                    .recurrence_edges()
                    .any(|e| assignment[&e.src] == i || assignment[&e.dst] == i);
                let mem_bound = (memory_nodes + stores + loads).div_ceil(memory_ports) as u32;
                let rec_bound = if has_recurrence { global_rec } else { 1 };
                Partition {
                    nodes: nodes.clone(),
                    memory_nodes,
                    spill_stores: stores,
                    spill_loads: loads,
                    ii: mem_bound.max(rec_bound).max(1),
                }
            })
            .collect();

        Ok(SpatialSchedule {
            kernel: dfg.name().to_string(),
            arch_name: arch.name().to_string(),
            partitions: built,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{spatial, spatio_temporal};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    fn mac_kernel(unroll: u64) -> Dfg {
        let kernel = KernelBuilder::new("mac")
            .loop_var("i", 64)
            .array("a", 64)
            .array("b", 64)
            .array("out", 1)
            .accumulate(
                "out",
                AffineExpr::constant(0),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::unrolled(unroll)).unwrap()
    }

    #[test]
    fn small_kernel_fits_in_one_partition() {
        let dfg = mac_kernel(1);
        let arch = spatial::build(4, 4);
        let schedule = SpatialMapper::default().map_spatial(&dfg, &arch).unwrap();
        assert_eq!(schedule.partition_count(), 1);
        assert_eq!(schedule.added_memory_ops(), 0);
        assert!(schedule.partitions[0].ii >= 1);
    }

    #[test]
    fn large_unrolled_kernel_is_partitioned_with_spills() {
        let dfg = mac_kernel(8);
        let arch = spatial::build(4, 4);
        let schedule = SpatialMapper::default().map_spatial(&dfg, &arch).unwrap();
        assert!(schedule.partition_count() > 1);
        assert!(schedule.added_memory_ops() > 0);
        // Partitioning costs cycles: the schedule is slower than a single
        // partition streaming at the same II.
        let single_pass = dfg.total_iterations() * u64::from(schedule.partitions[0].ii);
        assert!(schedule.total_cycles(dfg.total_iterations()) > single_pass);
    }

    #[test]
    fn rejects_non_spatial_architecture() {
        let dfg = mac_kernel(1);
        let arch = spatio_temporal::build(4, 4);
        assert!(matches!(
            SpatialMapper::default().map_spatial(&dfg, &arch),
            Err(MapError::UnsupportedDfg(_))
        ));
    }

    #[test]
    fn memory_bound_ii_reflects_port_pressure() {
        let dfg = mac_kernel(2);
        let arch = spatial::build(4, 4);
        let schedule = SpatialMapper::default().map_spatial(&dfg, &arch).unwrap();
        // 6 memory ops over 4 ports -> II >= 2 (and >= RecMII of the
        // reduction).
        assert!(schedule.partitions[0].ii >= 2);
        assert!(schedule.effective_ii() >= 2.0);
    }

    #[test]
    fn custom_partition_size_is_respected() {
        let dfg = mac_kernel(4);
        let arch = spatial::build(4, 4);
        let mapper = SpatialMapper::new(SpatialOptions {
            max_nodes_per_partition: Some(6),
        });
        let schedule = mapper.map_spatial(&dfg, &arch).unwrap();
        assert!(schedule.partitions.iter().all(|p| p.nodes.len() <= 6));
        assert!(schedule.partition_count() >= 3);
    }

    #[test]
    fn total_cycles_scale_with_partitions() {
        let dfg = mac_kernel(4);
        let arch = spatial::build(4, 4);
        let schedule = SpatialMapper::default().map_spatial(&dfg, &arch).unwrap();
        let iters = dfg.total_iterations();
        let manual: u64 = schedule
            .partitions
            .iter()
            .map(|p| iters * u64::from(p.ii) + p.nodes.len() as u64)
            .sum();
        assert_eq!(schedule.total_cycles(iters), manual);
    }
}
