//! Shared placement / incremental-routing machinery used by all mappers.
//!
//! A [`MapState`] owns the partial mapping for a fixed II: node placements,
//! edge routes and the modulo occupancy table. Mappers mutate it through
//! place/unplace and route/unroute operations and read a scalar cost that
//! combines unrouted edges, route length and congestion.
//!
//! The state is an *incremental kernel*: every mutating primitive appends
//! its inverse to a move journal while a transaction is open, so a rejected
//! annealing move is undone by replaying O(move) deltas instead of restoring
//! an O(state) snapshot ([`MapState::begin_txn`] / [`MapState::commit_txn`]
//! / [`MapState::rollback_txn`]). Aggregates the move loop reads every
//! iteration — unrouted-edge count, total hop count, total overuse — are
//! maintained by the primitives, making [`MapState::cost`] O(1), and edge
//! queries go through a per-DFG [`Adjacency`] index instead of scanning the
//! edge list.

use std::sync::Arc;

use plaid_arch::{Architecture, ResourceId};
use plaid_dfg::{Adjacency, Dfg, DfgEdge, EdgeId, EdgeKind, NodeId};

use crate::dense::DenseMap;
use crate::mapping::{Mapping, Placement, Route};
use crate::route::{
    commit_route, find_route_in, release_route, CostPolicy, RouteRequest, RouterScratch,
};
use crate::state::RoutingState;

/// Cost charged for every data-carrying edge that could not be routed.
pub const UNROUTED_PENALTY: f64 = 1_000.0;

/// Search-wide state shared by every II attempt of one ladder: the
/// capacity certificate accumulating across attempts (including failed
/// ones) and the DFG adjacency index, both built once per `map_with_seed`.
pub(crate) struct LadderShared {
    /// Capacity-decision accumulator for the whole ladder.
    pub cert: Arc<crate::state::CapacityCert>,
    /// Incident-edge index of the DFG being mapped.
    pub adj: Arc<Adjacency>,
}

impl LadderShared {
    /// Builds the shared state for one search over `dfg` on `arch`.
    pub fn of(dfg: &Dfg, arch: &Architecture) -> Self {
        LadderShared {
            cert: Arc::new(crate::state::CapacityCert::new(arch.resources().len())),
            adj: Arc::new(Adjacency::of(dfg)),
        }
    }
}

/// One invertible delta recorded by the move journal. Each entry stores
/// exactly what its inverse needs: removals keep the removed value (moved,
/// not copied), insertions need only the key.
#[derive(Debug, Clone)]
enum JournalOp {
    /// A node was placed; undo removes the placement and frees the slot.
    Placed(NodeId),
    /// A node was unplaced; undo restores the placement and re-occupies.
    Unplaced(NodeId, Placement),
    /// An edge was routed; undo removes the route and releases its hops.
    Routed(EdgeId),
    /// An edge was unrouted; undo re-commits the stored route.
    Unrouted(EdgeId, Route),
}

/// Mutable mapping state for one II attempt.
#[derive(Debug, Clone)]
pub struct MapState<'a> {
    /// The DFG being mapped.
    pub dfg: &'a Dfg,
    /// The target architecture.
    pub arch: &'a Architecture,
    /// Initiation interval of this attempt.
    pub ii: u32,
    /// Modulo occupancy (functional units and switches).
    pub state: RoutingState,
    /// Current placements, indexed densely by node id.
    pub placements: DenseMap<NodeId, Placement>,
    /// Current routes of data-carrying edges, indexed densely by edge id.
    pub routes: DenseMap<EdgeId, Route>,
    /// Per-node incident-edge index, built once per DFG and shared across
    /// clones and II attempts.
    adj: Arc<Adjacency>,
    /// Reusable router search state (alloc-free routing on the hot path).
    scratch: RouterScratch,
    /// Inverse-delta log of the open transaction (empty outside one).
    journal: Vec<JournalOp>,
    /// Whether a transaction is open (primitives journal their inverses).
    in_txn: bool,
    /// Sum of `hops.len()` over `routes` — route length in O(1).
    total_hops: usize,
}

impl<'a> MapState<'a> {
    /// Creates an empty state for the given II.
    pub fn new(dfg: &'a Dfg, arch: &'a Architecture, ii: u32) -> Self {
        Self::with_adjacency(dfg, arch, ii, Arc::new(Adjacency::of(dfg)))
    }

    /// Like [`MapState::new`], but reusing a prebuilt adjacency index —
    /// mappers build the index once per search and share it across every II
    /// attempt of a ladder instead of re-deriving it per attempt.
    pub fn with_adjacency(
        dfg: &'a Dfg,
        arch: &'a Architecture,
        ii: u32,
        adj: Arc<Adjacency>,
    ) -> Self {
        Self::from_parts(dfg, arch, ii, RoutingState::new(arch, ii), adj)
    }

    /// Creates an empty state whose capacity decisions are recorded into an
    /// externally owned certificate (shared across all the states of one II
    /// ladder).
    pub fn with_cert(
        dfg: &'a Dfg,
        arch: &'a Architecture,
        ii: u32,
        cert: Arc<crate::state::CapacityCert>,
    ) -> Self {
        Self::with_cert_and_adjacency(dfg, arch, ii, cert, Arc::new(Adjacency::of(dfg)))
    }

    /// Like [`MapState::with_cert`], but reusing a prebuilt adjacency index.
    pub fn with_cert_and_adjacency(
        dfg: &'a Dfg,
        arch: &'a Architecture,
        ii: u32,
        cert: Arc<crate::state::CapacityCert>,
        adj: Arc<Adjacency>,
    ) -> Self {
        Self::from_parts(dfg, arch, ii, RoutingState::with_cert(arch, ii, cert), adj)
    }

    fn from_parts(
        dfg: &'a Dfg,
        arch: &'a Architecture,
        ii: u32,
        state: RoutingState,
        adj: Arc<Adjacency>,
    ) -> Self {
        debug_assert_eq!(
            adj.node_count(),
            dfg.node_count(),
            "adjacency of another DFG"
        );
        MapState {
            dfg,
            arch,
            ii,
            state,
            placements: DenseMap::for_universe(dfg.node_count()),
            routes: DenseMap::for_universe(dfg.edge_count()),
            adj,
            scratch: RouterScratch::new(),
            journal: Vec::new(),
            in_txn: false,
            total_hops: 0,
        }
    }

    /// The per-node incident-edge index of the DFG being mapped. Mappers
    /// clone the `Arc` once per search and iterate `incident(node)` in their
    /// move loops instead of scanning every edge.
    pub fn adjacency(&self) -> &Arc<Adjacency> {
        &self.adj
    }

    /// Opens a transaction: subsequent place/unplace/route/unroute calls
    /// journal their inverses until [`Self::commit_txn`] or
    /// [`Self::rollback_txn`] closes it. Transactions do not nest.
    pub fn begin_txn(&mut self) {
        debug_assert!(!self.in_txn, "move transactions do not nest");
        debug_assert!(self.journal.is_empty());
        self.in_txn = true;
    }

    /// Accepts the open transaction's mutations and drops the journal.
    pub fn commit_txn(&mut self) {
        debug_assert!(self.in_txn, "commit_txn without begin_txn");
        self.journal.clear();
        self.in_txn = false;
    }

    /// Rejects the open transaction: replays the journalled inverses in
    /// reverse, leaving the state exactly as it was at [`Self::begin_txn`]
    /// (placements, routes, occupancy and all maintained aggregates) in
    /// O(deltas) — the journal replaces the historical full-state snapshot
    /// (`let snapshot = state.clone()`) the move loops restored on reject.
    pub fn rollback_txn(&mut self) {
        debug_assert!(self.in_txn, "rollback_txn without begin_txn");
        while let Some(op) = self.journal.pop() {
            match op {
                JournalOp::Placed(node) => {
                    let p = self
                        .placements
                        .remove(&node)
                        .expect("journaled placement exists");
                    self.state.release(p.fu, p.cycle, node);
                }
                JournalOp::Unplaced(node, p) => {
                    self.state.occupy(p.fu, p.cycle, node);
                    self.placements.insert(node, p);
                }
                JournalOp::Routed(edge) => {
                    let route = self.routes.remove(&edge).expect("journaled route exists");
                    self.total_hops -= route.hops.len();
                    release_route(&mut self.state, &route, self.dfg.edge(edge).src);
                }
                JournalOp::Unrouted(edge, route) => {
                    commit_route(&mut self.state, &route, self.dfg.edge(edge).src);
                    self.total_hops += route.hops.len();
                    self.routes.insert(edge, route);
                }
            }
        }
        self.in_txn = false;
    }

    /// Whether `fu` can host `node` (capability plus a free modulo slot).
    pub fn can_place(&self, node: NodeId, fu: ResourceId, cycle: u32) -> bool {
        let n = self.dfg.node(node);
        let Some(caps) = self.arch.resource(fu).fu_caps() else {
            return false;
        };
        if n.op.is_memory() && !caps.memory {
            return false;
        }
        if n.op.is_compute() && !caps.compute {
            return false;
        }
        self.state.fits(fu, cycle % self.ii, node)
    }

    /// Places `node` on `(fu, cycle)`, occupying the FU's modulo slot.
    pub fn place(&mut self, node: NodeId, fu: ResourceId, cycle: u32) {
        debug_assert!(self.can_place(node, fu, cycle));
        self.state.occupy(fu, cycle, node);
        self.placements.insert(node, Placement { fu, cycle });
        if self.in_txn {
            self.journal.push(JournalOp::Placed(node));
        }
    }

    /// Removes `node` and un-routes every edge incident to it.
    pub fn unplace(&mut self, node: NodeId) {
        if let Some(p) = self.placements.remove(&node) {
            self.state.release(p.fu, p.cycle, node);
            if self.in_txn {
                self.journal.push(JournalOp::Unplaced(node, p));
            }
        }
        let adj = Arc::clone(&self.adj);
        for &e in adj.incident(node) {
            self.unroute(e);
        }
    }

    /// Removes the route of `edge` from the occupancy table, if present.
    pub fn unroute(&mut self, edge: EdgeId) {
        if let Some(route) = self.routes.remove(&edge) {
            self.total_hops -= route.hops.len();
            release_route(&mut self.state, &route, self.dfg.edge(edge).src);
            if self.in_txn {
                self.journal.push(JournalOp::Unrouted(edge, route));
            }
        }
    }

    /// Required arrival cycle of an edge given its endpoints' placements.
    fn arrival_cycle(&self, edge: &DfgEdge) -> Option<(u32, u32)> {
        let src = self.placements.get(&edge.src)?;
        let dst = self.placements.get(&edge.dst)?;
        let arrival = match edge.kind {
            EdgeKind::Data => dst.cycle,
            EdgeKind::Recurrence { distance } => dst.cycle + distance * self.ii,
        };
        Some((src.cycle, arrival))
    }

    /// Attempts to route `edge` under `policy`. Returns `true` on success.
    /// Edges that do not carry data (ordering-only) are trivially "routed".
    pub fn route_edge(&mut self, edge: EdgeId, policy: &impl CostPolicy) -> bool {
        let e = self.dfg.edge(edge);
        if !self.dfg.edge_carries_data(e) {
            return true;
        }
        if self.routes.contains_key(&edge) {
            return true;
        }
        let (Some(src), Some(dst)) = (self.placements.get(&e.src), self.placements.get(&e.dst))
        else {
            return false;
        };
        let Some((_, arrival)) = self.arrival_cycle(e) else {
            return false;
        };
        let request = RouteRequest {
            src_fu: src.fu,
            src_cycle: src.cycle,
            dst_fu: dst.fu,
            arrival_cycle: arrival,
            value: e.src,
        };
        match find_route_in(&mut self.scratch, self.arch, &self.state, &request, policy) {
            Some((route, _)) => {
                commit_route(&mut self.state, &route, e.src);
                self.total_hops += route.hops.len();
                self.routes.insert(edge, route);
                if self.in_txn {
                    self.journal.push(JournalOp::Routed(edge));
                }
                true
            }
            None => false,
        }
    }

    /// Routes every currently unrouted data-carrying edge whose endpoints are
    /// placed; returns the number of edges that remain unrouted.
    pub fn route_all(&mut self, policy: &impl CostPolicy) -> usize {
        let mut failures = 0;
        for e in 0..self.dfg.edge_count() as u32 {
            if !self.route_edge(EdgeId(e), policy) {
                failures += 1;
            }
        }
        failures
    }

    /// Number of data-carrying edges that currently have no route.
    /// Maintained via the adjacency index's data-edge count; O(1).
    pub fn unrouted_edges(&self) -> usize {
        debug_assert!(self.routes.len() <= self.adj.data_carrying_edges());
        self.adj.data_carrying_edges() - self.routes.len()
    }

    /// Whether timing constraints hold for every edge whose endpoints are
    /// placed (consumer strictly after producer, recurrences shifted by
    /// `distance × II`).
    pub fn timing_ok(&self) -> bool {
        self.dfg.edges().all(|e| match self.arrival_cycle(e) {
            Some((src_cycle, arrival)) => arrival > src_cycle,
            None => true,
        })
    }

    /// Scalar quality: lower is better. Unrouted edges dominate, then total
    /// hop count, then congestion pressure. All three terms are maintained
    /// incrementally, so this is O(1).
    pub fn cost(&self) -> f64 {
        let unrouted = self.unrouted_edges() as f64;
        let congestion = f64::from(self.state.total_overuse());
        unrouted * UNROUTED_PENALTY + self.total_hops as f64 + congestion * 10.0
    }

    /// Whether the state is a complete, legal mapping.
    pub fn is_complete(&self) -> bool {
        self.placements.len() == self.dfg.node_count()
            && self.unrouted_edges() == 0
            && self.state.total_overuse() == 0
            && self.timing_ok()
    }

    /// Earliest schedule cycle of `node` respecting its placed same-iteration
    /// predecessors (0 if none are placed).
    pub fn earliest_cycle(&self, node: NodeId) -> u32 {
        self.adj
            .ins(node)
            .iter()
            .map(|&e| self.dfg.edge(e))
            .filter(|e| !e.kind.is_recurrence())
            .filter_map(|e| self.placements.get(&e.src).map(|p| p.cycle + 1))
            .max()
            .unwrap_or(0)
    }

    /// Candidate functional units for `node`, cheapest tiles first: units are
    /// sorted by current load and distance to the node's placed neighbours.
    pub fn candidate_fus(&self, node: NodeId) -> Vec<ResourceId> {
        let needs_memory = self.dfg.node(node).op.is_memory();
        let mut fus = self.arch.units_supporting(needs_memory);
        let neighbour_positions: Vec<ResourceId> = self
            .adj
            .ins(node)
            .iter()
            .map(|&e| self.dfg.edge(e).src)
            .chain(self.adj.outs(node).iter().map(|&e| self.dfg.edge(e).dst))
            .filter_map(|n| self.placements.get(&n).map(|p| p.fu))
            .collect();
        fus.sort_by_key(|&fu| {
            let load = self.state.resource_load(fu);
            let distance: u32 = neighbour_positions
                .iter()
                .map(|&other| self.arch.resource_distance(fu, other))
                .sum();
            (distance, load, fu.0)
        });
        fus
    }

    /// Whether every data-carrying edge incident to `node` whose other
    /// endpoint is already placed would admit a switch-level path of the
    /// exact required length if `node` were placed at `(fu, cycle)`.
    ///
    /// Purely structural (occupancy is ignored): a `false` answer proves
    /// that *no* route can ever exist while both endpoints keep these
    /// placements — either the timing budget is non-positive or the
    /// exact-time reachability table has no live cell. Placement heuristics
    /// use this to skip provably dead `(fu, cycle)` candidates.
    pub fn incident_edges_reachable(&mut self, node: NodeId, fu: ResourceId, cycle: u32) -> bool {
        let adj = Arc::clone(&self.adj);
        for &e in adj.ins(node) {
            let edge = self.dfg.edge(e);
            if !self.dfg.edge_carries_data(edge) {
                continue;
            }
            let Some(src) = self.placements.get(&edge.src).copied() else {
                continue;
            };
            let arrival = match edge.kind {
                EdgeKind::Data => cycle,
                EdgeKind::Recurrence { distance } => cycle + distance * self.ii,
            };
            if arrival <= src.cycle
                || !self
                    .scratch
                    .structurally_routable(self.arch, src.fu, fu, arrival - src.cycle)
            {
                return false;
            }
        }
        for &e in adj.outs(node) {
            let edge = self.dfg.edge(e);
            if !self.dfg.edge_carries_data(edge) {
                continue;
            }
            let Some(dst) = self.placements.get(&edge.dst).copied() else {
                continue;
            };
            let arrival = match edge.kind {
                EdgeKind::Data => dst.cycle,
                EdgeKind::Recurrence { distance } => dst.cycle + distance * self.ii,
            };
            if arrival <= cycle
                || !self
                    .scratch
                    .structurally_routable(self.arch, fu, dst.fu, arrival - cycle)
            {
                return false;
            }
        }
        true
    }

    /// Converts the state into an immutable [`Mapping`].
    pub fn into_mapping(self, mapper_name: &str) -> Mapping {
        Mapping {
            arch_name: self.arch.name().to_string(),
            mapper_name: mapper_name.to_string(),
            ii: self.ii,
            placements: self.placements.into_entries().collect(),
            routes: self.routes.into_entries().collect(),
        }
    }
}

/// Greedy list scheduling: place nodes in topological order, each at its
/// earliest feasible cycle on the best candidate FU, routing incident input
/// edges immediately. Returns `false` if any node could not be placed.
pub fn greedy_place(state: &mut MapState<'_>, policy: &impl CostPolicy) -> bool {
    let order = match state.dfg.topological_order() {
        Ok(o) => o,
        Err(_) => return false,
    };
    for node in order {
        if !place_node_best_effort(state, node, policy) {
            return false;
        }
    }
    true
}

/// Places one node at its earliest feasible cycle (searching one full II of
/// offsets) on the cheapest FU that admits routing of its incoming data edges.
pub fn place_node_best_effort(
    state: &mut MapState<'_>,
    node: NodeId,
    policy: &impl CostPolicy,
) -> bool {
    let base = state.earliest_cycle(node);
    let candidates = state.candidate_fus(node);
    let adj = Arc::clone(state.adjacency());
    for offset in 0..(state.ii * 2) {
        let cycle = base + offset;
        for &fu in &candidates {
            if !state.can_place(node, fu, cycle) {
                continue;
            }
            state.place(node, fu, cycle);
            // Route the incoming data edges from already-placed producers.
            let mut ok = true;
            for &e in adj.ins(node) {
                if !state.placements.contains_key(&state.dfg.edge(e).src) {
                    continue;
                }
                if !state.route_edge(e, policy) {
                    ok = false;
                    break;
                }
            }
            if ok {
                return true;
            }
            state.unplace(node);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::HardCapacityCost;
    use plaid_arch::spatio_temporal;
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    fn small_dfg() -> Dfg {
        let kernel = KernelBuilder::new("axpy")
            .loop_var("i", 8)
            .array("x", 8)
            .array("y", 8)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::default()).unwrap()
    }

    #[test]
    fn greedy_placement_completes_simple_kernels() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        assert_eq!(state.placements.len(), dfg.node_count());
        assert_eq!(state.unrouted_edges(), 0);
        assert!(state.is_complete());
        assert!(state.cost() < UNROUTED_PENALTY);
    }

    #[test]
    fn unplace_releases_fu_and_routes() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        let some_node = dfg.node_ids().next().unwrap();
        let before = state.state.occupied_slots();
        state.unplace(some_node);
        assert!(state.state.occupied_slots() < before);
        assert!(!state.is_complete());
    }

    #[test]
    fn earliest_cycle_respects_predecessors() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        for edge in dfg.edges().filter(|e| !e.kind.is_recurrence()) {
            let src = state.placements[&edge.src].cycle;
            let dst = state.placements[&edge.dst].cycle;
            assert!(dst > src, "edge {} scheduled backwards", edge.id);
        }
    }

    #[test]
    fn candidate_fus_filter_memory_capability() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let state = MapState::new(&dfg, &arch, 2);
        let load = dfg.memory_nodes().next().unwrap().id;
        let candidates = state.candidate_fus(load);
        assert_eq!(candidates.len(), 4);
        assert!(candidates
            .iter()
            .all(|&fu| arch.resource(fu).fu_caps().unwrap().memory));
    }

    #[test]
    fn into_mapping_round_trips_and_validates() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        let mapping = state.into_mapping("greedy");
        assert!(mapping.validate(&dfg, &arch).is_ok());
        assert_eq!(mapping.ii, 2);
    }

    #[test]
    fn cost_aggregates_match_recomputation() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        // Recompute the cost terms the slow way and compare with the
        // incrementally maintained aggregates.
        let unrouted_slow = dfg
            .edges()
            .filter(|e| dfg.edge_carries_data(e) && !state.routes.contains_key(&e.id))
            .count();
        let hops_slow: usize = state.routes.values().map(|r| r.hops.len()).sum();
        assert_eq!(state.unrouted_edges(), unrouted_slow);
        assert_eq!(
            state.cost(),
            unrouted_slow as f64 * UNROUTED_PENALTY
                + hops_slow as f64
                + f64::from(state.state.total_overuse()) * 10.0
        );
    }

    #[test]
    fn rollback_restores_the_pre_move_state() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        let placements_before = state.placements.clone();
        let routes_before = state.routes.clone();
        let occupancy_before = state.state.clone();
        let cost_before = state.cost();

        let node = dfg.node_ids().nth(2).unwrap();
        state.begin_txn();
        state.unplace(node);
        assert_ne!(state.placements.len(), placements_before.len());
        state.rollback_txn();

        assert_eq!(state.placements, placements_before);
        assert_eq!(state.routes, routes_before);
        assert_eq!(state.state, occupancy_before);
        assert_eq!(state.cost(), cost_before);
        assert!(state.is_complete());
    }

    #[test]
    fn commit_keeps_the_mutations() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        let node = dfg.node_ids().nth(2).unwrap();
        state.begin_txn();
        state.unplace(node);
        let len_mid = state.placements.len();
        state.commit_txn();
        assert_eq!(state.placements.len(), len_mid);
        assert!(!state.placements.contains_key(&node));
    }
}
