//! Shared placement / incremental-routing machinery used by all mappers.
//!
//! A [`MapState`] owns the partial mapping for a fixed II: node placements,
//! edge routes and the modulo occupancy table. Mappers mutate it through
//! place/unplace and route/unroute operations and read a scalar cost that
//! combines unrouted edges, route length and congestion.

use std::collections::HashMap;

use plaid_arch::{Architecture, ResourceId};
use plaid_dfg::{Dfg, DfgEdge, EdgeId, EdgeKind, NodeId};

use crate::mapping::{Mapping, Placement, Route};
use crate::route::{commit_route, find_route, release_route, CostPolicy, RouteRequest};
use crate::state::RoutingState;

/// Cost charged for every data-carrying edge that could not be routed.
pub const UNROUTED_PENALTY: f64 = 1_000.0;

/// Mutable mapping state for one II attempt.
#[derive(Debug, Clone)]
pub struct MapState<'a> {
    /// The DFG being mapped.
    pub dfg: &'a Dfg,
    /// The target architecture.
    pub arch: &'a Architecture,
    /// Initiation interval of this attempt.
    pub ii: u32,
    /// Modulo occupancy (functional units and switches).
    pub state: RoutingState,
    /// Current placements.
    pub placements: HashMap<NodeId, Placement>,
    /// Current routes of data-carrying edges.
    pub routes: HashMap<EdgeId, Route>,
}

impl<'a> MapState<'a> {
    /// Creates an empty state for the given II.
    pub fn new(dfg: &'a Dfg, arch: &'a Architecture, ii: u32) -> Self {
        MapState {
            dfg,
            arch,
            ii,
            state: RoutingState::new(arch, ii),
            placements: HashMap::new(),
            routes: HashMap::new(),
        }
    }

    /// Creates an empty state whose capacity decisions are recorded into an
    /// externally owned certificate (shared across all the states of one II
    /// ladder).
    pub fn with_cert(
        dfg: &'a Dfg,
        arch: &'a Architecture,
        ii: u32,
        cert: std::sync::Arc<crate::state::CapacityCert>,
    ) -> Self {
        MapState {
            dfg,
            arch,
            ii,
            state: RoutingState::with_cert(arch, ii, cert),
            placements: HashMap::new(),
            routes: HashMap::new(),
        }
    }

    /// Whether `fu` can host `node` (capability plus a free modulo slot).
    pub fn can_place(&self, node: NodeId, fu: ResourceId, cycle: u32) -> bool {
        let n = self.dfg.node(node);
        let Some(caps) = self.arch.resource(fu).fu_caps() else {
            return false;
        };
        if n.op.is_memory() && !caps.memory {
            return false;
        }
        if n.op.is_compute() && !caps.compute {
            return false;
        }
        self.state.fits(fu, cycle % self.ii, node)
    }

    /// Places `node` on `(fu, cycle)`, occupying the FU's modulo slot.
    pub fn place(&mut self, node: NodeId, fu: ResourceId, cycle: u32) {
        debug_assert!(self.can_place(node, fu, cycle));
        self.state.occupy(fu, cycle, node);
        self.placements.insert(node, Placement { fu, cycle });
    }

    /// Removes `node` and un-routes every edge incident to it.
    pub fn unplace(&mut self, node: NodeId) {
        if let Some(p) = self.placements.remove(&node) {
            self.state.release(p.fu, p.cycle, node);
        }
        let incident: Vec<EdgeId> = self
            .dfg
            .edges()
            .filter(|e| e.src == node || e.dst == node)
            .map(|e| e.id)
            .collect();
        for e in incident {
            self.unroute(e);
        }
    }

    /// Removes the route of `edge` from the occupancy table, if present.
    pub fn unroute(&mut self, edge: EdgeId) {
        if let Some(route) = self.routes.remove(&edge) {
            release_route(&mut self.state, &route, self.dfg.edge(edge).src);
        }
    }

    /// Required arrival cycle of an edge given its endpoints' placements.
    fn arrival_cycle(&self, edge: &DfgEdge) -> Option<(u32, u32)> {
        let src = self.placements.get(&edge.src)?;
        let dst = self.placements.get(&edge.dst)?;
        let arrival = match edge.kind {
            EdgeKind::Data => dst.cycle,
            EdgeKind::Recurrence { distance } => dst.cycle + distance * self.ii,
        };
        Some((src.cycle, arrival))
    }

    /// Attempts to route `edge` under `policy`. Returns `true` on success.
    /// Edges that do not carry data (ordering-only) are trivially "routed".
    pub fn route_edge(&mut self, edge: EdgeId, policy: &impl CostPolicy) -> bool {
        let e = self.dfg.edge(edge).clone();
        if !self.dfg.edge_carries_data(&e) {
            return true;
        }
        if self.routes.contains_key(&edge) {
            return true;
        }
        let (Some(src), Some(dst)) = (self.placements.get(&e.src), self.placements.get(&e.dst))
        else {
            return false;
        };
        let Some((_, arrival)) = self.arrival_cycle(&e) else {
            return false;
        };
        let request = RouteRequest {
            src_fu: src.fu,
            src_cycle: src.cycle,
            dst_fu: dst.fu,
            arrival_cycle: arrival,
            value: e.src,
        };
        match find_route(self.arch, &self.state, &request, policy) {
            Some((route, _)) => {
                commit_route(&mut self.state, &route, e.src);
                self.routes.insert(edge, route);
                true
            }
            None => false,
        }
    }

    /// Routes every currently unrouted data-carrying edge whose endpoints are
    /// placed; returns the number of edges that remain unrouted.
    pub fn route_all(&mut self, policy: &impl CostPolicy) -> usize {
        let edges: Vec<EdgeId> = self.dfg.edges().map(|e| e.id).collect();
        let mut failures = 0;
        for e in edges {
            if !self.route_edge(e, policy) {
                failures += 1;
            }
        }
        failures
    }

    /// Number of data-carrying edges that currently have no route.
    pub fn unrouted_edges(&self) -> usize {
        self.dfg
            .edges()
            .filter(|e| self.dfg.edge_carries_data(e) && !self.routes.contains_key(&e.id))
            .count()
    }

    /// Whether timing constraints hold for every edge whose endpoints are
    /// placed (consumer strictly after producer, recurrences shifted by
    /// `distance × II`).
    pub fn timing_ok(&self) -> bool {
        self.dfg.edges().all(|e| match self.arrival_cycle(e) {
            Some((src_cycle, arrival)) => arrival > src_cycle,
            None => true,
        })
    }

    /// Scalar quality: lower is better. Unrouted edges dominate, then total
    /// hop count, then congestion pressure.
    pub fn cost(&self) -> f64 {
        let unrouted = self.unrouted_edges() as f64;
        let hops: usize = self.routes.values().map(|r| r.hops.len()).sum();
        let congestion = f64::from(self.state.total_overuse());
        unrouted * UNROUTED_PENALTY + hops as f64 + congestion * 10.0
    }

    /// Whether the state is a complete, legal mapping.
    pub fn is_complete(&self) -> bool {
        self.placements.len() == self.dfg.node_count()
            && self.unrouted_edges() == 0
            && self.state.total_overuse() == 0
            && self.timing_ok()
    }

    /// Earliest schedule cycle of `node` respecting its placed same-iteration
    /// predecessors (0 if none are placed).
    pub fn earliest_cycle(&self, node: NodeId) -> u32 {
        self.dfg
            .in_edges(node)
            .filter(|e| !e.kind.is_recurrence())
            .filter_map(|e| self.placements.get(&e.src).map(|p| p.cycle + 1))
            .max()
            .unwrap_or(0)
    }

    /// Candidate functional units for `node`, cheapest tiles first: units are
    /// sorted by current load and distance to the node's placed neighbours.
    pub fn candidate_fus(&self, node: NodeId) -> Vec<ResourceId> {
        let needs_memory = self.dfg.node(node).op.is_memory();
        let mut fus = self.arch.units_supporting(needs_memory);
        let neighbour_positions: Vec<ResourceId> = self
            .dfg
            .predecessors(node)
            .into_iter()
            .chain(self.dfg.successors(node))
            .filter_map(|n| self.placements.get(&n).map(|p| p.fu))
            .collect();
        fus.sort_by_key(|&fu| {
            let load = self.state.resource_load(fu);
            let distance: u32 = neighbour_positions
                .iter()
                .map(|&other| self.arch.resource_distance(fu, other))
                .sum();
            (distance, load, fu.0)
        });
        fus
    }

    /// Converts the state into an immutable [`Mapping`].
    pub fn into_mapping(self, mapper_name: &str) -> Mapping {
        Mapping {
            arch_name: self.arch.name().to_string(),
            mapper_name: mapper_name.to_string(),
            ii: self.ii,
            placements: self.placements,
            routes: self.routes,
        }
    }
}

/// Greedy list scheduling: place nodes in topological order, each at its
/// earliest feasible cycle on the best candidate FU, routing incident input
/// edges immediately. Returns `false` if any node could not be placed.
pub fn greedy_place(state: &mut MapState<'_>, policy: &impl CostPolicy) -> bool {
    let order = match state.dfg.topological_order() {
        Ok(o) => o,
        Err(_) => return false,
    };
    for node in order {
        if !place_node_best_effort(state, node, policy) {
            return false;
        }
    }
    true
}

/// Places one node at its earliest feasible cycle (searching one full II of
/// offsets) on the cheapest FU that admits routing of its incoming data edges.
pub fn place_node_best_effort(
    state: &mut MapState<'_>,
    node: NodeId,
    policy: &impl CostPolicy,
) -> bool {
    let base = state.earliest_cycle(node);
    let candidates = state.candidate_fus(node);
    for offset in 0..(state.ii * 2) {
        let cycle = base + offset;
        for &fu in &candidates {
            if !state.can_place(node, fu, cycle) {
                continue;
            }
            state.place(node, fu, cycle);
            // Route the incoming data edges from already-placed producers.
            let incoming: Vec<EdgeId> = state
                .dfg
                .in_edges(node)
                .filter(|e| state.placements.contains_key(&e.src))
                .map(|e| e.id)
                .collect();
            let mut ok = true;
            for e in &incoming {
                if !state.route_edge(*e, policy) {
                    ok = false;
                    break;
                }
            }
            if ok {
                return true;
            }
            state.unplace(node);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::HardCapacityCost;
    use plaid_arch::spatio_temporal;
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    fn small_dfg() -> Dfg {
        let kernel = KernelBuilder::new("axpy")
            .loop_var("i", 8)
            .array("x", 8)
            .array("y", 8)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::default()).unwrap()
    }

    #[test]
    fn greedy_placement_completes_simple_kernels() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        assert_eq!(state.placements.len(), dfg.node_count());
        assert_eq!(state.unrouted_edges(), 0);
        assert!(state.is_complete());
        assert!(state.cost() < UNROUTED_PENALTY);
    }

    #[test]
    fn unplace_releases_fu_and_routes() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        let some_node = dfg.node_ids().next().unwrap();
        let before = state.state.occupied_slots();
        state.unplace(some_node);
        assert!(state.state.occupied_slots() < before);
        assert!(!state.is_complete());
    }

    #[test]
    fn earliest_cycle_respects_predecessors() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        for edge in dfg.edges().filter(|e| !e.kind.is_recurrence()) {
            let src = state.placements[&edge.src].cycle;
            let dst = state.placements[&edge.dst].cycle;
            assert!(dst > src, "edge {} scheduled backwards", edge.id);
        }
    }

    #[test]
    fn candidate_fus_filter_memory_capability() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let state = MapState::new(&dfg, &arch, 2);
        let load = dfg.memory_nodes().next().unwrap().id;
        let candidates = state.candidate_fus(load);
        assert_eq!(candidates.len(), 4);
        assert!(candidates
            .iter()
            .all(|&fu| arch.resource(fu).fu_caps().unwrap().memory));
    }

    #[test]
    fn into_mapping_round_trips_and_validates() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mut state = MapState::new(&dfg, &arch, 2);
        assert!(greedy_place(&mut state, &HardCapacityCost));
        let mapping = state.into_mapping("greedy");
        assert!(mapping.validate(&dfg, &arch).is_ok());
        assert_eq!(mapping.ii, 2);
    }
}
