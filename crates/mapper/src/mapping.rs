//! The [`Mapping`] result type and its validator.

use std::collections::HashMap;

use plaid_arch::{Architecture, ResourceId};
use plaid_dfg::{Dfg, EdgeId, EdgeKind, NodeId};

use crate::error::MapError;
use crate::state::RoutingState;

/// Placement of one DFG node: the functional unit it executes on and its
/// absolute schedule cycle (the modulo slot is `cycle % II`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Functional unit executing the node.
    pub fu: ResourceId,
    /// Absolute schedule cycle.
    pub cycle: u32,
}

/// One intermediate hop of a route: a switch resource visited at an absolute
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHop {
    /// Switch resource.
    pub resource: ResourceId,
    /// Absolute cycle at which the value occupies the switch.
    pub cycle: u32,
}

/// The route of one data-carrying edge: the ordered intermediate switches
/// between the producer FU and the consumer FU (endpoints excluded).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Route {
    /// Intermediate hops in traversal order.
    pub hops: Vec<RouteHop>,
}

impl Route {
    /// Number of switch hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the route has no intermediate hops (impossible for valid routes
    /// on the modelled fabrics, but kept for completeness).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// A complete modulo-scheduled mapping of a DFG onto an architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Architecture name the mapping targets.
    pub arch_name: String,
    /// Name of the mapper that produced this mapping.
    pub mapper_name: String,
    /// Initiation interval.
    pub ii: u32,
    /// Node placements.
    pub placements: HashMap<NodeId, Placement>,
    /// Routes of data-carrying edges.
    pub routes: HashMap<EdgeId, Route>,
}

impl Mapping {
    /// Schedule length: one past the latest scheduled cycle (the pipeline
    /// depth of one iteration).
    pub fn schedule_length(&self) -> u32 {
        self.placements
            .values()
            .map(|p| p.cycle + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total execution cycles for `iterations` loop iterations under modulo
    /// scheduling: a new iteration starts every II cycles and the last one
    /// drains the pipeline.
    pub fn total_cycles(&self, iterations: u64) -> u64 {
        if iterations == 0 {
            return 0;
        }
        (iterations - 1) * u64::from(self.ii) + u64::from(self.schedule_length())
    }

    /// Fraction of functional-unit issue slots used, in `[0, 1]`.
    pub fn fu_utilization(&self, arch: &Architecture) -> f64 {
        let fu_count = arch.functional_units().count() as f64;
        if fu_count == 0.0 || self.ii == 0 {
            return 0.0;
        }
        self.placements.len() as f64 / (fu_count * f64::from(self.ii))
    }

    /// Total number of switch hops across all routes (a proxy for routing
    /// energy / wire activity).
    pub fn total_route_hops(&self) -> usize {
        self.routes.values().map(Route::len).sum()
    }

    /// Checks that the mapping is valid for `dfg` on `arch`.
    ///
    /// Verified properties:
    /// 1. every DFG node is placed on a functional unit that supports it;
    /// 2. no two nodes share a functional unit in the same modulo slot;
    /// 3. every dependency is satisfied in time (consumers execute at least
    ///    one cycle after producers, recurrence edges shifted by
    ///    `distance × II`);
    /// 4. every data-carrying edge has a route whose hops follow existing
    ///    links with the correct latencies and arrive exactly at the
    ///    consumer's cycle;
    /// 5. switch capacities are respected in every modulo slot (identical
    ///    values share).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidMapping`] describing the first violation.
    pub fn validate(&self, dfg: &Dfg, arch: &Architecture) -> Result<(), MapError> {
        let fail = |msg: String| Err(MapError::InvalidMapping(msg));
        // 1. Placement completeness and capability.
        for node in dfg.nodes() {
            let Some(p) = self.placements.get(&node.id) else {
                return fail(format!("node {} is not placed", node.id));
            };
            let res = arch.resource(p.fu);
            let Some(caps) = res.fu_caps() else {
                return fail(format!("node {} placed on non-FU {}", node.id, res.name));
            };
            if node.op.is_memory() && !caps.memory {
                return fail(format!(
                    "memory node {} placed on non-memory FU {}",
                    node.id, res.name
                ));
            }
            if node.op.is_compute() && !caps.compute {
                return fail(format!(
                    "compute node {} placed on non-compute FU {}",
                    node.id, res.name
                ));
            }
        }
        // 2. FU exclusivity per modulo slot.
        let mut fu_slots: HashMap<(u32, u32), NodeId> = HashMap::new();
        for (&node, p) in &self.placements {
            let key = (p.fu.0, p.cycle % self.ii);
            if let Some(&other) = fu_slots.get(&key) {
                if other != node {
                    return fail(format!(
                        "nodes {other} and {node} share FU {} in modulo slot {}",
                        arch.resource(p.fu).name,
                        p.cycle % self.ii
                    ));
                }
            }
            fu_slots.insert(key, node);
        }
        // 3-4. Dependency timing and route structure.
        let mut state = RoutingState::new(arch, self.ii);
        for edge in dfg.edges() {
            let src = self.placements[&edge.src];
            let dst = self.placements[&edge.dst];
            let arrival_target = match edge.kind {
                EdgeKind::Data => dst.cycle,
                EdgeKind::Recurrence { distance } => dst.cycle + distance * self.ii,
            };
            if arrival_target < src.cycle + 1 {
                return fail(format!(
                    "edge {} violates timing: producer at {}, consumer at {}",
                    edge.id, src.cycle, arrival_target
                ));
            }
            if !dfg.edge_carries_data(edge) {
                continue;
            }
            let Some(route) = self.routes.get(&edge.id) else {
                return fail(format!("data edge {} has no route", edge.id));
            };
            // Walk the route checking link existence and latency consistency.
            let mut prev_res = src.fu;
            let mut prev_cycle = src.cycle;
            for hop in &route.hops {
                let Some(link) = arch.out_links(prev_res).find(|l| l.to == hop.resource) else {
                    return fail(format!(
                        "route of edge {} uses missing link {} -> {}",
                        edge.id,
                        arch.resource(prev_res).name,
                        arch.resource(hop.resource).name
                    ));
                };
                if prev_cycle + link.latency != hop.cycle {
                    return fail(format!(
                        "route of edge {} has inconsistent timing at {}",
                        edge.id,
                        arch.resource(hop.resource).name
                    ));
                }
                if arch.resource(hop.resource).kind.is_func_unit() {
                    return fail(format!(
                        "route of edge {} passes through functional unit {}",
                        edge.id,
                        arch.resource(hop.resource).name
                    ));
                }
                state.occupy(hop.resource, hop.cycle, edge.src);
                prev_res = hop.resource;
                prev_cycle = hop.cycle;
            }
            let Some(last_link) = arch.out_links(prev_res).find(|l| l.to == dst.fu) else {
                return fail(format!(
                    "route of edge {} does not terminate at the consumer FU",
                    edge.id
                ));
            };
            if prev_cycle + last_link.latency != arrival_target {
                return fail(format!(
                    "route of edge {} arrives at {} but consumer executes at {}",
                    edge.id,
                    prev_cycle + last_link.latency,
                    arrival_target
                ));
            }
        }
        // 5. Switch capacities.
        for r in arch.resources() {
            for slot in 0..self.ii {
                if state.usage(r.id, slot) > r.kind.capacity() {
                    return fail(format!(
                        "switch {} over capacity in modulo slot {slot}",
                        r.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_length_and_cycles() {
        let mut placements = HashMap::new();
        placements.insert(
            NodeId(0),
            Placement {
                fu: ResourceId(0),
                cycle: 0,
            },
        );
        placements.insert(
            NodeId(1),
            Placement {
                fu: ResourceId(2),
                cycle: 3,
            },
        );
        let m = Mapping {
            arch_name: "test".into(),
            mapper_name: "manual".into(),
            ii: 2,
            placements,
            routes: HashMap::new(),
        };
        assert_eq!(m.schedule_length(), 4);
        assert_eq!(m.total_cycles(1), 4);
        assert_eq!(m.total_cycles(10), 9 * 2 + 4);
        assert_eq!(m.total_cycles(0), 0);
    }

    #[test]
    fn route_len_and_hops() {
        let route = Route {
            hops: vec![
                RouteHop {
                    resource: ResourceId(1),
                    cycle: 1,
                },
                RouteHop {
                    resource: ResourceId(3),
                    cycle: 2,
                },
            ],
        };
        assert_eq!(route.len(), 2);
        assert!(!route.is_empty());
        assert!(Route::default().is_empty());
    }
}
