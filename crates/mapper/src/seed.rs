//! Warm-start placement seeds: serializable mapping snapshots that let a
//! mapper skip work already done for a structurally related design point.
//!
//! A [`PlacementSeed`] captures the full solution of one successful mapping —
//! placements, routes and the achieved II — together with a *fabric
//! signature*: a content hash of everything in the architecture that the
//! mapping search can observe (resources, capabilities, switch capacities,
//! links, latencies, clusters). Crucially the signature excludes
//! configuration-memory depth, which bounds the II ladder but never changes
//! the routing structure, so design points that differ only in depth share a
//! signature.
//!
//! Two reuse tiers follow from that:
//!
//! * **Exact replay** — when the seed's signature, mapper and options match
//!   the target and every per-II attempt is a pure function of
//!   `(dfg, fabric, ii)` (the mappers reseed their RNG per II), the target's
//!   ladder provably reproduces the seed's result. The seed is re-validated
//!   on the target fabric and returned directly; sweep results are
//!   bit-identical to a cold run.
//! * **Heuristic warm start** — across signatures (neighbouring
//!   communication levels or array dimensions) the seed's placement is
//!   translated by functional-unit ordinal and used as the starting point of
//!   annealing / negotiation, falling back to greedy placement whenever a
//!   translated assignment is infeasible on the new fabric.
//!
//! An [`InfeasiblePrefix`] transfers the complementary fact: a ladder that
//! failed through II `k` on the same fabric structure proves every `ii <= k`
//! infeasible, so a deeper configuration memory can start its ladder at
//! `k + 1`.

use serde::{Deserialize, Serialize};

use plaid_arch::{Architecture, ResourceId, ResourceKind};
use plaid_dfg::{Dfg, EdgeId, NodeId};

use crate::mapping::{Mapping, Placement, Route, RouteHop};
use crate::placement::MapState;

/// FNV-1a over a stream of words (stable across platforms and runs).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Content hash of everything the mapping search can observe about a fabric:
/// execution class, resources (kind, capabilities, switch capacity, tile),
/// links (endpoints, latency) and clusters. Parameters that only feed the
/// cost model — configuration depth, bit budgets — are deliberately
/// excluded, so design points differing only in configuration-memory depth
/// share a signature and can exchange mapping results soundly.
pub fn fabric_signature(arch: &Architecture) -> u64 {
    signature(arch, true)
}

/// Like [`fabric_signature`], but with switch capacities erased: two fabrics
/// share a no-capacity signature when they are identical up to communication
/// provisioning (switch capacities). Together with a
/// [`crate::state::CapacityCert`], this is what makes mapping results
/// transferable across communication levels.
pub fn fabric_signature_nocap(arch: &Architecture) -> u64 {
    signature(arch, false)
}

/// Content hash of the DFG a seed or infeasibility proof was derived on:
/// node operations (with immediates) and edge topology. A mapping result or
/// ladder proof is only meaningful for the exact graph it was computed on,
/// so the mappers' shared ladder planner (`plan_ladder`) ignores hints whose
/// DFG fingerprint does not match the
/// graph being mapped — a caller passing a hint captured from a different
/// workload gets a scratch run, never a spurious fast-fail.
pub fn dfg_fingerprint(dfg: &Dfg) -> u64 {
    let mut h = Fnv::new();
    h.word(dfg.node_count() as u64);
    h.word(dfg.edge_count() as u64);
    for node in dfg.nodes() {
        h.word(u64::from(node.id.0));
        h.bytes(format!("{:?}", node.op).as_bytes());
        match node.immediate {
            Some(imm) => {
                h.word(1);
                h.word(imm as u64);
            }
            None => h.word(0),
        }
    }
    for edge in dfg.edges() {
        h.word(u64::from(edge.id.0));
        h.word(u64::from(edge.src.0));
        h.word(u64::from(edge.dst.0));
        h.bytes(format!("{:?}/{:?}", edge.operand, edge.kind).as_bytes());
    }
    h.0
}

fn signature(arch: &Architecture, with_capacities: bool) -> u64 {
    let mut h = Fnv::new();
    h.bytes(arch.class().label().as_bytes());
    for r in arch.resources() {
        h.word(u64::from(r.id.0));
        h.word(r.tile as u64);
        match r.kind {
            ResourceKind::FuncUnit(caps) => {
                h.word(1);
                h.word(u64::from(caps.compute));
                h.word(u64::from(caps.memory));
            }
            ResourceKind::Switch { capacity } => {
                h.word(2);
                h.word(if with_capacities {
                    u64::from(capacity)
                } else {
                    0
                });
            }
        }
    }
    for l in arch.links() {
        h.word(u64::from(l.from.0));
        h.word(u64::from(l.to.0));
        h.word(u64::from(l.latency));
    }
    for c in arch.clusters() {
        h.word(c.tile as u64);
        for &fu in &c.alus {
            h.word(u64::from(fu.0));
        }
        h.word(c.local_router.map(|r| u64::from(r.0) + 1).unwrap_or(0));
    }
    h.0
}

/// One seeded node placement (IDs are raw `u32`s so the seed serializes with
/// no dependency on the DFG/arch types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedPlacement {
    /// DFG node id.
    pub node: u32,
    /// Functional-unit resource id on the source fabric.
    pub fu: u32,
    /// Ordinal of `fu` among the source fabric's functional units, used to
    /// translate the placement onto fabrics with a different layout.
    pub fu_ordinal: u32,
    /// Absolute schedule cycle.
    pub cycle: u32,
}

/// One hop of a seeded route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedHop {
    /// Switch resource id on the source fabric.
    pub resource: u32,
    /// Absolute cycle the value occupies the switch.
    pub cycle: u32,
}

/// The seeded route of one data-carrying edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedRoute {
    /// DFG edge id.
    pub edge: u32,
    /// Intermediate hops in traversal order.
    pub hops: Vec<SeedHop>,
}

/// A serializable snapshot of one successful mapping, reusable as a
/// warm-start seed for related design points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementSeed {
    /// Name of the mapper that produced the mapping (`Mapper::name`).
    pub mapper: String,
    /// Fingerprint of the mapper options the mapping was produced under.
    pub options: u64,
    /// Fingerprint of the DFG the mapping places (see [`dfg_fingerprint`]).
    pub dfg: u64,
    /// Fabric signature of the source architecture.
    pub fabric: u64,
    /// Achieved initiation interval.
    pub ii: u32,
    /// Functional units on the source fabric (for ordinal translation).
    pub fu_count: u32,
    /// Whether the mapping is the canonical (scratch-equivalent) result for
    /// its design point. Only canonical seeds are eligible for exact replay;
    /// heuristically warm-started results are marked non-canonical so they
    /// never masquerade as what a cold run would have produced.
    pub canonical: bool,
    /// Fabric signature with switch capacities erased (see
    /// [`fabric_signature_nocap`]).
    pub fabric_nocap: u64,
    /// Per-resource minimum switch capacities under which the ladder run
    /// that produced this seed reproduces bit-for-bit (empty when the run is
    /// not capacity-transferable — e.g. PathFinder, whose negotiation costs
    /// read capacities directly, or a floored ladder whose skipped prefix
    /// was proved on this fabric only).
    pub cap_need: Vec<u32>,
    /// Per-resource maximum switch capacities for the same guarantee
    /// (`u32::MAX` when no query was ever refused at that resource).
    pub cap_ceil: Vec<u32>,
    /// Node placements, sorted by node id.
    pub placements: Vec<SeedPlacement>,
    /// Edge routes, sorted by edge id.
    pub routes: Vec<SeedRoute>,
}

impl PlacementSeed {
    /// Captures a seed from a finished mapping on the architecture it was
    /// produced for, without a capacity certificate (the seed replays only
    /// on fabrics with an identical full signature).
    pub fn capture(
        dfg: &Dfg,
        mapping: &Mapping,
        arch: &Architecture,
        options: u64,
        canonical: bool,
    ) -> Self {
        Self::capture_with_cert(dfg, mapping, arch, options, canonical, None)
    }

    /// Captures a seed carrying the capacity certificate of the ladder run
    /// that produced the mapping, making it transferable to fabrics that
    /// differ only in switch capacities within the certified bounds.
    pub fn capture_with_cert(
        dfg: &Dfg,
        mapping: &Mapping,
        arch: &Architecture,
        options: u64,
        canonical: bool,
        cert: Option<&crate::state::CapacityCert>,
    ) -> Self {
        let fus: Vec<ResourceId> = arch.functional_units().map(|r| r.id).collect();
        let ordinal_of = |fu: ResourceId| fus.iter().position(|&f| f == fu).unwrap_or(0) as u32;
        let mut placements: Vec<SeedPlacement> = mapping
            .placements
            .iter()
            .map(|(&node, p)| SeedPlacement {
                node: node.0,
                fu: p.fu.0,
                fu_ordinal: ordinal_of(p.fu),
                cycle: p.cycle,
            })
            .collect();
        placements.sort_by_key(|p| p.node);
        let mut routes: Vec<SeedRoute> = mapping
            .routes
            .iter()
            .map(|(&edge, route)| SeedRoute {
                edge: edge.0,
                hops: route
                    .hops
                    .iter()
                    .map(|h| SeedHop {
                        resource: h.resource.0,
                        cycle: h.cycle,
                    })
                    .collect(),
            })
            .collect();
        routes.sort_by_key(|r| r.edge);
        PlacementSeed {
            mapper: mapping.mapper_name.clone(),
            options,
            dfg: dfg_fingerprint(dfg),
            fabric: fabric_signature(arch),
            ii: mapping.ii,
            fu_count: fus.len() as u32,
            canonical,
            fabric_nocap: fabric_signature_nocap(arch),
            cap_need: cert.map(|c| c.need()).unwrap_or_default(),
            cap_ceil: cert.map(|c| c.ceil()).unwrap_or_default(),
            placements,
            routes,
        }
    }

    /// Captures the seed of a mapping obtained by *replaying* `source` on
    /// `arch`: the capacity certificate is inherited verbatim — the original
    /// ladder's decision proof remains valid for any further fabric inside
    /// the same bounds — while the full-fabric signature is re-anchored to
    /// the replay target.
    pub fn capture_inherited(
        dfg: &Dfg,
        mapping: &Mapping,
        arch: &Architecture,
        options: u64,
        source: &PlacementSeed,
    ) -> Self {
        let mut seed = Self::capture(dfg, mapping, arch, options, true);
        seed.cap_need = source.cap_need.clone();
        seed.cap_ceil = source.cap_ceil.clone();
        seed
    }

    /// Whether this seed is eligible for exact replay on a fabric with
    /// signature `fabric` for a mapper named `mapper` running under options
    /// fingerprint `options`.
    pub fn replay_eligible(&self, fabric: u64, mapper: &str, options: u64) -> bool {
        self.canonical && self.fabric == fabric && self.mapper == mapper && self.options == options
    }

    /// Whether the ladder run behind this seed provably reproduces on a
    /// fabric with no-capacity signature `nocap` and the given per-resource
    /// capacities: either the full signature matches outright, or every
    /// capacity lies inside the certified `[need, ceil]` window.
    pub fn transfers_to(&self, fabric: u64, nocap: u64, capacities: &[u32]) -> bool {
        if self.fabric == fabric {
            return true;
        }
        self.fabric_nocap == nocap
            && !self.cap_need.is_empty()
            && self.cap_need.len() == capacities.len()
            && self.cap_ceil.len() == capacities.len()
            && capacities
                .iter()
                .zip(self.cap_need.iter().zip(&self.cap_ceil))
                .all(|(&cap, (&need, &ceil))| need <= cap && cap <= ceil)
    }

    /// Reconstructs the seed as a [`Mapping`] on `arch` and validates it
    /// against `dfg`. Returns `None` when the seed does not describe a legal
    /// mapping of this DFG on this fabric (corruption, workload mismatch).
    pub fn replay(&self, dfg: &Dfg, arch: &Architecture) -> Option<Mapping> {
        if self.ii == 0 {
            return None;
        }
        let mapping = Mapping {
            arch_name: arch.name().to_string(),
            mapper_name: self.mapper.clone(),
            ii: self.ii,
            placements: self
                .placements
                .iter()
                .map(|p| {
                    (
                        NodeId(p.node),
                        Placement {
                            fu: ResourceId(p.fu),
                            cycle: p.cycle,
                        },
                    )
                })
                .collect(),
            routes: self
                .routes
                .iter()
                .map(|r| {
                    (
                        EdgeId(r.edge),
                        Route {
                            hops: r
                                .hops
                                .iter()
                                .map(|h| RouteHop {
                                    resource: ResourceId(h.resource),
                                    cycle: h.cycle,
                                })
                                .collect(),
                        },
                    )
                })
                .collect(),
        };
        // Ids must exist before `validate` may index into the DFG/arch.
        let node_ok = self
            .placements
            .iter()
            .all(|p| p.node < dfg.node_count() as u32);
        let res_ok = self
            .placements
            .iter()
            .all(|p| (p.fu as usize) < arch.resources().len())
            && self
                .routes
                .iter()
                .flat_map(|r| r.hops.iter())
                .all(|h| (h.resource as usize) < arch.resources().len());
        let edge_ok = self
            .routes
            .iter()
            .all(|r| (r.edge as usize) < dfg.edge_count());
        if !(node_ok && res_ok && edge_ok) {
            return None;
        }
        mapping.validate(dfg, arch).ok().map(|()| mapping)
    }
}

/// A proof that every II up to `through_ii` is infeasible for a given fabric
/// structure, transferred from a failed ladder on a design point with a
/// shallower configuration memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfeasiblePrefix {
    /// Fingerprint of the DFG the failure was proved on (see
    /// [`dfg_fingerprint`]).
    pub dfg: u64,
    /// Fabric signature the failure was proved on.
    pub fabric: u64,
    /// Highest II proved infeasible.
    pub through_ii: u32,
}

/// The warm-start hint threaded through `compile_workload_on` into the
/// mappers: an optional placement seed plus an optional infeasibility proof.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapSeed {
    /// Placement seed from the nearest cached design point.
    pub seed: Option<PlacementSeed>,
    /// Ladder prefix proved infeasible on this fabric structure.
    pub infeasible: Option<InfeasiblePrefix>,
    /// Whether a seed that is not provably result-preserving may still be
    /// used as a heuristic warm start. Exact-mode sweeps leave this off so
    /// their results stay bit-identical to cold runs.
    pub allow_warm: bool,
}

impl MapSeed {
    /// A hint carrying only a placement seed (heuristic warm start allowed).
    pub fn from_seed(seed: PlacementSeed) -> Self {
        MapSeed {
            seed: Some(seed),
            infeasible: None,
            allow_warm: true,
        }
    }
}

/// How a seeded mapping run arrived at its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedOutcome {
    /// No seed information was used; the full ladder ran from scratch.
    Scratch,
    /// The ladder start was raised past a proven-infeasible prefix.
    Floored,
    /// The seed re-validated on the target fabric and was returned directly.
    Replayed,
    /// The result was produced from a heuristically translated seed
    /// placement (non-canonical).
    WarmStarted,
}

/// A mapping plus the provenance of how seeding contributed to it.
#[derive(Debug, Clone)]
pub struct SeededMapping {
    /// The produced mapping.
    pub mapping: Mapping,
    /// How the seed was used.
    pub outcome: SeedOutcome,
    /// Snapshot of `mapping` for seeding neighbouring design points.
    pub seed: PlacementSeed,
}

/// The ladder decision derived from a hint before any II attempt runs.
#[derive(Debug)]
pub(crate) enum LadderPlan<'a> {
    /// The hint proves no II within `max_ii` can succeed.
    Infeasible,
    /// The seed replays exactly; no search needed.
    Replay(&'a PlacementSeed),
    /// Run the ladder from `start` (>= mii), optionally warm-starting each
    /// attempt from a translated seed placement.
    Ladder {
        start: u32,
        warm: Option<&'a PlacementSeed>,
        floored: bool,
    },
}

/// Everything about the target fabric a ladder plan needs to decide seed
/// eligibility.
#[derive(Debug)]
pub(crate) struct SeedContext {
    pub dfg: u64,
    pub fabric: u64,
    pub nocap: u64,
    pub capacities: Vec<u32>,
}

impl SeedContext {
    pub fn of(dfg: &Dfg, arch: &Architecture) -> Self {
        SeedContext {
            dfg: dfg_fingerprint(dfg),
            fabric: fabric_signature(arch),
            nocap: fabric_signature_nocap(arch),
            capacities: arch.resources().iter().map(|r| r.kind.capacity()).collect(),
        }
    }
}

/// Derives the ladder plan for a mapper from an optional hint.
///
/// Soundness: every tier first requires the hint's DFG fingerprint to match
/// the graph being mapped — results and proofs do not translate across
/// workloads, and a mismatched hint is ignored rather than trusted. `Replay`
/// is only produced for a canonical seed of the same
/// mapper and options whose run provably reproduces on the target fabric —
/// identical full signature, or identical no-capacity signature with every
/// switch capacity inside the seed's certified window. The raised ladder
/// `start` requires an infeasibility proof anchored to the target's full
/// signature. Exact-mode sweeps therefore reproduce cold results
/// bit-for-bit; anything weaker is demoted to a heuristic warm start (and
/// only when the hint allows it).
pub(crate) fn plan_ladder<'a>(
    hint: Option<&'a MapSeed>,
    ctx: &SeedContext,
    mapper: &str,
    options: u64,
    mii: u32,
    max_ii: u32,
) -> LadderPlan<'a> {
    let Some(hint) = hint else {
        return LadderPlan::Ladder {
            start: mii,
            warm: None,
            floored: false,
        };
    };
    let mut start = mii;
    let mut floored = false;
    if let Some(prefix) = &hint.infeasible {
        if prefix.dfg == ctx.dfg && prefix.fabric == ctx.fabric && prefix.through_ii >= start {
            if prefix.through_ii >= max_ii {
                return LadderPlan::Infeasible;
            }
            start = prefix.through_ii + 1;
            floored = true;
        }
    }
    let mut warm = None;
    if let Some(seed) = &hint.seed {
        let sound = seed.canonical
            && seed.dfg == ctx.dfg
            && seed.mapper == mapper
            && seed.options == options
            && seed.transfers_to(ctx.fabric, ctx.nocap, &ctx.capacities);
        if sound {
            if seed.ii <= max_ii {
                return LadderPlan::Replay(seed);
            }
            // A canonical transferable result above this point's II bound
            // proves the bounded ladder fails (its attempts are a prefix of
            // the ladder that produced the seed).
            return LadderPlan::Infeasible;
        }
        if hint.allow_warm {
            warm = Some(seed);
        }
    }
    LadderPlan::Ladder {
        start,
        warm,
        floored,
    }
}

/// Fingerprint of a mapper's options, via its `Debug` rendering. Stable
/// within a build, which is all replay needs: seeds produced under different
/// options must not replay for each other.
pub(crate) fn options_fingerprint(options: &impl std::fmt::Debug) -> u64 {
    let mut h = Fnv::new();
    h.bytes(format!("{options:?}").as_bytes());
    h.0
}

/// Applies a seed's placements to a fresh [`MapState`], translating
/// functional units by ordinal when the target fabric differs from the
/// source. Assignments that are infeasible on the target (capability
/// mismatch, occupied modulo slot) are skipped — the caller completes the
/// placement greedily. Returns the number of nodes placed.
pub(crate) fn apply_seed_placement(state: &mut MapState<'_>, seed: &PlacementSeed) -> usize {
    let target_fus: Vec<ResourceId> = state.arch.functional_units().map(|r| r.id).collect();
    if target_fus.is_empty() {
        return 0;
    }
    let same_fabric = seed.fabric == fabric_signature(state.arch);
    let node_count = state.dfg.node_count() as u32;
    let mut placed = 0;
    for p in &seed.placements {
        if p.node >= node_count {
            continue;
        }
        let node = NodeId(p.node);
        let fu = if same_fabric {
            ResourceId(p.fu)
        } else {
            target_fus[p.fu_ordinal as usize % target_fus.len()]
        };
        let cycle = p.cycle % (state.ii * 2).max(1);
        if state.can_place(node, fu, cycle) {
            state.place(node, fu, cycle);
            placed += 1;
        }
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    use crate::pathfinder::PathFinderMapper;
    use crate::Mapper;

    fn small_dfg() -> Dfg {
        let kernel = KernelBuilder::new("axpy")
            .loop_var("i", 16)
            .array("x", 16)
            .array("y", 16)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::default()).unwrap()
    }

    #[test]
    fn signature_is_stable_and_structure_sensitive() {
        let a = spatio_temporal::build(4, 4);
        let b = spatio_temporal::build(4, 4);
        assert_eq!(fabric_signature(&a), fabric_signature(&b));
        let smaller = spatio_temporal::build(3, 3);
        assert_ne!(fabric_signature(&a), fabric_signature(&smaller));
        let other_class = plaid::build(2, 2);
        assert_ne!(fabric_signature(&a), fabric_signature(&other_class));
    }

    #[test]
    fn signature_ignores_configuration_depth() {
        use plaid_arch::rebuild_provisioned;
        let base = spatio_temporal::build(4, 4);
        let mut params = base.params().clone();
        params.config_entries = 4;
        let shallow = rebuild_provisioned(&base, "shallow", params, |c| c);
        assert_eq!(fabric_signature(&base), fabric_signature(&shallow));
    }

    #[test]
    fn signature_tracks_switch_capacity() {
        use plaid_arch::rebuild_provisioned;
        let base = spatio_temporal::build(4, 4);
        let richer = rebuild_provisioned(&base, "rich", base.params().clone(), |c| c + 1);
        assert_ne!(fabric_signature(&base), fabric_signature(&richer));
    }

    #[test]
    fn capture_replay_round_trip() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mapping = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        let seed = PlacementSeed::capture(&dfg, &mapping, &arch, 7, true);
        assert_eq!(seed.ii, mapping.ii);
        assert!(seed.replay_eligible(fabric_signature(&arch), "pathfinder", 7));
        let replayed = seed.replay(&dfg, &arch).expect("seed replays");
        assert_eq!(replayed.ii, mapping.ii);
        assert_eq!(replayed.placements, mapping.placements);
        assert_eq!(replayed.routes, mapping.routes);
    }

    #[test]
    fn replay_rejects_wrong_fabric_and_options() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mapping = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        let seed = PlacementSeed::capture(&dfg, &mapping, &arch, 7, true);
        let other = spatio_temporal::build(3, 3);
        assert!(!seed.replay_eligible(fabric_signature(&other), "pathfinder", 7));
        assert!(!seed.replay_eligible(fabric_signature(&arch), "sa", 7));
        assert!(!seed.replay_eligible(fabric_signature(&arch), "pathfinder", 8));
        // Validation also refuses to materialize the seed on the wrong
        // fabric (resource ids out of range or links missing).
        assert!(seed.replay(&dfg, &other).is_none());
    }

    #[test]
    fn non_canonical_seeds_never_replay() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mapping = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        let seed = PlacementSeed::capture(&dfg, &mapping, &arch, 7, false);
        assert!(!seed.replay_eligible(fabric_signature(&arch), "pathfinder", 7));
    }

    #[test]
    fn ladder_plan_floors_and_fast_fails() {
        let ctx = |fabric: u64| SeedContext {
            dfg: 7,
            fabric,
            nocap: 0,
            capacities: Vec::new(),
        };
        let fabric = 42u64;
        let hint = MapSeed {
            seed: None,
            infeasible: Some(InfeasiblePrefix {
                dfg: 7,
                fabric,
                through_ii: 8,
            }),
            allow_warm: false,
        };
        match plan_ladder(Some(&hint), &ctx(fabric), "sa", 0, 2, 16) {
            LadderPlan::Ladder { start, floored, .. } => {
                assert_eq!(start, 9);
                assert!(floored);
            }
            other => panic!("expected floored ladder, got {other:?}"),
        }
        assert!(matches!(
            plan_ladder(Some(&hint), &ctx(fabric), "sa", 0, 2, 8),
            LadderPlan::Infeasible
        ));
        // A prefix proved on a different fabric is ignored.
        match plan_ladder(Some(&hint), &ctx(fabric + 1), "sa", 0, 2, 8) {
            LadderPlan::Ladder { start, floored, .. } => {
                assert_eq!(start, 2);
                assert!(!floored);
            }
            other => panic!("expected untouched ladder, got {other:?}"),
        }
        // A prefix proved on a different DFG is ignored too: proofs do not
        // translate across workloads, even on the same fabric.
        let other_dfg = SeedContext {
            dfg: 8,
            fabric,
            nocap: 0,
            capacities: Vec::new(),
        };
        match plan_ladder(Some(&hint), &other_dfg, "sa", 0, 2, 8) {
            LadderPlan::Ladder { start, floored, .. } => {
                assert_eq!(start, 2);
                assert!(!floored);
            }
            other => panic!("expected untouched ladder, got {other:?}"),
        }
    }

    #[test]
    fn capacity_certificates_gate_cross_capacity_transfer() {
        use crate::state::CapacityCert;
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mapping = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        let n = arch.resources().len();
        let cert = CapacityCert::new(n);
        let seed = PlacementSeed::capture_with_cert(&dfg, &mapping, &arch, 1, true, Some(&cert));
        let nocap = fabric_signature_nocap(&arch);
        // Same full signature always transfers.
        assert!(seed.transfers_to(fabric_signature(&arch), nocap, &vec![4; n]));
        // Untouched cert (need 0, ceil MAX): every capacity vector of the
        // right length inside the window transfers.
        assert!(seed.transfers_to(0, nocap, &vec![1; n]));
        // Wrong no-capacity signature never transfers.
        assert!(!seed.transfers_to(0, nocap ^ 1, &vec![1; n]));
        // A seed without a certificate only transfers on exact signature.
        let bare = PlacementSeed::capture(&dfg, &mapping, &arch, 1, true);
        assert!(bare.transfers_to(fabric_signature(&arch), nocap, &vec![4; n]));
        assert!(!bare.transfers_to(0, nocap, &vec![4; n]));
    }

    #[test]
    fn seed_json_round_trip() {
        let dfg = small_dfg();
        let arch = spatio_temporal::build(4, 4);
        let mapping = PathFinderMapper::default().map(&dfg, &arch).unwrap();
        let seed = PlacementSeed::capture(&dfg, &mapping, &arch, 1, true);
        let json = serde_json::to_string(&seed).unwrap();
        let back: PlacementSeed = serde_json::from_str(&json).unwrap();
        assert_eq!(back, seed);
    }
}
