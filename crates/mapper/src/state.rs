//! Modulo routing-resource occupancy (the mutable part of the MRRG).
//!
//! The Modulo Routing Resource Graph of Section 5.1 is the architecture's
//! routing-resource graph extended over II cycles, with wrap-around. The
//! static part (resources and links) lives in `plaid-arch`; this module holds
//! the dynamic part: which value occupies which resource in which modulo slot.
//!
//! Two routes carrying the *same* value (the same producer node) may share a
//! resource slot — that is exactly how a fan-out reuses wires — so occupancy
//! is tracked per `(resource, slot, value)` with reference counts.
//!
//! Storage is a dense `resource × slot` table (flat index `r * ii + slot`)
//! whose cells are small inline value sets: the common case (a handful of
//! distinct values per switch slot) never allocates, `usage`/`fits` are a
//! single indexed load, and aggregate queries (`total_overuse`,
//! `resource_load`, `occupied_slots`) read counters maintained incrementally
//! by `occupy`/`release` instead of rescanning the table.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use plaid_arch::{Architecture, ResourceId};
use plaid_dfg::NodeId;

/// A monotone record of every capacity decision a mapping search made.
///
/// `fits` is the *only* way the hard-capacity mappers observe switch
/// capacities, so the search's entire decision sequence is a pure function
/// of `(dfg, fabric-without-capacities, ii)` *plus* the answers `fits`
/// returned. For each resource the certificate tracks:
///
/// * `need` — the largest occupancy an *admitted* query saw, plus one: any
///   capacity `>= need` answers those queries identically (true);
/// * `ceil` — the smallest occupancy a *refused* query saw: any capacity
///   `<= ceil` answers those queries identically (false).
///
/// A completed search therefore reproduces bit-for-bit on any fabric that is
/// identical up to switch capacities `c` with `need <= c <= ceil` — the
/// soundness basis for transferring mapping results across communication
/// provisioning levels.
///
/// The certificate is shared (`Arc`) across state clones: mappers snapshot
/// and roll back states freely, but a rolled-back branch still *consulted*
/// capacities, so its observations must survive the rollback.
#[derive(Debug, Default)]
pub struct CapacityCert {
    need: Vec<AtomicU32>,
    ceil: Vec<AtomicU32>,
}

impl CapacityCert {
    /// An empty certificate for `resource_count` resources.
    pub fn new(resource_count: usize) -> Self {
        CapacityCert {
            need: (0..resource_count).map(|_| AtomicU32::new(0)).collect(),
            ceil: (0..resource_count)
                .map(|_| AtomicU32::new(u32::MAX))
                .collect(),
        }
    }

    fn admit(&self, resource: u32, occupancy_plus_one: u32) {
        // Plain load first: the monotone bounds converge after a handful of
        // queries, after which the hot `fits` path skips the RMW entirely.
        let need = &self.need[resource as usize];
        if need.load(Ordering::Relaxed) < occupancy_plus_one {
            need.fetch_max(occupancy_plus_one, Ordering::Relaxed);
        }
    }

    fn block(&self, resource: u32, occupancy: u32) {
        let ceil = &self.ceil[resource as usize];
        if ceil.load(Ordering::Relaxed) > occupancy {
            ceil.fetch_min(occupancy, Ordering::Relaxed);
        }
    }

    /// Per-resource minimum capacities the recorded decisions require.
    pub fn need(&self) -> Vec<u32> {
        self.need
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-resource maximum capacities the recorded decisions allow.
    pub fn ceil(&self) -> Vec<u32> {
        self.ceil
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

/// Distinct `(value, refcount)` pairs held inline per slot before spilling to
/// a heap vector. Four covers every slot the workload suite produces on the
/// default grids (switch capacities are small); congested negotiation rounds
/// spill gracefully.
const INLINE_VALUES: usize = 4;

/// Occupancy of one `(resource, slot)` cell: a refcounted small-set of the
/// distinct values present. Membership and counts are all the mappers ask
/// for, so entry order within a cell is insignificant (and `PartialEq`
/// compares as a set).
#[derive(Debug, Clone, Default)]
struct SlotOcc {
    inline: [(u32, u32); INLINE_VALUES],
    inline_len: u8,
    spill: Vec<(u32, u32)>,
}

impl SlotOcc {
    fn distinct(&self) -> u32 {
        u32::from(self.inline_len) + self.spill.len() as u32
    }

    fn contains(&self, value: u32) -> bool {
        self.inline[..usize::from(self.inline_len)]
            .iter()
            .chain(self.spill.iter())
            .any(|&(v, _)| v == value)
    }

    /// Adds one reference of `value`; returns `true` when the value is new
    /// to the cell (the distinct count grew).
    fn add(&mut self, value: u32) -> bool {
        for entry in self.inline[..usize::from(self.inline_len)]
            .iter_mut()
            .chain(self.spill.iter_mut())
        {
            if entry.0 == value {
                entry.1 += 1;
                return false;
            }
        }
        if usize::from(self.inline_len) < INLINE_VALUES {
            self.inline[usize::from(self.inline_len)] = (value, 1);
            self.inline_len += 1;
        } else {
            self.spill.push((value, 1));
        }
        true
    }

    /// Drops one reference of `value`; returns `true` when its last
    /// reference was released (the distinct count shrank). Unknown values
    /// are a no-op, which keeps undo paths in the mappers simple.
    fn remove(&mut self, value: u32) -> bool {
        let inline_len = usize::from(self.inline_len);
        for i in 0..inline_len {
            if self.inline[i].0 == value {
                self.inline[i].1 -= 1;
                if self.inline[i].1 > 0 {
                    return false;
                }
                // Backfill the hole from the spill first (keeping the cell
                // compact), otherwise from the inline tail.
                if let Some(moved) = self.spill.pop() {
                    self.inline[i] = moved;
                } else {
                    self.inline[i] = self.inline[inline_len - 1];
                    self.inline_len -= 1;
                }
                return true;
            }
        }
        for i in 0..self.spill.len() {
            if self.spill[i].0 == value {
                self.spill[i].1 -= 1;
                if self.spill[i].1 > 0 {
                    return false;
                }
                self.spill.swap_remove(i);
                return true;
            }
        }
        false
    }

    /// Set equality over `(value, refcount)` pairs, ignoring storage order.
    fn same_values(&self, other: &SlotOcc) -> bool {
        if self.distinct() != other.distinct() {
            return false;
        }
        self.inline[..usize::from(self.inline_len)]
            .iter()
            .chain(self.spill.iter())
            .all(|&(v, c)| {
                other.inline[..usize::from(other.inline_len)]
                    .iter()
                    .chain(other.spill.iter())
                    .any(|&(ov, oc)| ov == v && oc == c)
            })
    }
}

/// Per-(resource, modulo-slot) occupancy with value sharing.
#[derive(Debug, Clone)]
pub struct RoutingState {
    ii: u32,
    capacities: Vec<u32>,
    /// Dense cell table, indexed `resource * ii + slot`.
    slots: Vec<SlotOcc>,
    /// Per-resource total occupancy across the II (sum of distinct counts).
    load: Vec<u32>,
    /// Per-resource total overuse across the II.
    over: Vec<u32>,
    /// Sum of `over` — `total_overuse()` in O(1).
    total_over: u32,
    /// Number of cells with at least one value — `occupied_slots()` in O(1).
    occupied: u32,
    cert: Arc<CapacityCert>,
}

/// Equality ignores the capacity certificate (it is telemetry about the
/// search, not part of the mapping state) and cell storage order (occupancy
/// is a multiset per cell, and undo paths may repack cells).
impl PartialEq for RoutingState {
    fn eq(&self, other: &Self) -> bool {
        self.ii == other.ii
            && self.capacities == other.capacities
            && self.slots.len() == other.slots.len()
            && self
                .slots
                .iter()
                .zip(other.slots.iter())
                .all(|(a, b)| a.same_values(b))
    }
}

impl RoutingState {
    /// Creates an empty occupancy table for `arch` at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn new(arch: &Architecture, ii: u32) -> Self {
        Self::with_cert(
            arch,
            ii,
            Arc::new(CapacityCert::new(arch.resources().len())),
        )
    }

    /// Like [`RoutingState::new`], but records capacity decisions into an
    /// externally owned certificate — mappers pass one accumulator across
    /// every II attempt of a ladder so the certificate covers the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn with_cert(arch: &Architecture, ii: u32, cert: Arc<CapacityCert>) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        let n = arch.resources().len();
        RoutingState {
            ii,
            capacities: arch.resources().iter().map(|r| r.kind.capacity()).collect(),
            slots: vec![SlotOcc::default(); n * ii as usize],
            load: vec![0; n],
            over: vec![0; n],
            total_over: 0,
            occupied: 0,
            cert,
        }
    }

    /// The initiation interval this state was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Modulo slot of an absolute cycle.
    pub fn slot(&self, cycle: u32) -> u32 {
        cycle % self.ii
    }

    #[inline]
    fn index(&self, resource: u32, slot: u32) -> usize {
        resource as usize * self.ii as usize + slot as usize
    }

    /// Number of distinct values occupying `(resource, slot)`.
    pub fn usage(&self, resource: ResourceId, slot: u32) -> u32 {
        self.slots[self.index(resource.0, slot)].distinct()
    }

    /// Amount by which `(resource, slot)` exceeds its capacity.
    pub fn overuse(&self, resource: ResourceId, slot: u32) -> u32 {
        self.usage(resource, slot)
            .saturating_sub(self.capacities[resource.0 as usize])
    }

    /// Total overuse across all occupied slots (0 for a legal configuration).
    /// Maintained incrementally; O(1).
    pub fn total_overuse(&self) -> u32 {
        self.total_over
    }

    /// Total overuse of all slots belonging to `resource`. Maintained
    /// incrementally; O(1). Lets PathFinder's history accumulation skip
    /// uncongested resources without scanning their slots.
    pub fn resource_overuse(&self, resource: ResourceId) -> u32 {
        self.over[resource.0 as usize]
    }

    /// Whether `value` could occupy `(resource, slot)` without exceeding the
    /// capacity (values already present occupy no additional space).
    ///
    /// Every capacity-consulting answer is recorded in the shared
    /// [`CapacityCert`]; answers that do not depend on the capacity (the
    /// value is already present) are not.
    pub fn fits(&self, resource: ResourceId, slot: u32, value: NodeId) -> bool {
        self.admission(resource, slot, value).0
    }

    /// Fused `fits` + `usage` probe for the routing hot path: one cell
    /// lookup yields both the admission answer (recorded in the shared
    /// [`CapacityCert`] exactly as [`RoutingState::fits`] records it) and
    /// the current distinct-value count of the slot.
    pub fn admission(&self, resource: ResourceId, slot: u32, value: NodeId) -> (bool, u32) {
        let cap = self.capacities[resource.0 as usize];
        let cell = &self.slots[self.index(resource.0, slot)];
        let occupancy = cell.distinct();
        if cell.contains(value.0) {
            return (true, occupancy);
        }
        if occupancy < cap {
            self.cert.admit(resource.0, occupancy + 1);
            (true, occupancy)
        } else {
            self.cert.block(resource.0, occupancy);
            (false, occupancy)
        }
    }

    /// Occupies `(resource, cycle mod II)` with `value`.
    pub fn occupy(&mut self, resource: ResourceId, cycle: u32, value: NodeId) {
        let slot = self.slot(cycle);
        let idx = self.index(resource.0, slot);
        let cap = self.capacities[resource.0 as usize];
        let cell = &mut self.slots[idx];
        if cell.add(value.0) {
            let distinct = cell.distinct();
            if distinct == 1 {
                self.occupied += 1;
            }
            if distinct > cap {
                self.over[resource.0 as usize] += 1;
                self.total_over += 1;
            }
            self.load[resource.0 as usize] += 1;
        }
    }

    /// Releases one reference of `value` on `(resource, cycle mod II)`.
    ///
    /// Releasing a value that is not present is a no-op, which keeps undo
    /// paths in the mappers simple.
    pub fn release(&mut self, resource: ResourceId, cycle: u32, value: NodeId) {
        let slot = self.slot(cycle);
        let idx = self.index(resource.0, slot);
        let cap = self.capacities[resource.0 as usize];
        let cell = &mut self.slots[idx];
        let before = cell.distinct();
        if cell.remove(value.0) {
            if before > cap {
                self.over[resource.0 as usize] -= 1;
                self.total_over -= 1;
            }
            if before == 1 {
                self.occupied -= 1;
            }
            self.load[resource.0 as usize] -= 1;
        }
    }

    /// Per-resource capacity.
    pub fn capacity(&self, resource: ResourceId) -> u32 {
        self.capacities[resource.0 as usize]
    }

    /// Number of occupied `(resource, slot)` pairs — a cheap congestion
    /// proxy. Maintained incrementally; O(1).
    pub fn occupied_slots(&self) -> usize {
        self.occupied as usize
    }

    /// Total occupancy of all slots belonging to `resource` across the II.
    /// Maintained incrementally; O(1).
    pub fn resource_load(&self, resource: ResourceId) -> u32 {
        self.load[resource.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::spatio_temporal;

    fn state() -> RoutingState {
        RoutingState::new(&spatio_temporal::build(2, 2), 4)
    }

    #[test]
    fn occupy_and_release_round_trip() {
        let mut s = state();
        let r = ResourceId(1);
        assert_eq!(s.usage(r, 1), 0);
        s.occupy(r, 1, NodeId(7));
        s.occupy(r, 5, NodeId(7)); // same slot (5 mod 4 == 1), same value
        assert_eq!(s.usage(r, 1), 1);
        s.release(r, 1, NodeId(7));
        assert_eq!(s.usage(r, 1), 1, "second reference still held");
        s.release(r, 5, NodeId(7));
        assert_eq!(s.usage(r, 1), 0);
    }

    #[test]
    fn same_value_shares_capacity() {
        let mut s = state();
        // Resource 0 is a functional unit with capacity 1.
        let fu = ResourceId(0);
        s.occupy(fu, 0, NodeId(3));
        assert!(s.fits(fu, 0, NodeId(3)), "same value always fits");
        assert!(
            !s.fits(fu, 0, NodeId(4)),
            "different value exceeds capacity"
        );
    }

    #[test]
    fn overuse_counts_excess_values() {
        let mut s = state();
        let fu = ResourceId(0);
        s.occupy(fu, 2, NodeId(1));
        s.occupy(fu, 2, NodeId(2));
        s.occupy(fu, 2, NodeId(3));
        assert_eq!(s.usage(fu, 2), 3);
        assert_eq!(s.overuse(fu, 2), 2);
        assert_eq!(s.total_overuse(), 2);
        assert_eq!(s.resource_overuse(fu), 2);
        s.release(fu, 2, NodeId(2));
        assert_eq!(s.total_overuse(), 1);
        s.release(fu, 2, NodeId(1));
        s.release(fu, 2, NodeId(3));
        assert_eq!(s.total_overuse(), 0);
        assert_eq!(s.resource_overuse(fu), 0);
    }

    #[test]
    fn release_of_absent_value_is_noop() {
        let mut s = state();
        s.release(ResourceId(2), 0, NodeId(9));
        assert_eq!(s.usage(ResourceId(2), 0), 0);
        assert_eq!(s.occupied_slots(), 0);
    }

    #[test]
    fn resource_load_sums_slots() {
        let mut s = state();
        let r = ResourceId(1);
        s.occupy(r, 0, NodeId(1));
        s.occupy(r, 1, NodeId(2));
        s.occupy(r, 2, NodeId(3));
        assert_eq!(s.resource_load(r), 3);
        assert_eq!(s.occupied_slots(), 3);
    }

    #[test]
    fn spill_beyond_inline_capacity_round_trips() {
        let mut s = state();
        let r = ResourceId(1);
        let many = (INLINE_VALUES as u32 + 3) * 2;
        for v in 0..many {
            s.occupy(r, 0, NodeId(v));
        }
        assert_eq!(s.usage(r, 0), many);
        for v in 0..many {
            assert!(s.fits(r, 0, NodeId(v)), "present value always fits");
        }
        // Release in an order that exercises both inline and spill removal.
        for v in (0..many).rev().chain(std::iter::empty()) {
            s.release(r, 0, NodeId(v));
        }
        assert_eq!(s.usage(r, 0), 0);
        assert_eq!(s.occupied_slots(), 0);
        assert_eq!(s.resource_load(r), 0);
    }

    #[test]
    fn equality_ignores_cell_storage_order() {
        let mut a = state();
        let mut b = state();
        let r = ResourceId(1);
        for v in [1u32, 2, 3] {
            a.occupy(r, 0, NodeId(v));
        }
        for v in [3u32, 1, 2] {
            b.occupy(r, 0, NodeId(v));
        }
        assert_eq!(a, b);
        b.release(r, 0, NodeId(2));
        assert_ne!(a, b);
        b.occupy(r, 0, NodeId(2));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ii_panics() {
        let _ = RoutingState::new(&spatio_temporal::build(2, 2), 0);
    }
}
