//! Modulo routing-resource occupancy (the mutable part of the MRRG).
//!
//! The Modulo Routing Resource Graph of Section 5.1 is the architecture's
//! routing-resource graph extended over II cycles, with wrap-around. The
//! static part (resources and links) lives in `plaid-arch`; this module holds
//! the dynamic part: which value occupies which resource in which modulo slot.
//!
//! Two routes carrying the *same* value (the same producer node) may share a
//! resource slot — that is exactly how a fan-out reuses wires — so occupancy
//! is tracked per `(resource, slot, value)` with reference counts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use plaid_arch::{Architecture, ResourceId};
use plaid_dfg::NodeId;

/// A monotone record of every capacity decision a mapping search made.
///
/// `fits` is the *only* way the hard-capacity mappers observe switch
/// capacities, so the search's entire decision sequence is a pure function
/// of `(dfg, fabric-without-capacities, ii)` *plus* the answers `fits`
/// returned. For each resource the certificate tracks:
///
/// * `need` — the largest occupancy an *admitted* query saw, plus one: any
///   capacity `>= need` answers those queries identically (true);
/// * `ceil` — the smallest occupancy a *refused* query saw: any capacity
///   `<= ceil` answers those queries identically (false).
///
/// A completed search therefore reproduces bit-for-bit on any fabric that is
/// identical up to switch capacities `c` with `need <= c <= ceil` — the
/// soundness basis for transferring mapping results across communication
/// provisioning levels.
///
/// The certificate is shared (`Arc`) across state clones: mappers snapshot
/// and roll back states freely, but a rolled-back branch still *consulted*
/// capacities, so its observations must survive the rollback.
#[derive(Debug, Default)]
pub struct CapacityCert {
    need: Vec<AtomicU32>,
    ceil: Vec<AtomicU32>,
}

impl CapacityCert {
    /// An empty certificate for `resource_count` resources.
    pub fn new(resource_count: usize) -> Self {
        CapacityCert {
            need: (0..resource_count).map(|_| AtomicU32::new(0)).collect(),
            ceil: (0..resource_count)
                .map(|_| AtomicU32::new(u32::MAX))
                .collect(),
        }
    }

    fn admit(&self, resource: u32, occupancy_plus_one: u32) {
        self.need[resource as usize].fetch_max(occupancy_plus_one, Ordering::Relaxed);
    }

    fn block(&self, resource: u32, occupancy: u32) {
        self.ceil[resource as usize].fetch_min(occupancy, Ordering::Relaxed);
    }

    /// Per-resource minimum capacities the recorded decisions require.
    pub fn need(&self) -> Vec<u32> {
        self.need
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-resource maximum capacities the recorded decisions allow.
    pub fn ceil(&self) -> Vec<u32> {
        self.ceil
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

/// Per-(resource, modulo-slot) occupancy with value sharing.
#[derive(Debug, Clone)]
pub struct RoutingState {
    ii: u32,
    capacities: Vec<u32>,
    occupancy: HashMap<(u32, u32), HashMap<u32, u32>>,
    cert: Arc<CapacityCert>,
}

/// Equality ignores the capacity certificate (it is telemetry about the
/// search, not part of the mapping state).
impl PartialEq for RoutingState {
    fn eq(&self, other: &Self) -> bool {
        self.ii == other.ii
            && self.capacities == other.capacities
            && self.occupancy == other.occupancy
    }
}

impl RoutingState {
    /// Creates an empty occupancy table for `arch` at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn new(arch: &Architecture, ii: u32) -> Self {
        Self::with_cert(
            arch,
            ii,
            Arc::new(CapacityCert::new(arch.resources().len())),
        )
    }

    /// Like [`RoutingState::new`], but records capacity decisions into an
    /// externally owned certificate — mappers pass one accumulator across
    /// every II attempt of a ladder so the certificate covers the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn with_cert(arch: &Architecture, ii: u32, cert: Arc<CapacityCert>) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        RoutingState {
            ii,
            capacities: arch.resources().iter().map(|r| r.kind.capacity()).collect(),
            occupancy: HashMap::new(),
            cert,
        }
    }

    /// The initiation interval this state was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Modulo slot of an absolute cycle.
    pub fn slot(&self, cycle: u32) -> u32 {
        cycle % self.ii
    }

    /// Number of distinct values occupying `(resource, slot)`.
    pub fn usage(&self, resource: ResourceId, slot: u32) -> u32 {
        self.occupancy
            .get(&(resource.0, slot))
            .map(|m| m.len() as u32)
            .unwrap_or(0)
    }

    /// Amount by which `(resource, slot)` exceeds its capacity.
    pub fn overuse(&self, resource: ResourceId, slot: u32) -> u32 {
        self.usage(resource, slot)
            .saturating_sub(self.capacities[resource.0 as usize])
    }

    /// Total overuse across all occupied slots (0 for a legal configuration).
    pub fn total_overuse(&self) -> u32 {
        self.occupancy
            .keys()
            .map(|&(r, s)| self.overuse(ResourceId(r), s))
            .sum()
    }

    /// Whether `value` could occupy `(resource, slot)` without exceeding the
    /// capacity (values already present occupy no additional space).
    ///
    /// Every capacity-consulting answer is recorded in the shared
    /// [`CapacityCert`]; answers that do not depend on the capacity (the
    /// value is already present) are not.
    pub fn fits(&self, resource: ResourceId, slot: u32, value: NodeId) -> bool {
        let cap = self.capacities[resource.0 as usize];
        let occupancy = match self.occupancy.get(&(resource.0, slot)) {
            Some(m) => {
                if m.contains_key(&value.0) {
                    return true;
                }
                m.len() as u32
            }
            None => 0,
        };
        if occupancy < cap {
            self.cert.admit(resource.0, occupancy + 1);
            true
        } else {
            self.cert.block(resource.0, occupancy);
            false
        }
    }

    /// Occupies `(resource, cycle mod II)` with `value`.
    pub fn occupy(&mut self, resource: ResourceId, cycle: u32, value: NodeId) {
        let slot = self.slot(cycle);
        *self
            .occupancy
            .entry((resource.0, slot))
            .or_default()
            .entry(value.0)
            .or_insert(0) += 1;
    }

    /// Releases one reference of `value` on `(resource, cycle mod II)`.
    ///
    /// Releasing a value that is not present is a no-op, which keeps undo
    /// paths in the mappers simple.
    pub fn release(&mut self, resource: ResourceId, cycle: u32, value: NodeId) {
        let slot = self.slot(cycle);
        if let Some(values) = self.occupancy.get_mut(&(resource.0, slot)) {
            if let Some(count) = values.get_mut(&value.0) {
                *count -= 1;
                if *count == 0 {
                    values.remove(&value.0);
                }
            }
            if values.is_empty() {
                self.occupancy.remove(&(resource.0, slot));
            }
        }
    }

    /// Per-resource capacity.
    pub fn capacity(&self, resource: ResourceId) -> u32 {
        self.capacities[resource.0 as usize]
    }

    /// Number of occupied `(resource, slot)` pairs — a cheap congestion proxy.
    pub fn occupied_slots(&self) -> usize {
        self.occupancy.len()
    }

    /// Total occupancy of all slots belonging to `resource` across the II.
    pub fn resource_load(&self, resource: ResourceId) -> u32 {
        (0..self.ii).map(|s| self.usage(resource, s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::spatio_temporal;

    fn state() -> RoutingState {
        RoutingState::new(&spatio_temporal::build(2, 2), 4)
    }

    #[test]
    fn occupy_and_release_round_trip() {
        let mut s = state();
        let r = ResourceId(1);
        assert_eq!(s.usage(r, 1), 0);
        s.occupy(r, 1, NodeId(7));
        s.occupy(r, 5, NodeId(7)); // same slot (5 mod 4 == 1), same value
        assert_eq!(s.usage(r, 1), 1);
        s.release(r, 1, NodeId(7));
        assert_eq!(s.usage(r, 1), 1, "second reference still held");
        s.release(r, 5, NodeId(7));
        assert_eq!(s.usage(r, 1), 0);
    }

    #[test]
    fn same_value_shares_capacity() {
        let mut s = state();
        // Resource 0 is a functional unit with capacity 1.
        let fu = ResourceId(0);
        s.occupy(fu, 0, NodeId(3));
        assert!(s.fits(fu, 0, NodeId(3)), "same value always fits");
        assert!(
            !s.fits(fu, 0, NodeId(4)),
            "different value exceeds capacity"
        );
    }

    #[test]
    fn overuse_counts_excess_values() {
        let mut s = state();
        let fu = ResourceId(0);
        s.occupy(fu, 2, NodeId(1));
        s.occupy(fu, 2, NodeId(2));
        s.occupy(fu, 2, NodeId(3));
        assert_eq!(s.usage(fu, 2), 3);
        assert_eq!(s.overuse(fu, 2), 2);
        assert_eq!(s.total_overuse(), 2);
    }

    #[test]
    fn release_of_absent_value_is_noop() {
        let mut s = state();
        s.release(ResourceId(2), 0, NodeId(9));
        assert_eq!(s.usage(ResourceId(2), 0), 0);
    }

    #[test]
    fn resource_load_sums_slots() {
        let mut s = state();
        let r = ResourceId(1);
        s.occupy(r, 0, NodeId(1));
        s.occupy(r, 1, NodeId(2));
        s.occupy(r, 2, NodeId(3));
        assert_eq!(s.resource_load(r), 3);
        assert_eq!(s.occupied_slots(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ii_panics() {
        let _ = RoutingState::new(&spatio_temporal::build(2, 2), 0);
    }
}
