//! Dense maps over the contiguous `NodeId`/`EdgeId` id spaces.
//!
//! DFG node and edge ids are assigned densely from zero, so the mapper's
//! per-node placement and per-edge route tables need no hashing at all: a
//! [`DenseMap`] is a flat `Vec<Option<V>>` indexed by id, turning the
//! `contains_key`/`get` calls the move loop issues dozens of times per move
//! into single indexed loads. The API mirrors the `HashMap` subset the
//! mappers use, so call sites read identically.

use std::marker::PhantomData;
use std::ops::Index;

use plaid_dfg::{EdgeId, NodeId};

/// A copyable key drawn from a dense `u32` id space starting at zero.
pub trait DenseKey: Copy {
    /// Position of this key in its id space.
    fn dense_index(self) -> usize;
    /// Key at `index` of the id space.
    fn from_dense_index(index: usize) -> Self;
}

impl DenseKey for NodeId {
    fn dense_index(self) -> usize {
        self.0 as usize
    }

    fn from_dense_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl DenseKey for EdgeId {
    fn dense_index(self) -> usize {
        self.0 as usize
    }

    fn from_dense_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

/// A map from a dense id space to values, stored as a flat slot vector.
#[derive(Debug, Clone)]
pub struct DenseMap<K: DenseKey, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: DenseKey, V> DenseMap<K, V> {
    /// An empty map sized for ids `0..universe` (it grows if exceeded).
    pub fn for_universe(universe: usize) -> Self {
        DenseMap {
            slots: (0..universe).map(|_| None).collect(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` has an entry.
    pub fn contains_key(&self, key: &K) -> bool {
        matches!(self.slots.get(key.dense_index()), Some(Some(_)))
    }

    /// The entry of `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.slots.get(key.dense_index()).and_then(Option::as_ref)
    }

    /// Inserts an entry, returning the previous value of `key` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let idx = key.dense_index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the entry of `key`, if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let old = self.slots.get_mut(key.dense_index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterator over present values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterator over `(key, &value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (K::from_dense_index(i), v)))
    }

    /// Consumes the map into `(key, value)` pairs in ascending key order.
    pub fn into_entries(self) -> impl Iterator<Item = (K, V)> {
        self.slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (K::from_dense_index(i), v)))
    }
}

/// Equality over `(key, value)` entries — keys matter, universe size does
/// not (trailing empty slots are ignored).
impl<K: DenseKey, V: PartialEq> PartialEq for DenseMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let max = self.slots.len().max(other.slots.len());
        (0..max).all(|i| {
            self.slots.get(i).and_then(Option::as_ref)
                == other.slots.get(i).and_then(Option::as_ref)
        })
    }
}

impl<K: DenseKey, V> Index<&K> for DenseMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry for key in DenseMap")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: DenseMap<NodeId, u32> = DenseMap::for_universe(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId(2), 7), None);
        assert_eq!(m.insert(NodeId(2), 9), Some(7));
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&NodeId(2)));
        assert_eq!(m.get(&NodeId(2)), Some(&9));
        assert_eq!(m[&NodeId(2)], 9);
        assert_eq!(m.remove(&NodeId(2)), Some(9));
        assert_eq!(m.remove(&NodeId(2)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_beyond_declared_universe() {
        let mut m: DenseMap<EdgeId, &str> = DenseMap::for_universe(1);
        m.insert(EdgeId(10), "x");
        assert_eq!(m.get(&EdgeId(10)), Some(&"x"));
        assert_eq!(m.get(&EdgeId(3)), None);
        assert!(!m.contains_key(&EdgeId(99)));
    }

    #[test]
    fn equality_ignores_universe_size() {
        let mut a: DenseMap<NodeId, u32> = DenseMap::for_universe(2);
        let mut b: DenseMap<NodeId, u32> = DenseMap::for_universe(16);
        a.insert(NodeId(1), 5);
        b.insert(NodeId(1), 5);
        assert_eq!(a, b);
        b.insert(NodeId(0), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn equality_distinguishes_equal_values_at_different_keys() {
        let mut a: DenseMap<NodeId, u32> = DenseMap::for_universe(4);
        let mut b: DenseMap<NodeId, u32> = DenseMap::for_universe(4);
        a.insert(NodeId(0), 7);
        b.insert(NodeId(1), 7);
        assert_ne!(a, b, "same value under a different key is a different map");
        b.remove(&NodeId(1));
        b.insert(NodeId(0), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut m: DenseMap<NodeId, u32> = DenseMap::for_universe(8);
        m.insert(NodeId(5), 50);
        m.insert(NodeId(1), 10);
        m.insert(NodeId(3), 30);
        let pairs: Vec<(u32, u32)> = m.iter().map(|(k, &v)| (k.0, v)).collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50)]);
        let owned: Vec<(u32, u32)> = m.into_entries().map(|(k, v)| (k.0, v)).collect();
        assert_eq!(owned, vec![(1, 10), (3, 30), (5, 50)]);
    }
}
