//! Mapper error types.

use std::fmt;

/// Errors produced while mapping a DFG onto an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The DFG needs functional-unit capabilities the architecture lacks
    /// (e.g. memory operations but no memory-capable unit).
    UnsupportedDfg(String),
    /// No valid mapping was found for any II up to the configuration-memory
    /// bound.
    NoValidMapping {
        /// Kernel name.
        kernel: String,
        /// Architecture name.
        arch: String,
        /// Highest II attempted.
        max_ii: u32,
    },
    /// A produced mapping failed validation (indicates a mapper bug).
    InvalidMapping(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::UnsupportedDfg(msg) => write!(f, "DFG not supported by architecture: {msg}"),
            MapError::NoValidMapping {
                kernel,
                arch,
                max_ii,
            } => write!(
                f,
                "no valid mapping of {kernel} onto {arch} up to II={max_ii}"
            ),
            MapError::InvalidMapping(msg) => write!(f, "invalid mapping produced: {msg}"),
        }
    }
}

impl std::error::Error for MapError {}
