//! Minimum initiation interval (MII) computation.
//!
//! `MII = max(ResMII, RecMII, CommMII)` (Section 5.1, extended with a
//! communication bound for the structured comm axis):
//!
//! * **ResMII** — resource-constrained bound: the busiest resource class
//!   (compute units or memory ports) must fit within II cycles.
//! * **RecMII** — recurrence-constrained bound: every dependency cycle through
//!   inter-iteration edges must complete within `distance × II` cycles.
//! * **CommMII** — link-bandwidth bound: every data-carrying edge occupies at
//!   least one switch slot per iteration (no fabric links functional units
//!   directly), so the aggregate per-cycle switch capacity times II must
//!   cover the data-edge count. On the as-published networks this bound is
//!   almost always 1; it starts binding on the under-provisioned
//!   (`BwClass::Half`) variants of the structured communication axis.

use std::collections::HashMap;

use plaid_arch::Architecture;
use plaid_dfg::{Dfg, NodeId};

/// Resource-constrained minimum II.
///
/// Compute nodes may execute on any compute-capable unit; memory nodes only on
/// memory-capable units.
pub fn res_mii(dfg: &Dfg, arch: &Architecture) -> u32 {
    let compute_nodes = dfg.compute_node_count() as u32;
    let memory_nodes = dfg.memory_node_count() as u32;
    let compute_units = arch.compute_unit_count() as u32;
    let memory_units = arch.memory_unit_count() as u32;
    let compute_bound = if compute_units == 0 {
        u32::MAX
    } else {
        compute_nodes.div_ceil(compute_units)
    };
    let memory_bound = if memory_nodes == 0 {
        0
    } else if memory_units == 0 {
        u32::MAX
    } else {
        memory_nodes.div_ceil(memory_units)
    };
    compute_bound.max(memory_bound).max(1)
}

/// Recurrence-constrained minimum II.
///
/// For every recurrence edge `u -> v` with iteration distance `d`, the longest
/// same-iteration dependency path from `v` back to `u` (in unit node
/// latencies) plus one must fit in `d × II` cycles.
pub fn rec_mii(dfg: &Dfg) -> u32 {
    let mut best = 1u32;
    for rec in dfg.recurrence_edges() {
        let distance = rec.kind.distance().max(1);
        let path = longest_path_latency(dfg, rec.dst, rec.src);
        if let Some(latency) = path {
            // The cycle latency includes the producing node of the recurrence
            // edge itself (unit latency per node).
            let cycle_latency = latency + 1;
            best = best.max(cycle_latency.div_ceil(distance));
        }
    }
    best
}

/// Communication-constrained minimum II.
///
/// Sound lower bound: every *distinct routed value* (a node with at least
/// one data-carrying out-edge) occupies at least one `(switch, slot)` cell
/// of the modulo occupancy table — all modelled fabrics connect functional
/// units exclusively through switches, and two different values can never
/// share a cell. Fanout edges of one value *can* share cells (occupancy is
/// per `(resource, slot, value)`), which is why the bound counts values,
/// not edges: an edge count would overestimate and make the ladder skip
/// feasible IIs. The table has `total switch capacity × II` cells, so
/// `II >= ceil(routed_values / total_capacity)`. Keys on the link structure
/// the structured [`plaid_arch::CommSpec`] axis provisions: halving
/// per-link bandwidth halves the denominator.
pub fn comm_mii(dfg: &Dfg, arch: &Architecture) -> u32 {
    let routed_values = dfg
        .node_ids()
        .filter(|&n| dfg.out_edges(n).any(|e| dfg.edge_carries_data(e)))
        .count() as u32;
    if routed_values == 0 {
        return 1;
    }
    let bandwidth: u32 = arch
        .resources()
        .iter()
        .filter(|r| !r.kind.is_func_unit())
        .map(|r| r.kind.capacity())
        .sum();
    if bandwidth == 0 {
        return u32::MAX;
    }
    routed_values.div_ceil(bandwidth).max(1)
}

/// Minimum II: `max(ResMII, RecMII, CommMII)`.
pub fn mii(dfg: &Dfg, arch: &Architecture) -> u32 {
    res_mii(dfg, arch)
        .max(rec_mii(dfg))
        .max(comm_mii(dfg, arch))
}

/// Longest path (in unit latencies, i.e. number of edges) from `from` to `to`
/// over same-iteration data edges. Returns `None` when `to` is unreachable.
/// `from == to` yields `Some(0)`.
fn longest_path_latency(dfg: &Dfg, from: NodeId, to: NodeId) -> Option<u32> {
    let order = dfg.topological_order().ok()?;
    let mut dist: HashMap<NodeId, i64> = HashMap::new();
    dist.insert(from, 0);
    for &n in &order {
        let Some(&d) = dist.get(&n) else { continue };
        for e in dfg.out_edges(n).filter(|e| !e.kind.is_recurrence()) {
            let nd = d + 1;
            let entry = dist.entry(e.dst).or_insert(i64::MIN);
            if nd > *entry {
                *entry = nd;
            }
        }
    }
    dist.get(&to).map(|&d| d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    fn reduction_dfg(unroll: u64) -> Dfg {
        let kernel = KernelBuilder::new("dot")
            .loop_var("i", 16)
            .array("a", 16)
            .array("b", 16)
            .array("out", 1)
            .accumulate(
                "out",
                AffineExpr::constant(0),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::unrolled(unroll)).unwrap()
    }

    fn streaming_dfg() -> Dfg {
        let kernel = KernelBuilder::new("axpy")
            .loop_var("i", 16)
            .array("x", 16)
            .array("y", 16)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::default()).unwrap()
    }

    #[test]
    fn res_mii_is_bounded_by_memory_ports() {
        let dfg = streaming_dfg();
        let st = spatio_temporal::build(4, 4);
        // 3 memory nodes over 4 memory units, 2 compute nodes over 16 units.
        assert_eq!(res_mii(&dfg, &st), 1);
        let plaid_arch = plaid::build(2, 2);
        assert_eq!(res_mii(&dfg, &plaid_arch), 1);
    }

    #[test]
    fn res_mii_grows_with_unrolling() {
        let st = spatio_temporal::build(4, 4);
        let d1 = reduction_dfg(1);
        let d4 = reduction_dfg(4);
        assert!(res_mii(&d4, &st) >= res_mii(&d1, &st));
        // 4x unrolled dot product has 12 memory nodes over 4 ports -> >= 3.
        assert!(res_mii(&d4, &st) >= 3);
    }

    #[test]
    fn rec_mii_of_memory_carried_reduction() {
        let dfg = reduction_dfg(1);
        // Cycle: load -> add -> store -> (recurrence) load; latency 3.
        assert_eq!(rec_mii(&dfg), 3);
    }

    #[test]
    fn rec_mii_is_one_without_recurrences() {
        let dfg = streaming_dfg();
        assert_eq!(rec_mii(&dfg), 1);
    }

    #[test]
    fn mii_is_max_of_both_bounds() {
        let st = spatio_temporal::build(4, 4);
        let dfg = reduction_dfg(1);
        assert_eq!(mii(&dfg, &st), rec_mii(&dfg).max(res_mii(&dfg, &st)));
        assert!(mii(&dfg, &st) >= 3);
    }

    #[test]
    fn comm_mii_binds_only_when_bandwidth_is_starved() {
        let dfg = reduction_dfg(4);
        let st = spatio_temporal::build(4, 4);
        // The as-published 4x4 network offers 16 x 5 = 80 switch slots per
        // cycle — far more than the DFG has data edges.
        assert_eq!(comm_mii(&dfg, &st), 1);
        // A starved network (every switch down to capacity 1) must spread the
        // same values across II cycles.
        let params = st.params().clone();
        let starved = plaid_arch::rebuild_provisioned(&st, "starved", params, |_| 1);
        let routed_values = dfg
            .node_ids()
            .filter(|&n| dfg.out_edges(n).any(|e| dfg.edge_carries_data(e)))
            .count() as u32;
        assert!(routed_values > 16, "unrolled reduction routes many values");
        assert_eq!(comm_mii(&dfg, &starved), routed_values.div_ceil(16));
        assert!(mii(&dfg, &starved) >= comm_mii(&dfg, &starved));
        // Fanout shares slots: the bound must count values, not edges, so it
        // never exceeds the value count even on a maximally starved fabric.
        let data_edges = dfg.edges().filter(|e| dfg.edge_carries_data(e)).count() as u32;
        assert!(routed_values <= data_edges);
    }

    #[test]
    fn rec_mii_with_register_carried_self_loop() {
        use plaid_dfg::{EdgeKind, Operand};
        let mut dfg = Dfg::new("acc");
        let ld = dfg.add_load("ld", "x", AffineExpr::var(0));
        let acc = dfg.add_compute_node("acc", Op::Add);
        dfg.add_edge(ld, acc, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(acc, acc, Operand::Rhs, EdgeKind::Recurrence { distance: 1 })
            .unwrap();
        // Self-loop: cycle latency 1, distance 1 -> RecMII 1.
        assert_eq!(rec_mii(&dfg), 1);
        dfg.add_edge(acc, acc, Operand::Rhs, EdgeKind::Recurrence { distance: 2 })
            .unwrap();
        assert_eq!(rec_mii(&dfg), 1);
    }
}
