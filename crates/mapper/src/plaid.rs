//! Algorithm 2: the Plaid hierarchical, motif-aware mapper.
//!
//! The mapper first runs motif identification (Algorithm 1, `plaid-motif`),
//! then maps the hierarchical DFG: whole motifs are placed onto PCUs using the
//! flexible schedule templates of Section 5.2 (so their internal dependencies
//! ride the local router / bypass paths), standalone nodes are placed
//! individually, and all remaining (inter-motif) dependencies are routed over
//! the hierarchical network with Dijkstra's algorithm. When a placement gets
//! stuck the mapper rips up a random motif and retries alternative PCUs and
//! templates, occasionally accepting worse states, in the spirit of simulated
//! annealing. The II grows only when the repair budget is exhausted.

use rand::rngs::SmallRng;
use rand::Rng;

use plaid_arch::{ArchClass, Architecture, Cluster, HardwiredPattern};
use plaid_dfg::{Dfg, EdgeId, NodeId};
use plaid_motif::{
    identify_motifs, schedule_templates, HierarchicalDfg, IdentifyOptions, Motif, MotifKind,
    MotifSchedule,
};

use crate::error::MapError;
use crate::mapping::Mapping;
use crate::mii::mii;
use crate::placement::{place_node_best_effort, LadderShared, MapState};
use crate::route::HardCapacityCost;
use std::sync::Arc;

use crate::sa::attempt_rng;
use crate::seed::{
    options_fingerprint, plan_ladder, LadderPlan, MapSeed, PlacementSeed, SeedContext, SeedOutcome,
    SeededMapping,
};
use crate::Mapper;

/// Options of the Plaid mapper.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaidMapperOptions {
    /// RNG seed for the repair phase.
    pub seed: u64,
    /// Motif-identification options (Algorithm 1).
    pub identify: IdentifyOptions,
    /// Repair attempts per II before increasing the II.
    pub repair_attempts: usize,
    /// Optional cap on the II explored.
    pub max_ii: Option<u32>,
}

impl Default for PlaidMapperOptions {
    fn default() -> Self {
        PlaidMapperOptions {
            seed: 0x9A1D_0002,
            identify: IdentifyOptions::default(),
            repair_attempts: 200,
            max_ii: None,
        }
    }
}

/// The hierarchical motif mapper.
#[derive(Debug, Clone, Default)]
pub struct PlaidMapper {
    options: PlaidMapperOptions,
}

impl PlaidMapper {
    /// Creates a mapper with the given options.
    pub fn new(options: PlaidMapperOptions) -> Self {
        PlaidMapper { options }
    }

    /// Maps one motif onto one cluster with one template at one start cycle.
    /// Returns `false` (leaving the state untouched) if anything fails.
    fn try_place_motif(
        state: &mut MapState<'_>,
        motif: &Motif,
        cluster: &Cluster,
        template: &MotifSchedule,
        start: u32,
    ) -> bool {
        // Hardwired PCUs only execute their own motif kind.
        if let Some(pattern) = cluster.hardwired {
            if !kind_matches(pattern, motif.kind) {
                return false;
            }
        }
        if cluster.alus.len() < 3 && motif.kind.node_count() > cluster.alus.len() {
            return false;
        }
        // Check every slot is placeable before mutating.
        for slot in &template.slots {
            let node = motif.nodes[slot.node];
            let Some(&fu) = cluster.alus.get(slot.alu) else {
                return false;
            };
            if !state.can_place(node, fu, start + slot.cycle) {
                return false;
            }
        }
        // Place, then route the motif-internal edges plus any edge whose other
        // endpoint is already placed.
        let mut placed: Vec<NodeId> = Vec::new();
        for slot in &template.slots {
            let node = motif.nodes[slot.node];
            let fu = cluster.alus[slot.alu];
            state.place(node, fu, start + slot.cycle);
            placed.push(node);
        }
        // Incident edges of the just-placed nodes whose endpoints are both
        // placed, in ascending edge-id order (sort + dedup reproduces the
        // order a full edge scan would yield; edges internal to the motif
        // are seen from both endpoints and must route once).
        let adj = Arc::clone(state.adjacency());
        let mut incident: Vec<EdgeId> = placed
            .iter()
            .flat_map(|&n| adj.incident(n).iter().copied())
            .collect();
        incident.sort_unstable();
        incident.dedup();
        for e in incident {
            let edge = state.dfg.edge(e);
            if !state.placements.contains_key(&edge.src)
                || !state.placements.contains_key(&edge.dst)
            {
                continue;
            }
            if !state.route_edge(e, &HardCapacityCost) {
                for &n in &placed {
                    state.unplace(n);
                }
                return false;
            }
        }
        true
    }

    /// Earliest start cycle for a motif under a specific template, respecting
    /// the already-placed external producers of its nodes.
    fn motif_earliest(state: &MapState<'_>, motif: &Motif, template: &MotifSchedule) -> u32 {
        let mut earliest = 0u32;
        for slot in &template.slots {
            let node = motif.nodes[slot.node];
            let node_earliest = state.earliest_cycle(node);
            earliest = earliest.max(node_earliest.saturating_sub(slot.cycle));
        }
        earliest
    }

    /// Places one motif, scanning clusters (least-loaded first), templates and
    /// start offsets. Returns `true` on success.
    fn place_motif(
        state: &mut MapState<'_>,
        motif: &Motif,
        rng: &mut SmallRng,
        randomize: bool,
    ) -> bool {
        let clusters = state.arch.clusters();
        // "Map the motif to a PE with the least routing resource [usage]":
        // prefer hardwired clusters matching the kind, then least-loaded
        // ones. Sorting indices (tile ids make the key unique) avoids deep-
        // cloning every `Cluster` per placement attempt.
        let mut order: Vec<usize> = (0..clusters.len()).collect();
        order.sort_by_key(|&i| {
            let c = &clusters[i];
            let load: u32 = c
                .alus
                .iter()
                .map(|&fu| state.state.resource_load(fu))
                .sum::<u32>()
                + c.local_router
                    .map(|r| state.state.resource_load(r))
                    .unwrap_or(0);
            let hardwired_bonus = match c.hardwired {
                Some(p) if kind_matches(p, motif.kind) => 0u32,
                Some(_) => 1_000,
                None => 10,
            };
            (hardwired_bonus, load, c.tile as u32)
        });
        if randomize && order.len() > 1 {
            let pick = rng.gen_range(0..order.len());
            order.swap(0, pick);
        }
        // Templates are immutable per motif kind; materialise them once per
        // placement instead of once per (cluster, template, offset) probe.
        let templates = schedule_templates(motif.kind);
        for &ci in &order {
            let cluster = &clusters[ci];
            for template in &templates {
                let base = Self::motif_earliest(state, motif, template);
                for offset in 0..state.ii {
                    if Self::try_place_motif(state, motif, cluster, template, base + offset) {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn attempt_ii<'a>(
        &self,
        dfg: &'a Dfg,
        arch: &'a Architecture,
        hdfg: &HierarchicalDfg,
        ii: u32,
        rng: &mut SmallRng,
        shared: &LadderShared,
    ) -> Option<MapState<'a>> {
        let policy = HardCapacityCost;
        let mut state = MapState::with_cert_and_adjacency(
            dfg,
            arch,
            ii,
            Arc::clone(&shared.cert),
            Arc::clone(&shared.adj),
        );

        // Line 1: sort motifs by data dependency (ASAP level of their nodes).
        let levels = dfg.asap_levels().ok()?;
        let mut motif_order: Vec<usize> = (0..hdfg.motifs().len()).collect();
        motif_order.sort_by_key(|&i| {
            hdfg.motifs()[i]
                .nodes
                .iter()
                .map(|n| levels.get(n).copied().unwrap_or(0))
                .min()
                .unwrap_or(0)
        });

        // Interleave standalone nodes and motifs in global topological order so
        // producers are placed before consumers whenever possible.
        let order = dfg.topological_order().ok()?;
        let mut placed_motifs = vec![false; hdfg.motifs().len()];
        for node in order {
            if state.placements.contains_key(&node) {
                continue;
            }
            match hdfg.motif_of(node) {
                Some(mi) if !placed_motifs[mi] => {
                    placed_motifs[mi] = true;
                    if !Self::place_motif(&mut state, &hdfg.motifs()[mi], rng, false) {
                        // Fall back to individual placement of the motif's
                        // nodes; generality is never lost (Section 3.1).
                        for &n in &hdfg.motifs()[mi].nodes {
                            if !state.placements.contains_key(&n)
                                && !place_node_best_effort(&mut state, n, &policy)
                            {
                                return self.repair(state, hdfg, rng);
                            }
                        }
                    }
                }
                Some(_) => {}
                None => {
                    if !place_node_best_effort(&mut state, node, &policy) {
                        return self.repair(state, hdfg, rng);
                    }
                }
            }
        }
        state.route_all(&policy);
        if state.is_complete() {
            return Some(state);
        }
        self.repair(state, hdfg, rng)
    }

    /// Lines 5-11 of Algorithm 2: rip up one motif (or standalone node),
    /// re-place it with randomized candidates and keep the best outcome,
    /// occasionally accepting worse states.
    fn repair<'a>(
        &self,
        mut state: MapState<'a>,
        hdfg: &HierarchicalDfg,
        rng: &mut SmallRng,
    ) -> Option<MapState<'a>> {
        let policy = HardCapacityCost;
        let mut best_cost = state.cost();
        for _ in 0..self.options.repair_attempts {
            if state.is_complete() {
                return Some(state);
            }
            // Pick a random motif or standalone node to rip up.
            let unit_count = hdfg.unit_count().max(1);
            let pick = rng.gen_range(0..unit_count);
            let ripped_nodes: Vec<NodeId> = if pick < hdfg.motifs().len() {
                hdfg.motifs()[pick].nodes.clone()
            } else {
                let idx = pick - hdfg.motifs().len();
                hdfg.standalone_nodes()
                    .get(idx)
                    .map(|&n| vec![n])
                    .unwrap_or_default()
            };
            if ripped_nodes.is_empty() {
                continue;
            }
            // Journalled repair attempt: a failed or rejected re-placement
            // rolls back in O(deltas) instead of restoring a snapshot.
            state.begin_txn();
            for &n in &ripped_nodes {
                state.unplace(n);
            }
            // Re-place.
            let ok = if pick < hdfg.motifs().len() {
                Self::place_motif(&mut state, &hdfg.motifs()[pick], rng, true)
            } else {
                ripped_nodes
                    .iter()
                    .all(|&n| place_node_best_effort(&mut state, n, &policy))
            };
            if !ok {
                state.rollback_txn();
                continue;
            }
            // Re-route everything that is still missing.
            state.route_all(&policy);
            let new_cost = state.cost() + if state.timing_ok() { 0.0 } else { 500.0 };
            let accept = new_cost <= best_cost || rng.gen::<f64>() < 0.05;
            if accept {
                best_cost = new_cost;
                state.commit_txn();
            } else {
                state.rollback_txn();
            }
        }
        if state.is_complete() {
            Some(state)
        } else {
            None
        }
    }
}

/// Whether a hardwired pattern can execute a motif of the given kind.
fn kind_matches(pattern: HardwiredPattern, kind: MotifKind) -> bool {
    matches!(
        (pattern, kind),
        (HardwiredPattern::FanIn, MotifKind::FanIn)
            | (HardwiredPattern::FanOut, MotifKind::FanOut)
            | (HardwiredPattern::Unicast, MotifKind::Unicast)
            | (_, MotifKind::Pair)
    )
}

impl PlaidMapper {
    /// Maps with an optional warm-start hint.
    ///
    /// The Plaid mapper consumes the two *sound* seeding tiers — exact
    /// replay of a canonical same-fabric seed and ladder flooring past a
    /// proven-infeasible prefix — and ignores heuristic foreign-fabric
    /// seeds (motif templates do not translate across cluster layouts).
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] exactly as [`Mapper::map`] does.
    pub fn map_with_seed(
        &self,
        dfg: &Dfg,
        arch: &Architecture,
        hint: Option<&MapSeed>,
    ) -> Result<SeededMapping, MapError> {
        if dfg.memory_node_count() > 0 && arch.memory_unit_count() == 0 {
            return Err(MapError::UnsupportedDfg(
                "DFG contains memory operations but the architecture has no memory-capable unit"
                    .into(),
            ));
        }
        let ctx = SeedContext::of(dfg, arch);
        let fingerprint = options_fingerprint(&self.options);
        let start = mii(dfg, arch);
        let max_ii = self.options.max_ii.unwrap_or(arch.params().max_ii());
        let infeasible = || MapError::NoValidMapping {
            kernel: dfg.name().to_string(),
            arch: arch.name().to_string(),
            max_ii,
        };
        let (start, floored) =
            match plan_ladder(hint, &ctx, self.name(), fingerprint, start, max_ii) {
                LadderPlan::Infeasible => return Err(infeasible()),
                LadderPlan::Replay(seed) => {
                    if let Some(mapping) = seed.replay(dfg, arch) {
                        return Ok(SeededMapping {
                            seed: PlacementSeed::capture_inherited(
                                dfg,
                                &mapping,
                                arch,
                                fingerprint,
                                seed,
                            ),
                            mapping,
                            outcome: SeedOutcome::Replayed,
                        });
                    }
                    (start, false)
                }
                LadderPlan::Ladder { start, floored, .. } => (start, floored),
            };
        // On non-Plaid fabrics every cluster has a single ALU, so motifs are
        // mapped node-by-node; the hierarchical strategy only pays off on the
        // PCU array, which is exactly the paper's observation in Figure 18.
        let hdfg = if arch.class() == ArchClass::Plaid {
            identify_motifs(dfg, &self.options.identify)
        } else {
            HierarchicalDfg::new(dfg, Vec::new())
        };
        // One capacity certificate accumulates across the whole ladder so
        // the captured seed can prove its result transfers to
        // differently-provisioned networks.
        let shared = LadderShared::of(dfg, arch);
        for ii in start..=max_ii {
            // Per-II RNG: each attempt is a pure function of
            // (dfg, fabric, ii), which is what makes ladder prefixes
            // transferable across configuration depths.
            let mut rng = attempt_rng(self.options.seed, ii);
            if let Some(state) = self.attempt_ii(dfg, arch, &hdfg, ii, &mut rng, &shared) {
                let mapping = state.into_mapping(self.name());
                mapping.validate(dfg, arch)?;
                let (outcome, run_cert) = if floored {
                    // Canonical but not transferable: the certificate does
                    // not cover the skipped (proved-infeasible) prefix.
                    (SeedOutcome::Floored, None)
                } else {
                    (SeedOutcome::Scratch, Some(&*shared.cert))
                };
                return Ok(SeededMapping {
                    seed: PlacementSeed::capture_with_cert(
                        dfg,
                        &mapping,
                        arch,
                        fingerprint,
                        true,
                        run_cert,
                    ),
                    mapping,
                    outcome,
                });
            }
        }
        Err(infeasible())
    }
}

impl Mapper for PlaidMapper {
    fn map(&self, dfg: &Dfg, arch: &Architecture) -> Result<Mapping, MapError> {
        self.map_with_seed(dfg, arch, None).map(|s| s.mapping)
    }

    fn name(&self) -> &'static str {
        "plaid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::plaid as plaid_fabric;
    use plaid_arch::{spatio_temporal, specialize};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;

    fn gemm_like(unroll: u64) -> Dfg {
        let kernel = KernelBuilder::new("gemm_like")
            .loop_var("i", 4)
            .loop_var("j", 4)
            .loop_var("k", 8)
            .array("a", 32)
            .array("b", 32)
            .array("c", 16)
            .accumulate(
                "c",
                AffineExpr::scaled_var(0, 4).add(&AffineExpr::var(1)),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::scaled_var(0, 8).add(&AffineExpr::var(2))),
                    Expr::load("b", AffineExpr::scaled_var(2, 4).add(&AffineExpr::var(1))),
                ),
            )
            .build()
            .unwrap();
        lower_kernel(&kernel, &LoweringOptions::unrolled(unroll)).unwrap()
    }

    #[test]
    fn maps_gemm_on_plaid() {
        let dfg = gemm_like(2);
        let arch = plaid_fabric::build(2, 2);
        let mapping = PlaidMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
        assert!(mapping.ii >= mii(&dfg, &arch));
    }

    #[test]
    fn motif_nodes_land_in_the_same_pcu() {
        let dfg = gemm_like(2);
        let arch = plaid_fabric::build(2, 2);
        let hdfg = identify_motifs(&dfg, &IdentifyOptions::default());
        let mapping = PlaidMapper::default().map(&dfg, &arch).unwrap();
        // At least one identified motif should have all nodes on one tile,
        // demonstrating collective execution.
        let colocated = hdfg.motifs().iter().filter(|m| {
            let tiles: Vec<usize> = m
                .nodes
                .iter()
                .map(|n| arch.resource(mapping.placements[n].fu).tile)
                .collect();
            tiles.windows(2).all(|w| w[0] == w[1])
        });
        assert!(colocated.count() >= 1);
    }

    #[test]
    fn works_on_spatio_temporal_fabric_too() {
        let dfg = gemm_like(1);
        let arch = spatio_temporal::build(4, 4);
        let mapping = PlaidMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
    }

    #[test]
    fn maps_onto_domain_specialized_plaid_ml() {
        let dfg = gemm_like(2);
        let arch = specialize::plaid_ml_2x2();
        let mapping = PlaidMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dfg = gemm_like(2);
        let arch = plaid_fabric::build(2, 2);
        let a = PlaidMapper::default().map(&dfg, &arch).unwrap();
        let b = PlaidMapper::default().map(&dfg, &arch).unwrap();
        assert_eq!(a.ii, b.ii);
        assert_eq!(a.placements, b.placements);
    }

    #[test]
    fn hardwired_pattern_matching() {
        assert!(kind_matches(HardwiredPattern::FanIn, MotifKind::FanIn));
        assert!(!kind_matches(HardwiredPattern::FanIn, MotifKind::FanOut));
        assert!(kind_matches(HardwiredPattern::Unicast, MotifKind::Pair));
    }

    #[test]
    fn scales_to_three_by_three() {
        let dfg = gemm_like(4);
        let arch = plaid_fabric::build(3, 3);
        let mapping = PlaidMapper::default().map(&dfg, &arch).unwrap();
        mapping.validate(&dfg, &arch).unwrap();
    }
}
