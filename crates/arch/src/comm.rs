//! The structured communication axis: per-link-group bandwidth classes,
//! NoC topology variants and select-bit policies.
//!
//! Historically the communication axis was a single 3-valued scalar
//! ([`CommLevel`]) that scaled every switch capacity and every router select
//! bit uniformly. That cannot express BandMap-style per-link bandwidth
//! allocation (different provisioning for the intra-tile network and the
//! global mesh) or NoC topology variants (torus wraparound, express links).
//! [`CommSpec`] replaces it as the enumerable axis:
//!
//! * [`Topology`] — the inter-tile link structure: the published mesh, a
//!   torus (wraparound links closing every row and column), or express
//!   links (additional links skipping `stride` tiles along rows and
//!   columns);
//! * [`LinkBw`] — one [`BwClass`] per link-direction *group*: the local
//!   group (intra-tile switches: Plaid local routers and ALU bypass paths)
//!   and the global group (the per-tile router that faces the mesh —
//!   Plaid global routers and baseline PE crossbars);
//! * [`SelectPolicy`] — whether the router select-bit budget in the
//!   [`crate::ConfigBudget`] tracks the provisioned bandwidth
//!   (`Proportional`, the historical behaviour) or stays at the published
//!   budget (`Fixed`).
//!
//! # Lowering the legacy presets
//!
//! [`CommLevel`] survives as a set of named presets. Each lowers to a
//! `CommSpec` via [`CommLevel::spec`]:
//!
//! | preset    | topology | local bw | global bw | select policy  |
//! |-----------|----------|----------|-----------|----------------|
//! | `Lean`    | mesh     | half     | half      | proportional   |
//! | `Aligned` | mesh     | base     | base      | proportional   |
//! | `Rich`    | mesh     | boost    | boost     | proportional   |
//!
//! The lowering is *bit-identical*: a preset spec scales every switch with
//! the same formula the scalar level used, adds no links, and reports the
//! legacy label (`lean` / `aligned` / `rich`) and the legacy serialized form
//! (`"Lean"` / `"Aligned"` / `"Rich"`), so design points, cache keys, fabric
//! signatures and frontier JSON produced under the scalar encoding are
//! byte-for-byte unchanged. Non-preset specs serialize as a structured
//! object and label themselves by topology and bandwidth codes, so no two
//! distinct specs can alias one cache key or one fabric.

use serde::{Deserialize, Serialize};

/// Communication provisioning level of a design point (legacy presets).
///
/// `Aligned` is the as-published network; `Lean` halves switch capacities and
/// router select bits (an under-provisioned network that saves power but
/// congests); `Rich` adds ~50% on both (an over-provisioned network that
/// routes easily but pays for selects it rarely uses — the Figure 2
/// pathology). Each preset lowers to a structured [`CommSpec`] via
/// [`CommLevel::spec`]; the lowering produces bit-identical fabrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CommLevel {
    /// Under-provisioned: half the switch capacity and router bits.
    Lean,
    /// The as-published provisioning for the class.
    Aligned,
    /// Over-provisioned: ~1.5× switch capacity and router bits.
    Rich,
}

impl CommLevel {
    /// All levels, in lean-to-rich order.
    pub const ALL: [CommLevel; 3] = [CommLevel::Lean, CommLevel::Aligned, CommLevel::Rich];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            CommLevel::Lean => "lean",
            CommLevel::Aligned => "aligned",
            CommLevel::Rich => "rich",
        }
    }

    /// The bandwidth class this preset applies to every link group.
    pub fn bw(self) -> BwClass {
        match self {
            CommLevel::Lean => BwClass::Half,
            CommLevel::Aligned => BwClass::Base,
            CommLevel::Rich => BwClass::Boost,
        }
    }

    /// Lowers the preset to its structured [`CommSpec`]: the published mesh
    /// topology with this level's bandwidth class on both link groups and
    /// proportional select bits. The lowered spec builds a fabric
    /// bit-identical to what the scalar level produced.
    pub fn spec(self) -> CommSpec {
        CommSpec {
            topology: Topology::Mesh,
            link_bw: LinkBw::uniform(self.bw()),
            select_policy: SelectPolicy::Proportional,
        }
    }

    /// Scales a switch capacity for this provisioning level.
    pub fn scale_capacity(self, capacity: u32) -> u32 {
        self.bw().scale_capacity(capacity)
    }

    /// Scales a communication bit budget for this provisioning level.
    pub fn scale_bits(self, bits: u32) -> u32 {
        self.bw().scale_bits(bits)
    }
}

/// A per-link-group bandwidth class: the multiplier applied to switch
/// capacities (and, under [`SelectPolicy::Proportional`], to router select
/// bits) of the links in that group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BwClass {
    /// Half the published bandwidth (never below 1).
    Half,
    /// The as-published bandwidth.
    Base,
    /// ~1.5× the published bandwidth.
    Boost,
    /// Twice the published bandwidth.
    Double,
}

impl BwClass {
    /// All classes, in ascending bandwidth order.
    pub const ALL: [BwClass; 4] = [
        BwClass::Half,
        BwClass::Base,
        BwClass::Boost,
        BwClass::Double,
    ];

    /// Ordinal in ascending-bandwidth order (`Half` = 0 … `Double` = 3).
    pub fn rank(self) -> u32 {
        match self {
            BwClass::Half => 0,
            BwClass::Base => 1,
            BwClass::Boost => 2,
            BwClass::Double => 3,
        }
    }

    /// Full label used in structured serialization and CLI parsing.
    pub fn label(self) -> &'static str {
        match self {
            BwClass::Half => "half",
            BwClass::Base => "base",
            BwClass::Boost => "boost",
            BwClass::Double => "double",
        }
    }

    /// One-character code used in design-point labels (`h`/`b`/`r`/`d`;
    /// `Boost` keeps the legacy `r`ich mnemonic).
    pub fn code(self) -> char {
        match self {
            BwClass::Half => 'h',
            BwClass::Base => 'b',
            BwClass::Boost => 'r',
            BwClass::Double => 'd',
        }
    }

    /// Parses a CLI-style class name (full label or one-character code).
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "half" | "h" => Ok(BwClass::Half),
            "base" | "b" => Ok(BwClass::Base),
            "boost" | "rich" | "r" => Ok(BwClass::Boost),
            "double" | "d" => Ok(BwClass::Double),
            other => Err(format!(
                "unknown bandwidth class `{other}` (half|base|boost|double)"
            )),
        }
    }

    /// Scales a switch capacity. Identical to the legacy
    /// [`CommLevel::scale_capacity`] formulas for the preset classes, so the
    /// lowering is bit-exact; monotone non-decreasing in [`BwClass::rank`].
    pub fn scale_capacity(self, capacity: u32) -> u32 {
        match self {
            BwClass::Half => (capacity / 2).max(1),
            BwClass::Base => capacity,
            BwClass::Boost => capacity + capacity.div_ceil(2),
            BwClass::Double => capacity * 2,
        }
    }

    /// Scales a select-bit budget; same formulas as [`Self::scale_capacity`].
    pub fn scale_bits(self, bits: u32) -> u32 {
        self.scale_capacity(bits)
    }
}

/// Inter-tile link structure of the NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Topology {
    /// The published 2D mesh (links between grid neighbours only).
    Mesh,
    /// Mesh plus wraparound links closing every row and every column.
    Torus,
    /// Mesh plus express links skipping `stride` tiles along every row and
    /// column (`stride >= 2`; a stride of 1 is the mesh itself).
    Express {
        /// Tiles an express link skips (>= 2).
        stride: u32,
    },
}

impl Topology {
    /// Label used in design-point names, structured serialization and CLI
    /// parsing: `mesh`, `torus`, `xp{stride}`.
    pub fn label(self) -> String {
        match self {
            Topology::Mesh => "mesh".into(),
            Topology::Torus => "torus".into(),
            Topology::Express { stride } => format!("xp{stride}"),
        }
    }

    /// Deterministic ordinal used for canonical ordering: mesh first, then
    /// torus, then express topologies by stride.
    pub fn rank(self) -> u32 {
        match self {
            Topology::Mesh => 0,
            Topology::Torus => 1,
            Topology::Express { stride } => 2u32.saturating_add(stride),
        }
    }

    /// Extra router select bits a tile pays for this topology's additional
    /// ports. Mesh and torus routers keep the published 4-neighbour port
    /// count (a torus only ever *completes* the four directions at the array
    /// edge); express routers gain one input and one output port per axis,
    /// encoded as four extra select bits.
    pub fn select_bit_overhead(self) -> u32 {
        match self {
            Topology::Mesh | Topology::Torus => 0,
            Topology::Express { .. } => 4,
        }
    }

    /// Whether the topology is structurally valid (express strides below 2
    /// degenerate to the mesh and are rejected at enumeration).
    pub fn is_valid(self) -> bool {
        match self {
            Topology::Mesh | Topology::Torus => true,
            Topology::Express { stride } => stride >= 2,
        }
    }

    /// Parses a CLI-style topology name (`mesh`, `torus`, `express`,
    /// `express:N`, `xpN`).
    ///
    /// # Errors
    ///
    /// Returns the unknown name or a bad stride.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "mesh" => return Ok(Topology::Mesh),
            "torus" => return Ok(Topology::Torus),
            "express" => return Ok(Topology::Express { stride: 2 }),
            _ => {}
        }
        let stride = name
            .strip_prefix("express:")
            .or_else(|| name.strip_prefix("xp"));
        if let Some(s) = stride {
            let stride: u32 = s
                .parse()
                .map_err(|_| format!("bad express stride in `{name}`"))?;
            if stride < 2 {
                return Err(format!("express stride must be >= 2 (got {stride})"));
            }
            return Ok(Topology::Express { stride });
        }
        Err(format!(
            "unknown topology `{name}` (mesh|torus|express[:N]|xpN)"
        ))
    }
}

/// Select-bit policy: how the communication configuration budget follows the
/// provisioned bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SelectPolicy {
    /// Select bits scale with the bandwidth classes (the historical
    /// behaviour of the scalar levels): leaner networks also spend fewer
    /// configuration bits per cycle.
    Proportional,
    /// Select bits stay at the published budget regardless of bandwidth —
    /// models a fixed encoding that cannot shrink with the datapath.
    Fixed,
}

impl SelectPolicy {
    /// Label used in structured serialization.
    pub fn label(self) -> &'static str {
        match self {
            SelectPolicy::Proportional => "proportional",
            SelectPolicy::Fixed => "fixed",
        }
    }

    /// Parses a serialized policy label.
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "proportional" => Ok(SelectPolicy::Proportional),
            "fixed" => Ok(SelectPolicy::Fixed),
            other => Err(format!(
                "unknown select policy `{other}` (proportional|fixed)"
            )),
        }
    }
}

/// A link-direction group: which part of the fabric a switch serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkGroup {
    /// Intra-tile switches: Plaid local routers and ALU bypass paths.
    Local,
    /// The per-tile mesh-facing router: Plaid global routers and baseline PE
    /// crossbars.
    Global,
}

/// One bandwidth class per link-direction group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkBw {
    /// Bandwidth class of the local (intra-tile) group.
    pub local: BwClass,
    /// Bandwidth class of the global (inter-tile) group.
    pub global: BwClass,
}

impl LinkBw {
    /// The as-published allocation (`Base` on both groups).
    pub const BASE: LinkBw = LinkBw {
        local: BwClass::Base,
        global: BwClass::Base,
    };

    /// The same class on both groups (what the scalar presets lower to).
    pub fn uniform(class: BwClass) -> Self {
        LinkBw {
            local: class,
            global: class,
        }
    }

    /// The class of one group.
    pub fn class(self, group: LinkGroup) -> BwClass {
        match group {
            LinkGroup::Local => self.local,
            LinkGroup::Global => self.global,
        }
    }
}

/// A structured communication provisioning point: topology, per-link-group
/// bandwidth and select-bit policy.
///
/// The legacy [`CommLevel`] presets lower onto this type via
/// [`CommLevel::spec`] (see the [module docs](self) for the exact table);
/// preset specs label and serialize exactly as the scalar levels did, so
/// every artifact keyed on the old encoding — design-point labels, cache
/// keys, fabric signatures, frontier JSON — is unchanged for them, while any
/// non-preset spec carries its full structure into all of those channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommSpec {
    /// Inter-tile link structure.
    pub topology: Topology,
    /// Bandwidth class per link-direction group.
    pub link_bw: LinkBw,
    /// How select bits follow bandwidth.
    pub select_policy: SelectPolicy,
}

impl CommSpec {
    /// The `Lean` preset (mesh, half bandwidth everywhere).
    pub const LEAN: CommSpec = CommSpec {
        topology: Topology::Mesh,
        link_bw: LinkBw {
            local: BwClass::Half,
            global: BwClass::Half,
        },
        select_policy: SelectPolicy::Proportional,
    };
    /// The `Aligned` preset (the as-published network).
    pub const ALIGNED: CommSpec = CommSpec {
        topology: Topology::Mesh,
        link_bw: LinkBw::BASE,
        select_policy: SelectPolicy::Proportional,
    };
    /// The `Rich` preset (mesh, ~1.5× bandwidth everywhere).
    pub const RICH: CommSpec = CommSpec {
        topology: Topology::Mesh,
        link_bw: LinkBw {
            local: BwClass::Boost,
            global: BwClass::Boost,
        },
        select_policy: SelectPolicy::Proportional,
    };

    /// The three legacy presets, in lean-to-rich order (mirrors
    /// [`CommLevel::ALL`]).
    pub fn presets() -> Vec<CommSpec> {
        CommLevel::ALL.iter().map(|l| l.spec()).collect()
    }

    /// A spec with the given topology, one bandwidth class on both groups
    /// and proportional select bits.
    pub fn uniform(topology: Topology, bw: BwClass) -> Self {
        CommSpec {
            topology,
            link_bw: LinkBw::uniform(bw),
            select_policy: SelectPolicy::Proportional,
        }
    }

    /// The preset this spec is the lowering of, if any.
    pub fn as_level(self) -> Option<CommLevel> {
        CommLevel::ALL.iter().copied().find(|l| l.spec() == self)
    }

    /// Whether the spec is structurally valid (see [`Topology::is_valid`]).
    pub fn is_valid(self) -> bool {
        self.topology.is_valid()
    }

    /// Report label. Presets keep their legacy names (`lean` / `aligned` /
    /// `rich`); structured specs read `{topology}[-{local}{global}][-fix]`,
    /// e.g. `torus`, `xp2-hr`, `torus-bb-fix` — with the bandwidth segment
    /// present whenever the allocation is not `Base`/`Base` (one-character
    /// [`BwClass::code`]s, local then global).
    pub fn label(&self) -> String {
        if let Some(level) = self.as_level() {
            return level.label().to_string();
        }
        let mut out = self.topology.label();
        if self.link_bw != LinkBw::BASE {
            out.push('-');
            out.push(self.link_bw.local.code());
            out.push(self.link_bw.global.code());
        }
        if self.select_policy == SelectPolicy::Fixed {
            out.push_str("-fix");
        }
        out
    }

    /// Scales the published capacity of a switch in `group`.
    pub fn scale_capacity(self, group: LinkGroup, capacity: u32) -> u32 {
        self.link_bw.class(group).scale_capacity(capacity).max(1)
    }

    /// The per-tile router select-bit budget under this spec, from the
    /// published budget `base`.
    ///
    /// Under [`SelectPolicy::Proportional`] a uniform allocation applies the
    /// class's legacy formula directly (bit-exact with the scalar levels); a
    /// split allocation charges each group its own class over half the
    /// budget. [`SelectPolicy::Fixed`] keeps `base`. Express topologies add
    /// [`Topology::select_bit_overhead`] on top for their extra ports.
    pub fn select_bits(self, base: u32) -> u32 {
        let scaled = match self.select_policy {
            SelectPolicy::Fixed => base,
            SelectPolicy::Proportional => {
                if self.link_bw.local == self.link_bw.global {
                    self.link_bw.local.scale_bits(base)
                } else {
                    let local_share = base / 2;
                    let global_share = base - local_share;
                    self.link_bw.local.scale_bits(local_share)
                        + self.link_bw.global.scale_bits(global_share)
                }
            }
        };
        scaled + self.topology.select_bit_overhead()
    }

    /// Canonical *scheduling* order of the communication axis, used by
    /// sweep grouping (`run_sweep_with` evaluates each seed family in this
    /// order). Its metric counterpart — "how far apart are two specs" — is
    /// [`CommSpec::distance`]; the two are deliberately different: the best
    /// spec to evaluate *first* (aligned, whose capacity certificates
    /// transfer furthest) is not in the middle of the proximity scale.
    ///
    /// The as-published `Aligned` preset comes first (its capacity
    /// certificates transfer to both the lean and rich variants when
    /// capacity never binds), then `Lean`, then `Rich` — the historical
    /// schedule. Structured specs follow, ordered by topology rank, then
    /// local and global bandwidth, then select policy, so grouping is total
    /// and deterministic for any mix of specs.
    pub fn order_rank(self) -> u32 {
        if self == CommSpec::ALIGNED {
            return 0;
        }
        if self == CommSpec::LEAN {
            return 1;
        }
        if self == CommSpec::RICH {
            return 2;
        }
        3u32.saturating_add(self.topology.rank().saturating_mul(256))
            .saturating_add(self.link_bw.local.rank() * 32)
            .saturating_add(self.link_bw.global.rank() * 4)
            .saturating_add(match self.select_policy {
                SelectPolicy::Proportional => 0,
                SelectPolicy::Fixed => 1,
            })
    }

    /// Canonical *proximity* of two communication specs, used by the
    /// seed-store provisioning distance: how different the fabrics (and
    /// hence their good placements) are expected to be.
    ///
    /// Bandwidth proximity is the summed *per-group* [`BwClass::rank`]
    /// difference — each group compared on its own, so an asymmetric
    /// half/boost allocation is never distance 0 from the uniform base
    /// allocation — which on the uniform presets makes `aligned` nearer to
    /// `rich` than `lean` is, matching the scalar-era metric exactly (one
    /// preset step = 2 units). A topology mismatch adds a large constant
    /// (the link structures differ, so mappings do not translate) and a
    /// select-policy mismatch a small one (cost-only difference).
    pub fn distance(self, other: CommSpec) -> u32 {
        let group = |a: BwClass, b: BwClass| a.rank().abs_diff(b.rank());
        let bw = group(self.link_bw.local, other.link_bw.local)
            + group(self.link_bw.global, other.link_bw.global);
        let topology = if self.topology == other.topology {
            0
        } else {
            24
        };
        let select = u32::from(self.select_policy != other.select_policy);
        bw.saturating_add(topology).saturating_add(select)
    }

    /// The structural family of this spec: bandwidth and select policy
    /// erased, topology kept. Two specs share a family exactly when their
    /// fabrics are identical up to switch capacities — the set across which
    /// a capacity-certified placement seed can hope to transfer. All three
    /// legacy presets collapse to [`CommSpec::ALIGNED`].
    pub fn structural_family(self) -> CommSpec {
        CommSpec {
            topology: self.topology,
            link_bw: LinkBw::BASE,
            select_policy: SelectPolicy::Proportional,
        }
    }
}

impl From<CommLevel> for CommSpec {
    fn from(level: CommLevel) -> Self {
        level.spec()
    }
}

// Hand-written serde: presets must keep the legacy scalar encoding
// (`"Lean"` / `"Aligned"` / `"Rich"`) byte-for-byte so design points,
// persisted caches and frontier JSON from before the refactor stay valid
// and unchanged; structured specs serialize as a labelled object.
impl Serialize for CommSpec {
    fn serialize(&self) -> serde::Value {
        if let Some(level) = self.as_level() {
            return level.serialize();
        }
        let mut map = serde::Map::new();
        map.insert(
            "topology".to_string(),
            serde::Value::String(self.topology.label()),
        );
        map.insert(
            "local_bw".to_string(),
            serde::Value::String(self.link_bw.local.label().to_string()),
        );
        map.insert(
            "global_bw".to_string(),
            serde::Value::String(self.link_bw.global.label().to_string()),
        );
        map.insert(
            "select".to_string(),
            serde::Value::String(self.select_policy.label().to_string()),
        );
        serde::Value::Object(map)
    }
}

impl Deserialize for CommSpec {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        if value.as_str().is_some() {
            let level = CommLevel::deserialize(value)?;
            return Ok(level.spec());
        }
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::expected("CommSpec string or object", value))?;
        let field = |name: &str| -> Result<&str, serde::Error> {
            obj.get(name)
                .and_then(|v| v.as_str())
                .ok_or_else(|| serde::Error::missing_field("CommSpec", name))
        };
        let topology = Topology::parse(field("topology")?).map_err(serde::Error::custom)?;
        let local = BwClass::parse(field("local_bw")?).map_err(serde::Error::custom)?;
        let global = BwClass::parse(field("global_bw")?).map_err(serde::Error::custom)?;
        let select_policy = SelectPolicy::parse(field("select")?).map_err(serde::Error::custom)?;
        Ok(CommSpec {
            topology,
            link_bw: LinkBw { local, global },
            select_policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_lower_to_the_legacy_scaling() {
        for level in CommLevel::ALL {
            let spec = level.spec();
            assert_eq!(spec.as_level(), Some(level));
            assert_eq!(spec.label(), level.label());
            assert_eq!(spec.topology, Topology::Mesh);
            for capacity in [1u32, 2, 5, 7, 8] {
                assert_eq!(
                    spec.scale_capacity(LinkGroup::Local, capacity),
                    level.scale_capacity(capacity)
                );
                assert_eq!(
                    spec.scale_capacity(LinkGroup::Global, capacity),
                    level.scale_capacity(capacity)
                );
            }
            for bits in [1u32, 23, 37, 44] {
                assert_eq!(spec.select_bits(bits), level.scale_bits(bits));
            }
        }
    }

    #[test]
    fn preset_serialization_matches_the_scalar_encoding() {
        for level in CommLevel::ALL {
            let legacy = serde_json::to_string(&level).unwrap();
            let lowered = serde_json::to_string(&level.spec()).unwrap();
            assert_eq!(legacy, lowered, "preset JSON changed");
            let back: CommSpec = serde_json::from_str(&lowered).unwrap();
            assert_eq!(back, level.spec());
        }
    }

    #[test]
    fn structured_specs_round_trip_through_json() {
        let specs = [
            CommSpec::uniform(Topology::Torus, BwClass::Base),
            CommSpec::uniform(Topology::Express { stride: 3 }, BwClass::Double),
            CommSpec {
                topology: Topology::Torus,
                link_bw: LinkBw {
                    local: BwClass::Half,
                    global: BwClass::Boost,
                },
                select_policy: SelectPolicy::Fixed,
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            assert!(
                json.contains("topology"),
                "structured form expected: {json}"
            );
            let back: CommSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn labels_are_unique_across_a_mixed_axis() {
        let mut specs = CommSpec::presets();
        specs.push(CommSpec::uniform(Topology::Torus, BwClass::Base));
        specs.push(CommSpec::uniform(Topology::Torus, BwClass::Half));
        specs.push(CommSpec::uniform(
            Topology::Express { stride: 2 },
            BwClass::Base,
        ));
        specs.push(CommSpec::uniform(
            Topology::Express { stride: 3 },
            BwClass::Base,
        ));
        specs.push(CommSpec::uniform(Topology::Mesh, BwClass::Double));
        specs.push(CommSpec {
            topology: Topology::Torus,
            link_bw: LinkBw::BASE,
            select_policy: SelectPolicy::Fixed,
        });
        let mut labels: Vec<String> = specs.iter().map(CommSpec::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), specs.len(), "labels collide: {labels:?}");
    }

    #[test]
    fn order_rank_keeps_the_historical_preset_schedule() {
        assert_eq!(CommSpec::ALIGNED.order_rank(), 0);
        assert_eq!(CommSpec::LEAN.order_rank(), 1);
        assert_eq!(CommSpec::RICH.order_rank(), 2);
        // Structured specs follow the presets and order deterministically.
        let torus = CommSpec::uniform(Topology::Torus, BwClass::Base);
        let express = CommSpec::uniform(Topology::Express { stride: 2 }, BwClass::Base);
        assert!(torus.order_rank() > CommSpec::RICH.order_rank());
        assert!(express.order_rank() > torus.order_rank());
        let mut ranks: Vec<u32> = [
            CommSpec::ALIGNED,
            CommSpec::LEAN,
            CommSpec::RICH,
            torus,
            express,
            CommSpec::uniform(Topology::Torus, BwClass::Double),
            CommSpec {
                topology: Topology::Torus,
                link_bw: LinkBw::BASE,
                select_policy: SelectPolicy::Fixed,
            },
        ]
        .iter()
        .map(|s| s.order_rank())
        .collect();
        let len = ranks.len();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), len, "order ranks collide");
    }

    #[test]
    fn distance_is_a_bandwidth_proximity_metric() {
        // On the presets, one step = 2 units — the scalar-era metric:
        // aligned is *nearer* to rich than lean is (the scheduling order
        // aligned < lean < rich must not leak into proximity).
        assert_eq!(CommSpec::ALIGNED.distance(CommSpec::ALIGNED), 0);
        assert_eq!(CommSpec::LEAN.distance(CommSpec::ALIGNED), 2);
        assert_eq!(CommSpec::ALIGNED.distance(CommSpec::RICH), 2);
        assert_eq!(CommSpec::LEAN.distance(CommSpec::RICH), 4);
        assert!(
            CommSpec::ALIGNED.distance(CommSpec::RICH) < CommSpec::LEAN.distance(CommSpec::RICH)
        );
        // Symmetric.
        assert_eq!(
            CommSpec::LEAN.distance(CommSpec::RICH),
            CommSpec::RICH.distance(CommSpec::LEAN)
        );
        // A topology mismatch dominates any bandwidth difference.
        let torus = CommSpec::uniform(Topology::Torus, BwClass::Base);
        assert!(CommSpec::ALIGNED.distance(torus) > CommSpec::LEAN.distance(CommSpec::RICH));
        // Same-topology bandwidth siblings stay near across topologies.
        let torus_half = CommSpec::uniform(Topology::Torus, BwClass::Half);
        assert_eq!(torus.distance(torus_half), 2);
        // Per-group comparison: an asymmetric half/boost allocation is NOT
        // distance 0 from the uniform base one (their rank *sums* tie).
        let skewed = CommSpec {
            topology: Topology::Mesh,
            link_bw: LinkBw {
                local: BwClass::Half,
                global: BwClass::Boost,
            },
            select_policy: SelectPolicy::Proportional,
        };
        assert_eq!(CommSpec::ALIGNED.distance(skewed), 2);
        let mirrored = CommSpec {
            link_bw: LinkBw {
                local: BwClass::Boost,
                global: BwClass::Half,
            },
            ..skewed
        };
        assert_eq!(skewed.distance(mirrored), 4);
    }

    #[test]
    fn bandwidth_scaling_is_monotone_in_class_rank() {
        for window in BwClass::ALL.windows(2) {
            let (lo, hi) = (window[0], window[1]);
            assert!(lo.rank() < hi.rank());
            for value in [1u32, 2, 5, 7, 23, 44] {
                assert!(lo.scale_capacity(value) <= hi.scale_capacity(value));
                assert!(lo.scale_bits(value) <= hi.scale_bits(value));
            }
        }
        // Never scales to zero.
        assert_eq!(BwClass::Half.scale_capacity(1), 1);
    }

    #[test]
    fn split_allocations_price_each_group() {
        let asymmetric = CommSpec {
            topology: Topology::Mesh,
            link_bw: LinkBw {
                local: BwClass::Half,
                global: BwClass::Double,
            },
            select_policy: SelectPolicy::Proportional,
        };
        let bits = asymmetric.select_bits(44);
        // Between the uniform extremes.
        assert!(bits > CommSpec::LEAN.select_bits(44));
        assert!(bits < CommSpec::uniform(Topology::Mesh, BwClass::Double).select_bits(44));
        // Fixed policy pins the budget regardless of bandwidth.
        let fixed = CommSpec {
            select_policy: SelectPolicy::Fixed,
            ..asymmetric
        };
        assert_eq!(fixed.select_bits(44), 44);
        // Express ports cost extra selects.
        let express = CommSpec::uniform(Topology::Express { stride: 2 }, BwClass::Base);
        assert_eq!(express.select_bits(44), 44 + 4);
    }

    #[test]
    fn structural_family_erases_bandwidth_but_keeps_topology() {
        for level in CommLevel::ALL {
            assert_eq!(level.spec().structural_family(), CommSpec::ALIGNED);
        }
        let torus_lean = CommSpec::uniform(Topology::Torus, BwClass::Half);
        let torus_rich = CommSpec::uniform(Topology::Torus, BwClass::Boost);
        assert_eq!(
            torus_lean.structural_family(),
            torus_rich.structural_family()
        );
        assert_ne!(
            torus_lean.structural_family(),
            CommSpec::ALIGNED,
            "topology must survive family erasure"
        );
    }

    #[test]
    fn parsing_accepts_cli_spellings() {
        assert_eq!(Topology::parse("mesh").unwrap(), Topology::Mesh);
        assert_eq!(Topology::parse("torus").unwrap(), Topology::Torus);
        assert_eq!(
            Topology::parse("express").unwrap(),
            Topology::Express { stride: 2 }
        );
        assert_eq!(
            Topology::parse("express:4").unwrap(),
            Topology::Express { stride: 4 }
        );
        assert_eq!(
            Topology::parse("xp3").unwrap(),
            Topology::Express { stride: 3 }
        );
        assert!(Topology::parse("xp1").is_err());
        assert!(Topology::parse("ring").is_err());
        assert_eq!(BwClass::parse("boost").unwrap(), BwClass::Boost);
        assert_eq!(BwClass::parse("h").unwrap(), BwClass::Half);
        assert!(BwClass::parse("mega").is_err());
        assert!(!Topology::Express { stride: 1 }.is_valid());
        assert!(Topology::Express { stride: 2 }.is_valid());
    }
}
