//! Programmatic enumeration of the compute × communication provisioning
//! space.
//!
//! The paper's thesis is that CGRA efficiency comes from *aligning* compute
//! provisioning (how many functional units, how deep the spatio-temporal
//! configuration memory) with communication provisioning (how rich the
//! routing fabric is). This module turns that question into an enumerable
//! grid: a [`SpaceSpec`] names the axes, [`SpaceSpec::enumerate`] yields
//! concrete [`DesignPoint`]s, and [`DesignPoint::build`] materializes each
//! point as an [`Architecture`] the mappers and cost model can evaluate.
//!
//! Three axes are exposed:
//!
//! * **execution class** — spatio-temporal, spatial or Plaid
//!   ([`ArchClass`]);
//! * **compute** — array dimensions (PE/PCU counts) and configuration-memory
//!   depth (`config_entries`, the spatio-temporal axis that bounds the
//!   maximum initiation interval);
//! * **communication** — a [`CommLevel`] that scales both the structural
//!   richness of the network (switch capacities) and its configuration cost
//!   (router select bits in the [`ConfigBudget`]), so leaner networks are
//!   cheaper but harder to route through.

use serde::{Deserialize, Serialize};

use crate::architecture::{rebuild_provisioned, ArchClass, Architecture};
use crate::params::ArchParams;
use crate::{plaid, spatial, spatio_temporal};

/// Communication provisioning level of a design point.
///
/// `Aligned` is the as-published network; `Lean` halves switch capacities and
/// router select bits (an under-provisioned network that saves power but
/// congests); `Rich` adds ~50% on both (an over-provisioned network that
/// routes easily but pays for selects it rarely uses — the Figure 2
/// pathology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CommLevel {
    /// Under-provisioned: half the switch capacity and router bits.
    Lean,
    /// The as-published provisioning for the class.
    Aligned,
    /// Over-provisioned: ~1.5× switch capacity and router bits.
    Rich,
}

impl CommLevel {
    /// All levels, in lean-to-rich order.
    pub const ALL: [CommLevel; 3] = [CommLevel::Lean, CommLevel::Aligned, CommLevel::Rich];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            CommLevel::Lean => "lean",
            CommLevel::Aligned => "aligned",
            CommLevel::Rich => "rich",
        }
    }

    /// Scales a switch capacity for this provisioning level.
    pub fn scale_capacity(self, capacity: u32) -> u32 {
        match self {
            CommLevel::Lean => (capacity / 2).max(1),
            CommLevel::Aligned => capacity,
            CommLevel::Rich => capacity + capacity.div_ceil(2),
        }
    }

    /// Scales a communication bit budget for this provisioning level.
    pub fn scale_bits(self, bits: u32) -> u32 {
        match self {
            CommLevel::Lean => (bits / 2).max(1),
            CommLevel::Aligned => bits,
            CommLevel::Rich => bits + bits.div_ceil(2),
        }
    }
}

/// One concrete point on the provisioning grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Execution-paradigm class.
    pub class: ArchClass,
    /// Tile rows (PEs for the baselines, PCUs for Plaid).
    pub rows: u32,
    /// Tile columns.
    pub cols: u32,
    /// Configuration-memory depth (bounds the maximum initiation interval).
    pub config_entries: u32,
    /// Communication provisioning level.
    pub comm: CommLevel,
}

impl DesignPoint {
    /// Canonical label, e.g. `plaid-2x2/d16/aligned`. Stable across runs —
    /// the explore cache keys include it.
    pub fn label(&self) -> String {
        format!(
            "{}-{}x{}/d{}/{}",
            self.class.label(),
            self.rows,
            self.cols,
            self.config_entries,
            self.comm.label()
        )
    }

    /// Structural parameters of this point: the class defaults re-sized by
    /// the configuration depth and communication level.
    pub fn params(&self) -> ArchParams {
        let mut p = match self.class {
            ArchClass::SpatioTemporal | ArchClass::Spatial => {
                ArchParams::baseline(self.rows, self.cols)
            }
            ArchClass::Plaid => ArchParams::plaid(self.rows, self.cols),
        };
        p.config_entries = self.config_entries;
        p.config.communication_bits = self.comm.scale_bits(p.config.communication_bits);
        p
    }

    /// Number of functional units this point provisions (the compute axis).
    pub fn compute_units(&self) -> u32 {
        let per_tile = match self.class {
            ArchClass::SpatioTemporal | ArchClass::Spatial => 1,
            // Three ALUs plus the ALSU.
            ArchClass::Plaid => plaid::ALUS_PER_PCU as u32 + 1,
        };
        self.rows * self.cols * per_tile
    }

    /// Materializes the point as a mapper-ready [`Architecture`].
    ///
    /// # Panics
    ///
    /// Panics if `rows`, `cols` or `config_entries` is zero (invalid points
    /// should be filtered before building; [`SpaceSpec::enumerate`] never
    /// yields them).
    pub fn build(&self) -> Architecture {
        assert!(self.config_entries > 0, "config_entries must be non-zero");
        let base = match self.class {
            ArchClass::SpatioTemporal => spatio_temporal::build(self.rows, self.cols),
            ArchClass::Spatial => spatial::build(self.rows, self.cols),
            ArchClass::Plaid => plaid::build(self.rows, self.cols),
        };
        rebuild_provisioned(&base, self.label(), self.params(), |c| {
            self.comm.scale_capacity(c)
        })
    }
}

/// A declarative description of a provisioning subspace: the cross product of
/// the listed classes, dimensions, configuration depths and communication
/// levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSpec {
    /// Execution classes to enumerate.
    pub classes: Vec<ArchClass>,
    /// Array dimensions `(rows, cols)` to enumerate for every class.
    pub dims: Vec<(u32, u32)>,
    /// Configuration-memory depths to enumerate.
    pub config_entries: Vec<u32>,
    /// Communication levels to enumerate.
    pub comm_levels: Vec<CommLevel>,
}

impl SpaceSpec {
    /// The default exploration grid: all three classes, arrays from 2×2 up to
    /// 4×4, the paper's 16-entry configuration memory plus a shallower
    /// 8-entry variant, and all three communication levels.
    pub fn default_grid() -> Self {
        SpaceSpec {
            classes: vec![
                ArchClass::SpatioTemporal,
                ArchClass::Spatial,
                ArchClass::Plaid,
            ],
            dims: vec![(2, 2), (3, 3), (4, 4)],
            config_entries: vec![8, 16],
            comm_levels: CommLevel::ALL.to_vec(),
        }
    }

    /// A minimal grid used by smoke tests and benches: one dimension per
    /// class at the published depth, all communication levels.
    pub fn smoke_grid() -> Self {
        SpaceSpec {
            classes: vec![ArchClass::SpatioTemporal, ArchClass::Plaid],
            dims: vec![(2, 2)],
            config_entries: vec![16],
            comm_levels: CommLevel::ALL.to_vec(),
        }
    }

    /// Number of points the spec will enumerate (before validity filtering).
    pub fn cardinality(&self) -> usize {
        self.classes.len() * self.dims.len() * self.config_entries.len() * self.comm_levels.len()
    }

    /// Enumerates the grid in a deterministic order (classes, then
    /// dimensions, then depth, then communication level), skipping invalid
    /// points (zero-sized arrays or zero-depth configuration memories).
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        let mut points = Vec::with_capacity(self.cardinality());
        for &class in &self.classes {
            for &(rows, cols) in &self.dims {
                if rows == 0 || cols == 0 {
                    continue;
                }
                for &config_entries in &self.config_entries {
                    if config_entries == 0 {
                        continue;
                    }
                    for &comm in &self.comm_levels {
                        points.push(DesignPoint {
                            class,
                            rows,
                            cols,
                            config_entries,
                            comm,
                        });
                    }
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_enumerates_the_full_cross_product() {
        let spec = SpaceSpec::default_grid();
        let points = spec.enumerate();
        assert_eq!(points.len(), spec.cardinality());
        assert_eq!(points.len(), 3 * 3 * 2 * 3);
        // Deterministic: a second enumeration is identical.
        assert_eq!(points, spec.enumerate());
        // All labels unique.
        let mut labels: Vec<String> = points.iter().map(DesignPoint::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), points.len());
    }

    #[test]
    fn invalid_points_are_skipped() {
        let spec = SpaceSpec {
            classes: vec![ArchClass::Plaid],
            dims: vec![(0, 2), (2, 2)],
            config_entries: vec![0, 16],
            comm_levels: vec![CommLevel::Aligned],
        };
        let points = spec.enumerate();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].rows, 2);
        assert_eq!(points[0].config_entries, 16);
    }

    #[test]
    fn built_architecture_reflects_the_point() {
        let point = DesignPoint {
            class: ArchClass::SpatioTemporal,
            rows: 3,
            cols: 3,
            config_entries: 8,
            comm: CommLevel::Aligned,
        };
        let arch = point.build();
        assert_eq!(arch.functional_units().count(), 9);
        assert_eq!(arch.params().config_entries, 8);
        assert_eq!(arch.params().max_ii(), 8);
        assert_eq!(arch.name(), "spatio-temporal-3x3/d8/aligned");
    }

    #[test]
    fn comm_levels_scale_capacity_and_bits_monotonically() {
        let base = DesignPoint {
            class: ArchClass::Plaid,
            rows: 2,
            cols: 2,
            config_entries: 16,
            comm: CommLevel::Aligned,
        };
        let lean = DesignPoint {
            comm: CommLevel::Lean,
            ..base
        };
        let rich = DesignPoint {
            comm: CommLevel::Rich,
            ..base
        };
        let bits = |p: &DesignPoint| p.params().config.communication_bits;
        assert!(bits(&lean) < bits(&base));
        assert!(bits(&base) < bits(&rich));
        // Structural capacities scale the same way.
        let total_capacity = |p: &DesignPoint| -> u32 {
            p.build()
                .resources()
                .iter()
                .map(|r| match r.kind {
                    crate::resource::ResourceKind::Switch { capacity } => capacity,
                    _ => 0,
                })
                .sum()
        };
        assert!(total_capacity(&lean) < total_capacity(&base));
        assert!(total_capacity(&base) < total_capacity(&rich));
        // Compute provisioning is independent of the communication level.
        assert_eq!(lean.compute_units(), rich.compute_units());
        assert_eq!(base.compute_units(), 16);
    }

    #[test]
    fn lean_capacity_never_reaches_zero() {
        assert_eq!(CommLevel::Lean.scale_capacity(1), 1);
        assert_eq!(CommLevel::Rich.scale_capacity(5), 8);
        assert_eq!(CommLevel::Aligned.scale_capacity(7), 7);
    }

    #[test]
    fn design_points_serialize_round_trip() {
        let point = DesignPoint {
            class: ArchClass::Plaid,
            rows: 2,
            cols: 3,
            config_entries: 8,
            comm: CommLevel::Rich,
        };
        let json = serde_json::to_string(&point).unwrap();
        let back: DesignPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, point);
    }
}
