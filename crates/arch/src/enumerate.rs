//! Programmatic enumeration of the compute × communication provisioning
//! space.
//!
//! The paper's thesis is that CGRA efficiency comes from *aligning* compute
//! provisioning (how many functional units, how deep the spatio-temporal
//! configuration memory) with communication provisioning (how rich the
//! routing fabric is). This module turns that question into an enumerable
//! grid: a [`SpaceSpec`] names the axes, [`SpaceSpec::enumerate`] yields
//! concrete [`DesignPoint`]s, and [`DesignPoint::build`] materializes each
//! point as an [`Architecture`] the mappers and cost model can evaluate.
//!
//! Three axes are exposed:
//!
//! * **execution class** — spatio-temporal, spatial or Plaid
//!   ([`ArchClass`]);
//! * **compute** — array dimensions (PE/PCU counts) and configuration-memory
//!   depth (`config_entries`, the spatio-temporal axis that bounds the
//!   maximum initiation interval);
//! * **communication** — a structured [`CommSpec`]: NoC topology (mesh,
//!   torus wraparound, express links), a bandwidth class per link-direction
//!   group (scaling switch capacities), and the select-bit policy that
//!   drives the communication share of the [`crate::ConfigBudget`]. The
//!   legacy scalar [`crate::comm::CommLevel`] presets lower onto this axis
//!   bit-exactly
//!   (see [`crate::comm`]).

use serde::{Deserialize, Serialize};

use crate::architecture::{rebuild_with_comm, ArchClass, Architecture};
use crate::comm::CommSpec;
use crate::params::ArchParams;
use crate::{plaid, spatial, spatio_temporal};

/// One concrete point on the provisioning grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Execution-paradigm class.
    pub class: ArchClass,
    /// Tile rows (PEs for the baselines, PCUs for Plaid).
    pub rows: u32,
    /// Tile columns.
    pub cols: u32,
    /// Configuration-memory depth (bounds the maximum initiation interval).
    pub config_entries: u32,
    /// Communication provisioning (topology + per-link-group bandwidth).
    pub comm: CommSpec,
}

impl DesignPoint {
    /// Canonical label, e.g. `plaid-2x2/d16/aligned` or
    /// `plaid-2x2/d16/torus-hb`. Stable across runs — the explore cache keys
    /// include it, and legacy preset specs keep their scalar-era labels.
    pub fn label(&self) -> String {
        format!(
            "{}-{}x{}/d{}/{}",
            self.class.label(),
            self.rows,
            self.cols,
            self.config_entries,
            self.comm.label()
        )
    }

    /// Structural parameters of this point: the class defaults re-sized by
    /// the configuration depth and communication spec.
    pub fn params(&self) -> ArchParams {
        let mut p = match self.class {
            ArchClass::SpatioTemporal | ArchClass::Spatial => {
                ArchParams::baseline(self.rows, self.cols)
            }
            ArchClass::Plaid => ArchParams::plaid(self.rows, self.cols),
        };
        p.config_entries = self.config_entries;
        p.config.communication_bits = self.comm.select_bits(p.config.communication_bits);
        p
    }

    /// Number of functional units this point provisions (the compute axis).
    pub fn compute_units(&self) -> u32 {
        let per_tile = match self.class {
            ArchClass::SpatioTemporal | ArchClass::Spatial => 1,
            // Three ALUs plus the ALSU.
            ArchClass::Plaid => plaid::ALUS_PER_PCU as u32 + 1,
        };
        self.rows * self.cols * per_tile
    }

    /// Whether the point is structurally meaningful: non-zero array and
    /// configuration depth, a valid comm spec, and — for express
    /// topologies — a stride that actually fits the array. An express link
    /// spanning past both dimensions would build a plain mesh while still
    /// paying the express select-bit overhead, so such degenerate points
    /// are rejected rather than mispriced. (A torus on a 2-wide array also
    /// degenerates to the mesh, but at *zero* extra cost — its wraparound
    /// deduplicates and it carries no bit overhead — so it stays valid.)
    pub fn is_valid(&self) -> bool {
        if self.rows == 0 || self.cols == 0 || self.config_entries == 0 || !self.comm.is_valid() {
            return false;
        }
        match self.comm.topology {
            crate::comm::Topology::Express { stride } => stride < self.rows.max(self.cols),
            _ => true,
        }
    }

    /// Materializes the point as a mapper-ready [`Architecture`].
    ///
    /// # Panics
    ///
    /// Panics if the point is invalid ([`DesignPoint::is_valid`]); invalid
    /// points should be filtered before building — [`SpaceSpec::enumerate`]
    /// never yields them.
    pub fn build(&self) -> Architecture {
        assert!(self.is_valid(), "invalid design point {self:?}");
        let base = match self.class {
            ArchClass::SpatioTemporal => spatio_temporal::build(self.rows, self.cols),
            ArchClass::Spatial => spatial::build(self.rows, self.cols),
            ArchClass::Plaid => plaid::build(self.rows, self.cols),
        };
        rebuild_with_comm(&base, self.label(), self.params(), &self.comm)
    }
}

/// A declarative description of a provisioning subspace: the cross product of
/// the listed classes, dimensions, configuration depths and communication
/// specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSpec {
    /// Execution classes to enumerate.
    pub classes: Vec<ArchClass>,
    /// Array dimensions `(rows, cols)` to enumerate for every class.
    pub dims: Vec<(u32, u32)>,
    /// Configuration-memory depths to enumerate.
    pub config_entries: Vec<u32>,
    /// Communication specs to enumerate.
    pub comm_specs: Vec<CommSpec>,
}

impl SpaceSpec {
    /// The default exploration grid: all three classes, arrays from 2×2 up to
    /// 4×4, the paper's 16-entry configuration memory plus a shallower
    /// 8-entry variant, and the three legacy communication presets.
    pub fn default_grid() -> Self {
        SpaceSpec {
            classes: vec![
                ArchClass::SpatioTemporal,
                ArchClass::Spatial,
                ArchClass::Plaid,
            ],
            dims: vec![(2, 2), (3, 3), (4, 4)],
            config_entries: vec![8, 16],
            comm_specs: CommSpec::presets(),
        }
    }

    /// A minimal grid used by smoke tests and benches: one dimension per
    /// class at the published depth, the three legacy presets.
    pub fn smoke_grid() -> Self {
        SpaceSpec {
            classes: vec![ArchClass::SpatioTemporal, ArchClass::Plaid],
            dims: vec![(2, 2)],
            config_entries: vec![16],
            comm_specs: CommSpec::presets(),
        }
    }

    /// Replaces the communication axis with the cross product of the given
    /// topologies and uniform bandwidth classes (proportional select bits),
    /// in topology-major order.
    pub fn with_comm_grid(
        mut self,
        topologies: &[crate::comm::Topology],
        bw_classes: &[crate::comm::BwClass],
    ) -> Self {
        self.comm_specs = topologies
            .iter()
            .flat_map(|&t| bw_classes.iter().map(move |&b| CommSpec::uniform(t, b)))
            .collect();
        self
    }

    /// Number of points the spec will enumerate (before validity filtering).
    pub fn cardinality(&self) -> usize {
        self.classes.len() * self.dims.len() * self.config_entries.len() * self.comm_specs.len()
    }

    /// Enumerates the grid in a deterministic order, skipping invalid points
    /// (zero-sized arrays, zero-depth configuration memories, degenerate
    /// express strides — see [`DesignPoint::is_valid`]).
    ///
    /// **Stable-ordering contract.** The enumeration order — classes, then
    /// dimensions, then depth, then communication spec, each in the order
    /// listed in the spec — is part of this method's stable API: sweep
    /// records come back in plan order, pinned frontier fixtures assume it,
    /// and sharded sweeps rely on every host enumerating the same grid
    /// identically so that per-shard sub-plans line up across machines.
    /// (Shard *membership* itself is stronger still — it is keyed by
    /// content hashes, so it survives even a reordering — but the merged
    /// record order is plan order, i.e. this order.) Changing it is a
    /// breaking change that invalidates pinned sweep outputs.
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        let mut points = Vec::with_capacity(self.cardinality());
        for &class in &self.classes {
            for &(rows, cols) in &self.dims {
                for &config_entries in &self.config_entries {
                    for &comm in &self.comm_specs {
                        let point = DesignPoint {
                            class,
                            rows,
                            cols,
                            config_entries,
                            comm,
                        };
                        if point.is_valid() {
                            points.push(point);
                        }
                    }
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{BwClass, CommLevel, LinkBw, SelectPolicy, Topology};

    #[test]
    fn default_grid_enumerates_the_full_cross_product() {
        let spec = SpaceSpec::default_grid();
        let points = spec.enumerate();
        assert_eq!(points.len(), spec.cardinality());
        assert_eq!(points.len(), 3 * 3 * 2 * 3);
        // Deterministic: a second enumeration is identical.
        assert_eq!(points, spec.enumerate());
        // All labels unique.
        let mut labels: Vec<String> = points.iter().map(DesignPoint::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), points.len());
    }

    #[test]
    fn enumeration_order_is_pinned() {
        // The stable-ordering contract of `SpaceSpec::enumerate`: axes nest
        // classes > dims > depth > comm, each in spec-listed order. Sharded
        // sweeps and pinned frontier fixtures both assume this exact
        // sequence, so a change here must be deliberate and coordinated.
        let spec = SpaceSpec {
            classes: vec![ArchClass::Plaid, ArchClass::Spatial],
            dims: vec![(3, 3), (2, 2)],
            config_entries: vec![16, 8],
            comm_specs: vec![CommSpec::RICH, CommSpec::ALIGNED],
        };
        let labels: Vec<String> = spec.enumerate().iter().map(DesignPoint::label).collect();
        assert_eq!(
            labels,
            vec![
                "plaid-3x3/d16/rich",
                "plaid-3x3/d16/aligned",
                "plaid-3x3/d8/rich",
                "plaid-3x3/d8/aligned",
                "plaid-2x2/d16/rich",
                "plaid-2x2/d16/aligned",
                "plaid-2x2/d8/rich",
                "plaid-2x2/d8/aligned",
                "spatial-3x3/d16/rich",
                "spatial-3x3/d16/aligned",
                "spatial-3x3/d8/rich",
                "spatial-3x3/d8/aligned",
                "spatial-2x2/d16/rich",
                "spatial-2x2/d16/aligned",
                "spatial-2x2/d8/rich",
                "spatial-2x2/d8/aligned",
            ]
        );
        // The default grid's endpoints are pinned too: the 216-point sweep
        // artifacts (frontier JSON, shard caches) are diffed byte-for-byte
        // in CI, so its first and last points are load-bearing.
        let default_points = SpaceSpec::default_grid().enumerate();
        assert_eq!(default_points.len(), 54);
        assert_eq!(
            default_points.first().unwrap().label(),
            "spatio-temporal-2x2/d8/lean"
        );
        assert_eq!(default_points.last().unwrap().label(), "plaid-4x4/d16/rich");
    }

    #[test]
    fn invalid_points_are_skipped() {
        let spec = SpaceSpec {
            classes: vec![ArchClass::Plaid],
            dims: vec![(0, 2), (2, 2)],
            config_entries: vec![0, 16],
            comm_specs: vec![
                CommSpec::ALIGNED,
                CommSpec::uniform(Topology::Express { stride: 1 }, BwClass::Base),
                // Degenerate: a stride-2 express on a 2x2 array builds zero
                // express links but would still pay the select-bit overhead.
                CommSpec::uniform(Topology::Express { stride: 2 }, BwClass::Base),
            ],
        };
        let points = spec.enumerate();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].rows, 2);
        assert_eq!(points[0].config_entries, 16);
        assert_eq!(points[0].comm, CommSpec::ALIGNED);
        // The same stride fits a wider array.
        let wide = DesignPoint {
            class: ArchClass::Plaid,
            rows: 2,
            cols: 4,
            config_entries: 16,
            comm: CommSpec::uniform(Topology::Express { stride: 2 }, BwClass::Base),
        };
        assert!(wide.is_valid());
    }

    #[test]
    fn built_architecture_reflects_the_point() {
        let point = DesignPoint {
            class: ArchClass::SpatioTemporal,
            rows: 3,
            cols: 3,
            config_entries: 8,
            comm: CommSpec::ALIGNED,
        };
        let arch = point.build();
        assert_eq!(arch.functional_units().count(), 9);
        assert_eq!(arch.params().config_entries, 8);
        assert_eq!(arch.params().max_ii(), 8);
        assert_eq!(arch.name(), "spatio-temporal-3x3/d8/aligned");
    }

    #[test]
    fn comm_presets_scale_capacity_and_bits_monotonically() {
        let base = DesignPoint {
            class: ArchClass::Plaid,
            rows: 2,
            cols: 2,
            config_entries: 16,
            comm: CommSpec::ALIGNED,
        };
        let lean = DesignPoint {
            comm: CommSpec::LEAN,
            ..base
        };
        let rich = DesignPoint {
            comm: CommSpec::RICH,
            ..base
        };
        let bits = |p: &DesignPoint| p.params().config.communication_bits;
        assert!(bits(&lean) < bits(&base));
        assert!(bits(&base) < bits(&rich));
        // Structural capacities scale the same way.
        let total_capacity = |p: &DesignPoint| -> u32 {
            p.build()
                .resources()
                .iter()
                .map(|r| match r.kind {
                    crate::resource::ResourceKind::Switch { capacity } => capacity,
                    _ => 0,
                })
                .sum()
        };
        assert!(total_capacity(&lean) < total_capacity(&base));
        assert!(total_capacity(&base) < total_capacity(&rich));
        // Compute provisioning is independent of the communication spec.
        assert_eq!(lean.compute_units(), rich.compute_units());
        assert_eq!(base.compute_units(), 16);
    }

    #[test]
    fn preset_lowering_reproduces_the_scalar_fabrics() {
        // The legacy scalar levels and their lowered specs must build
        // structurally identical fabrics: same resources, same capacities,
        // same links, same parameters.
        for level in CommLevel::ALL {
            for (class, rows, cols) in [(ArchClass::SpatioTemporal, 3, 3), (ArchClass::Plaid, 2, 2)]
            {
                let point = DesignPoint {
                    class,
                    rows,
                    cols,
                    config_entries: 16,
                    comm: level.spec(),
                };
                let built = point.build();
                // Reference: the pre-refactor path — uniform capacity scale,
                // uniform bit scale, no extra links.
                let base = match class {
                    ArchClass::SpatioTemporal => spatio_temporal::build(rows, cols),
                    ArchClass::Spatial => spatial::build(rows, cols),
                    ArchClass::Plaid => plaid::build(rows, cols),
                };
                let mut params = base.params().clone();
                params.config_entries = 16;
                params.config.communication_bits =
                    level.scale_bits(params.config.communication_bits);
                let reference =
                    crate::architecture::rebuild_provisioned(&base, point.label(), params, |c| {
                        level.scale_capacity(c)
                    });
                assert_eq!(built, reference, "{level:?}/{class:?} lowering diverged");
            }
        }
    }

    #[test]
    fn torus_and_express_points_add_wraparound_links() {
        let mesh = DesignPoint {
            class: ArchClass::SpatioTemporal,
            rows: 4,
            cols: 4,
            config_entries: 16,
            comm: CommSpec::ALIGNED,
        };
        let torus = DesignPoint {
            comm: CommSpec::uniform(Topology::Torus, BwClass::Base),
            ..mesh
        };
        let express = DesignPoint {
            comm: CommSpec::uniform(Topology::Express { stride: 2 }, BwClass::Base),
            ..mesh
        };
        let mesh_arch = mesh.build();
        let torus_arch = torus.build();
        let express_arch = express.build();
        // Same resources, more links.
        assert_eq!(mesh_arch.resources().len(), torus_arch.resources().len());
        // Torus: 4 rows + 4 cols of wraparound, bidirectional.
        assert_eq!(
            torus_arch.links().len(),
            mesh_arch.links().len() + 2 * (4 + 4)
        );
        // Express stride 2: two links per row and per column, bidirectional.
        assert_eq!(
            express_arch.links().len(),
            mesh_arch.links().len() + 2 * (2 * 4 + 2 * 4)
        );
        // Labels carry the topology.
        assert_eq!(torus.label(), "spatio-temporal-4x4/d16/torus");
        assert_eq!(express.label(), "spatio-temporal-4x4/d16/xp2");
        // A torus on a 2-wide array degenerates to the mesh (wraparound
        // duplicates the neighbour link and is deduplicated).
        let small_mesh = DesignPoint {
            rows: 2,
            cols: 2,
            ..mesh
        };
        let small_torus = DesignPoint {
            rows: 2,
            cols: 2,
            ..torus
        };
        assert_eq!(
            small_mesh.build().links().len(),
            small_torus.build().links().len()
        );
    }

    #[test]
    fn split_bandwidth_scales_groups_independently() {
        let point = |link_bw| DesignPoint {
            class: ArchClass::Plaid,
            rows: 2,
            cols: 2,
            config_entries: 16,
            comm: CommSpec {
                topology: Topology::Mesh,
                link_bw,
                select_policy: SelectPolicy::Proportional,
            },
        };
        let lean_local = point(LinkBw {
            local: BwClass::Half,
            global: BwClass::Base,
        })
        .build();
        // Global routers keep the published capacity; local routers halve.
        for cluster in lean_local.clusters() {
            assert_eq!(
                lean_local.resource(cluster.global_router).kind.capacity(),
                plaid::GLOBAL_ROUTER_CAPACITY
            );
            let local = cluster.local_router.unwrap();
            assert_eq!(
                lean_local.resource(local).kind.capacity(),
                plaid::LOCAL_ROUTER_CAPACITY / 2
            );
        }
    }

    #[test]
    fn design_points_serialize_round_trip() {
        let mut points = SpaceSpec::default_grid().enumerate();
        points.push(DesignPoint {
            class: ArchClass::Plaid,
            rows: 2,
            cols: 3,
            config_entries: 8,
            comm: CommSpec {
                topology: Topology::Express { stride: 2 },
                link_bw: LinkBw {
                    local: BwClass::Base,
                    global: BwClass::Double,
                },
                select_policy: SelectPolicy::Fixed,
            },
        });
        for point in points {
            let json = serde_json::to_string(&point).unwrap();
            let back: DesignPoint = serde_json::from_str(&json).unwrap();
            assert_eq!(back, point);
        }
    }
}
