//! The baseline high-performance spatio-temporal CGRA (Figure 3).
//!
//! A `rows × cols` mesh of processing elements. Each PE couples a 16-bit ALU
//! with a crossbar router and a register file, reconfigured every cycle from
//! a 16-entry configuration memory. PEs in the first column have a port into
//! the scratch-pad memory and can execute loads and stores.

use crate::architecture::{ArchBuilder, ArchClass, Architecture, Cluster, Position};
use crate::params::ArchParams;
use crate::resource::FuCaps;

/// Capacity (simultaneous distinct values per cycle) of a PE crossbar router:
/// four mesh directions plus the ALU port.
pub const PE_ROUTER_CAPACITY: u32 = 5;

/// Builds a `rows × cols` spatio-temporal CGRA.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn build(rows: u32, cols: u32) -> Architecture {
    build_named(
        format!("spatio-temporal-{rows}x{cols}"),
        rows,
        cols,
        ArchClass::SpatioTemporal,
    )
}

pub(crate) fn build_named(name: String, rows: u32, cols: u32, class: ArchClass) -> Architecture {
    assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
    let params = ArchParams::baseline(rows, cols);
    let mut b = ArchBuilder::new(name, class, params);

    let mut fus = Vec::new();
    let mut routers = Vec::new();
    for y in 0..rows {
        for x in 0..cols {
            let tile = b.add_tile(Position { x, y });
            let caps = if x == 0 { FuCaps::ALSU } else { FuCaps::ALU };
            let fu = b.add_func_unit(tile, format!("pe{tile}.fu"), caps);
            let router = b.add_switch(tile, format!("pe{tile}.router"), PE_ROUTER_CAPACITY);
            // ALU <-> crossbar, combinational; crossbar self-loop models the
            // register file holding a value across cycles.
            b.bidirectional(fu, router, 0);
            b.link(router, router, 1);
            b.add_cluster(Cluster {
                tile,
                alus: vec![fu],
                alsu: None,
                local_router: None,
                global_router: router,
                hardwired: None,
            });
            fus.push(fu);
            routers.push(router);
        }
    }
    // Mesh links between neighbouring routers (registered, one cycle).
    let idx = |x: u32, y: u32| (y * cols + x) as usize;
    for y in 0..rows {
        for x in 0..cols {
            if x + 1 < cols {
                b.bidirectional(routers[idx(x, y)], routers[idx(x + 1, y)], 1);
            }
            if y + 1 < rows {
                b.bidirectional(routers[idx(x, y)], routers[idx(x, y + 1)], 1);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_by_four_has_sixteen_fus() {
        let arch = build(4, 4);
        assert_eq!(arch.functional_units().count(), 16);
        assert_eq!(arch.compute_unit_count(), 16);
        // One column of memory-capable PEs.
        assert_eq!(arch.memory_unit_count(), 4);
        assert_eq!(arch.clusters().len(), 16);
        assert_eq!(arch.class(), ArchClass::SpatioTemporal);
    }

    #[test]
    fn mesh_links_connect_neighbours_only() {
        let arch = build(4, 4);
        // Each router has a self-loop plus 2-4 mesh neighbours plus the FU.
        for cluster in arch.clusters() {
            let router = cluster.global_router;
            let degree = arch
                .out_links(router)
                .filter(|l| l.to != router && !arch.resource(l.to).kind.is_func_unit())
                .count();
            assert!((2..=4).contains(&degree), "router degree {degree}");
        }
    }

    #[test]
    fn corner_and_centre_distances() {
        let arch = build(4, 4);
        let fu_at = |x: u32, y: u32| arch.clusters()[(y * 4 + x) as usize].alus[0];
        assert_eq!(arch.resource_distance(fu_at(0, 0), fu_at(3, 3)), 6);
        assert_eq!(arch.resource_distance(fu_at(1, 1), fu_at(2, 1)), 1);
    }

    #[test]
    fn scaling_to_six_by_six() {
        let arch = build(6, 6);
        assert_eq!(arch.functional_units().count(), 36);
        assert_eq!(arch.memory_unit_count(), 6);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = build(0, 4);
    }
}
