//! The Plaid architecture: a mesh of Plaid Collective Units (Figure 9).
//!
//! Each PCU groups three 16-bit ALUs and one ALSU around a *local* router
//! that collectively routes the internal dependencies of a three-node motif.
//! Adjacent ALUs are additionally connected by registered bypass paths, which
//! relieve pressure on the local router. A *global* router per PCU forms the
//! hierarchical NoC: it connects to the local router, to the ALSU (which owns
//! the scratch-pad port on edge PCUs) and to the global routers of the four
//! mesh neighbours.

use crate::architecture::{ArchBuilder, ArchClass, Architecture, Cluster, Position};
use crate::params::{ArchParams, HardwiredPattern};
use crate::resource::FuCaps;

/// Capacity of the PCU local router (the paper's 8×8 crossbar).
pub const LOCAL_ROUTER_CAPACITY: u32 = 8;
/// Capacity of the PCU global router (the paper's 7×9 crossbar).
pub const GLOBAL_ROUTER_CAPACITY: u32 = 7;
/// Number of ALUs per PCU (the three-node motif compute unit).
pub const ALUS_PER_PCU: usize = 3;

/// Per-PCU specialization plan used by [`build_specialized`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecializationPlan {
    /// `hardwired[tile]` fixes the motif pattern of that PCU's compute unit,
    /// replacing its local router with hardwired connections (Section 4.4).
    pub hardwired: Vec<Option<HardwiredPattern>>,
}

/// Builds a `rows × cols` PCU array (the paper evaluates 2×2 and 3×3).
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn build(rows: u32, cols: u32) -> Architecture {
    build_with_plan(
        format!("plaid-{rows}x{cols}"),
        rows,
        cols,
        &SpecializationPlan::default(),
    )
}

/// Builds a domain-specialized Plaid instance according to `plan`.
///
/// # Panics
///
/// Panics if `rows`/`cols` is zero or the plan lists more tiles than exist.
pub fn build_specialized(rows: u32, cols: u32, plan: &SpecializationPlan) -> Architecture {
    build_with_plan(format!("plaid-ml-{rows}x{cols}"), rows, cols, plan)
}

fn build_with_plan(name: String, rows: u32, cols: u32, plan: &SpecializationPlan) -> Architecture {
    assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
    assert!(
        plan.hardwired.len() <= (rows * cols) as usize,
        "specialization plan lists more tiles than the array has"
    );
    let mut params = ArchParams::plaid(rows, cols);
    if plan.hardwired.iter().any(Option::is_some) {
        params.domain = Some(crate::params::Domain::MachineLearning);
    }
    let mut b = ArchBuilder::new(name, ArchClass::Plaid, params);

    let mut global_routers = Vec::new();
    for y in 0..rows {
        for x in 0..cols {
            let tile = b.add_tile(Position { x, y });
            let hardwired = plan.hardwired.get(tile).copied().flatten();
            let on_edge = x == 0 || y == 0 || x + 1 == cols || y + 1 == rows;

            let alus: Vec<_> = (0..ALUS_PER_PCU)
                .map(|i| b.add_func_unit(tile, format!("pcu{tile}.alu{i}"), FuCaps::ALU))
                .collect();
            let alsu_caps = if on_edge { FuCaps::ALSU } else { FuCaps::ALU };
            let alsu = b.add_func_unit(tile, format!("pcu{tile}.alsu"), alsu_caps);

            // A hardwired PCU replaces the local router by fixed connections;
            // we model this as a minimal-capacity switch (it can still carry
            // the motif's internal values, but nothing else).
            let local_capacity = if hardwired.is_some() {
                3
            } else {
                LOCAL_ROUTER_CAPACITY
            };
            let local = b.add_switch(tile, format!("pcu{tile}.local"), local_capacity);
            let global = b.add_switch(tile, format!("pcu{tile}.global"), GLOBAL_ROUTER_CAPACITY);

            for &alu in &alus {
                b.bidirectional(alu, local, 0);
            }
            // Registered bypass paths between adjacent ALUs (left to right).
            for pair in alus.windows(2) {
                let bypass = b.add_switch(tile, format!("pcu{tile}.bypass"), 1);
                b.link(pair[0], bypass, 0);
                b.link(bypass, pair[1], 1);
            }
            // Local <-> global datapath, with a one-cycle hold on each router
            // modelling the temporal buffering registers of Figure 9(c).
            b.bidirectional(local, global, 0);
            b.link(local, local, 1);
            b.link(global, global, 1);
            // The ALSU sits on the global datapath.
            b.bidirectional(alsu, global, 0);

            b.add_cluster(Cluster {
                tile,
                alus,
                alsu: Some(alsu),
                local_router: Some(local),
                global_router: global,
                hardwired,
            });
            global_routers.push(global);
        }
    }
    // Mesh links between neighbouring global routers.
    let idx = |x: u32, y: u32| (y * cols + x) as usize;
    for y in 0..rows {
        for x in 0..cols {
            if x + 1 < cols {
                b.bidirectional(global_routers[idx(x, y)], global_routers[idx(x + 1, y)], 1);
            }
            if y + 1 < rows {
                b.bidirectional(global_routers[idx(x, y)], global_routers[idx(x, y + 1)], 1);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    #[test]
    fn two_by_two_matches_four_by_four_fu_count() {
        let plaid = build(2, 2);
        assert_eq!(plaid.functional_units().count(), 16);
        assert_eq!(plaid.clusters().len(), 4);
        // All four PCUs sit on the array edge and own a scratch-pad port.
        assert_eq!(plaid.memory_unit_count(), 4);
        assert_eq!(plaid.class(), ArchClass::Plaid);
    }

    #[test]
    fn three_by_three_centre_pcu_has_no_memory_port() {
        let plaid = build(3, 3);
        assert_eq!(plaid.functional_units().count(), 36);
        // 8 edge PCUs have scratch-pad ports, the centre one does not.
        assert_eq!(plaid.memory_unit_count(), 8);
    }

    #[test]
    fn each_pcu_has_three_alus_one_alsu_and_two_routers() {
        let plaid = build(2, 2);
        for cluster in plaid.clusters() {
            assert_eq!(cluster.alus.len(), 3);
            assert!(cluster.alsu.is_some());
            assert!(cluster.local_router.is_some());
            let local = cluster.local_router.unwrap();
            assert_eq!(
                plaid.resource(local).kind,
                ResourceKind::Switch {
                    capacity: LOCAL_ROUTER_CAPACITY
                }
            );
            assert_eq!(
                plaid.resource(cluster.global_router).kind,
                ResourceKind::Switch {
                    capacity: GLOBAL_ROUTER_CAPACITY
                }
            );
        }
    }

    #[test]
    fn plaid_has_fewer_router_resources_than_the_baseline() {
        // The core claim: communication provisioning is trimmed. A 2x2 Plaid
        // has 8 routers (4 local + 4 global) versus 16 crossbars in the 4x4
        // baseline, for the same 16 functional units.
        let plaid = build(2, 2);
        let st = crate::spatio_temporal::build(4, 4);
        let plaid_routers = plaid
            .resources()
            .iter()
            .filter(|r| {
                !r.kind.is_func_unit() && (r.name.contains("local") || r.name.contains("global"))
            })
            .count();
        let st_routers = st
            .resources()
            .iter()
            .filter(|r| !r.kind.is_func_unit())
            .count();
        assert_eq!(plaid_routers, 8);
        assert_eq!(st_routers, 16);
    }

    #[test]
    fn bypass_paths_connect_adjacent_alus() {
        let plaid = build(2, 2);
        let cluster = &plaid.clusters()[0];
        // alu0 -> bypass -> alu1 and alu1 -> bypass -> alu2 exist.
        for pair in cluster.alus.windows(2) {
            let reaches = plaid.out_links(pair[0]).any(|l| {
                plaid
                    .out_links(l.to)
                    .any(|l2| l2.to == pair[1] && !plaid.resource(l.to).kind.is_func_unit())
            });
            assert!(reaches, "no bypass path between adjacent ALUs");
        }
    }

    #[test]
    fn specialization_plan_hardwires_pcus() {
        let plan = SpecializationPlan {
            hardwired: vec![
                Some(HardwiredPattern::FanIn),
                Some(HardwiredPattern::FanIn),
                Some(HardwiredPattern::Unicast),
                Some(HardwiredPattern::FanOut),
            ],
        };
        let plaid_ml = build_specialized(2, 2, &plan);
        assert_eq!(
            plaid_ml.params().domain,
            Some(crate::params::Domain::MachineLearning)
        );
        let hardwired: Vec<_> = plaid_ml.clusters().iter().map(|c| c.hardwired).collect();
        assert_eq!(hardwired.iter().filter(|h| h.is_some()).count(), 4);
        // Hardwired PCUs have a reduced local switch capacity.
        let local = plaid_ml.clusters()[0].local_router.unwrap();
        assert_eq!(plaid_ml.resource(local).kind.capacity(), 3);
    }

    #[test]
    fn global_routers_form_a_mesh() {
        let plaid = build(2, 2);
        let globals: Vec<_> = plaid.clusters().iter().map(|c| c.global_router).collect();
        // Corner PCU global router connects to exactly 2 neighbouring globals.
        let neighbours = plaid
            .out_links(globals[0])
            .filter(|l| globals.contains(&l.to) && l.to != globals[0])
            .count();
        assert_eq!(neighbours, 2);
    }
}
