//! CGRA architecture models for the Plaid reproduction.
//!
//! Every architecture evaluated in the paper is expressed as a *routing
//! resource graph*: functional units (ALUs and ALSUs) and switches (routers,
//! register holds, bypass wires) connected by latency-annotated links. The
//! mappers in `plaid-mapper` operate exclusively on this representation, so
//! the comparison between the spatio-temporal baseline, the spatial baseline
//! and Plaid isolates the architectural differences the paper studies.
//!
//! Provided architectures:
//!
//! * [`spatio_temporal`] — the high-performance baseline: a `rows × cols`
//!   mesh of PEs, each with an ALU, a crossbar router and per-cycle
//!   reconfiguration (Figure 3 of the paper).
//! * [`spatial`] — the energy-minimal baseline: same fabric, but mapped with
//!   a fixed configuration per DFG partition (Section 6.3).
//! * [`plaid`] — the proposed architecture: a mesh of Plaid Collective Units
//!   (PCUs), each with three ALUs, one ALSU, a local router, ALU-to-ALU
//!   bypass paths and a global router forming the hierarchical NoC
//!   (Figure 9).
//! * [`specialize`] — domain-specialized variants (ST-ML and Plaid-ML,
//!   Section 4.4 / 7.3).
//!
//! Beyond the fixed instances, [`enumerate`] exposes the provisioning space
//! itself: [`SpaceSpec`] enumerates (class × dimensions × configuration
//! depth × communication spec) grids and [`DesignPoint::build`] materializes
//! any point as a mapper-ready [`Architecture`] — the substrate of the
//! `plaid-explore` design-space exploration engine. The communication axis
//! is the structured [`CommSpec`] of [`comm`]: NoC topology (mesh, torus,
//! express links), a bandwidth class per link-direction group and a
//! select-bit policy; the legacy scalar [`CommLevel`] presets lower onto it
//! bit-exactly.
//!
//! # Example
//!
//! ```
//! use plaid_arch::{plaid, spatio_temporal};
//!
//! let st = spatio_temporal::build(4, 4);
//! let pl = plaid::build(2, 2);
//! // A 2x2 Plaid has the same number of functional units as a 4x4 CGRA.
//! assert_eq!(st.functional_units().count(), pl.functional_units().count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod architecture;
pub mod comm;
pub mod enumerate;
pub mod params;
pub mod plaid;
pub mod resource;
pub mod spatial;
pub mod spatio_temporal;
pub mod specialize;

pub use architecture::{
    rebuild_provisioned, rebuild_with_comm, ArchClass, Architecture, Cluster, Position,
};
pub use comm::{BwClass, CommLevel, CommSpec, LinkBw, LinkGroup, SelectPolicy, Topology};
pub use enumerate::{DesignPoint, SpaceSpec};
pub use params::{ArchParams, ConfigBudget, Domain, HardwiredPattern};
pub use resource::{FuCaps, Link, Resource, ResourceId, ResourceKind};
