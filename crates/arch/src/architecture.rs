//! The [`Architecture`] type: a routing-resource-graph description of a CGRA.

use std::collections::HashMap;

use crate::params::{ArchParams, HardwiredPattern};
use crate::resource::{FuCaps, Link, Resource, ResourceId, ResourceKind};

/// Broad class of CGRA execution paradigm.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ArchClass {
    /// Per-cycle reconfigurable PE array (ADRES/HyCUBE style).
    SpatioTemporal,
    /// Fixed configuration per DFG partition (SNAFU/RipTide style).
    Spatial,
    /// The paper's hierarchical PCU array.
    Plaid,
}

impl ArchClass {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ArchClass::SpatioTemporal => "spatio-temporal",
            ArchClass::Spatial => "spatial",
            ArchClass::Plaid => "plaid",
        }
    }
}

/// Physical position of a tile (PE or PCU) on the die, in tile units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl Position {
    /// Manhattan distance to another tile.
    pub fn manhattan(self, other: Position) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// A group of functional units sharing local interconnect.
///
/// For Plaid a cluster is one PCU (three ALUs + one ALSU + local and global
/// routers). For the baseline CGRAs each PE forms a degenerate cluster with a
/// single ALU and its crossbar router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Tile index of the cluster.
    pub tile: usize,
    /// ALU resources, ordered left to right (bypass paths connect neighbours).
    pub alus: Vec<ResourceId>,
    /// The ALSU (memory-capable functional unit), if the cluster has one.
    pub alsu: Option<ResourceId>,
    /// Local (intra-cluster) router, if any.
    pub local_router: Option<ResourceId>,
    /// Global router connecting the cluster to the mesh.
    pub global_router: ResourceId,
    /// Hardwired motif pattern for domain-specialized PCUs (Section 4.4).
    pub hardwired: Option<HardwiredPattern>,
}

impl Cluster {
    /// All functional units of the cluster.
    pub fn func_units(&self) -> Vec<ResourceId> {
        let mut fus = self.alus.clone();
        if let Some(alsu) = self.alsu {
            fus.push(alsu);
        }
        fus
    }
}

/// Process-unique identity of one built fabric, excluded from structural
/// equality (clones share it; two separately built identical fabrics
/// differ). Consumers cache derived data (e.g. the mapper's reachability
/// tables) keyed by this id: ids are never reused, so a stale cache entry
/// can never alias a new fabric, and clones — structurally identical by
/// construction — share cache entries soundly.
#[derive(Debug, Clone, Copy)]
struct InstanceId(u64);

impl PartialEq for InstanceId {
    fn eq(&self, _: &Self) -> bool {
        true // identity is not part of the structural value
    }
}

static NEXT_INSTANCE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// A complete CGRA instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    name: String,
    class: ArchClass,
    params: ArchParams,
    resources: Vec<Resource>,
    links: Vec<Link>,
    clusters: Vec<Cluster>,
    tile_positions: Vec<Position>,
    out_adjacency: Vec<Vec<usize>>,
    in_adjacency: Vec<Vec<usize>>,
    instance: InstanceId,
}

impl Architecture {
    /// Process-unique id of this built fabric (shared by clones, never
    /// reused). Lets consumers key caches of structure-derived data without
    /// address-aliasing hazards; not part of structural equality.
    pub fn instance_id(&self) -> u64 {
        self.instance.0
    }

    /// Architecture name, e.g. `"plaid-2x2"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution-paradigm class.
    pub fn class(&self) -> ArchClass {
        self.class
    }

    /// Structural and sizing parameters.
    pub fn params(&self) -> &ArchParams {
        &self.params
    }

    /// All routing resources.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Resource by id.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Clusters (PCUs, or single-PE clusters for the baselines).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Position of a tile.
    pub fn tile_position(&self, tile: usize) -> Position {
        self.tile_positions[tile]
    }

    /// Position of the tile owning a resource.
    pub fn resource_position(&self, id: ResourceId) -> Position {
        self.tile_position(self.resource(id).tile)
    }

    /// Manhattan distance, in tiles, between the tiles owning two resources.
    pub fn resource_distance(&self, a: ResourceId, b: ResourceId) -> u32 {
        self.resource_position(a)
            .manhattan(self.resource_position(b))
    }

    /// Iterator over all functional units.
    pub fn functional_units(&self) -> impl Iterator<Item = &Resource> {
        self.resources.iter().filter(|r| r.kind.is_func_unit())
    }

    /// Number of functional units capable of compute operations.
    pub fn compute_unit_count(&self) -> usize {
        self.functional_units()
            .filter(|r| r.fu_caps().is_some_and(|c| c.compute))
            .count()
    }

    /// Number of functional units capable of memory operations.
    pub fn memory_unit_count(&self) -> usize {
        self.functional_units()
            .filter(|r| r.fu_caps().is_some_and(|c| c.memory))
            .count()
    }

    /// Functional units able to execute a node with the given requirements.
    pub fn units_supporting(&self, needs_memory: bool) -> Vec<ResourceId> {
        self.functional_units()
            .filter(|r| {
                let caps = r.fu_caps().unwrap_or(FuCaps::ALU);
                if needs_memory {
                    caps.memory
                } else {
                    caps.compute
                }
            })
            .map(|r| r.id)
            .collect()
    }

    /// Links leaving `id`.
    pub fn out_links(&self, id: ResourceId) -> impl Iterator<Item = &Link> {
        self.out_adjacency[id.0 as usize]
            .iter()
            .map(move |&i| &self.links[i])
    }

    /// Links arriving at `id`.
    pub fn in_links(&self, id: ResourceId) -> impl Iterator<Item = &Link> {
        self.in_adjacency[id.0 as usize]
            .iter()
            .map(move |&i| &self.links[i])
    }

    /// Total number of switch resources (routers, holds, bypasses).
    pub fn switch_count(&self) -> usize {
        self.resources.len() - self.functional_units().count()
    }

    /// Checks internal consistency: link endpoints exist, every functional
    /// unit has at least one incoming and one outgoing link, every cluster
    /// references valid resources, and capacities are non-zero.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated invariant;
    /// builders call this before returning, so a panic indicates a bug in an
    /// architecture builder rather than user error.
    pub fn assert_consistent(&self) {
        for link in &self.links {
            assert!(
                (link.from.0 as usize) < self.resources.len(),
                "link source {} out of range",
                link.from
            );
            assert!(
                (link.to.0 as usize) < self.resources.len(),
                "link destination {} out of range",
                link.to
            );
        }
        for r in &self.resources {
            assert!(
                r.kind.capacity() > 0,
                "resource {} has zero capacity",
                r.name
            );
            if r.kind.is_func_unit() {
                assert!(
                    self.out_links(r.id).next().is_some(),
                    "functional unit {} has no outgoing link",
                    r.name
                );
                assert!(
                    self.in_links(r.id).next().is_some(),
                    "functional unit {} has no incoming link",
                    r.name
                );
            }
        }
        for c in &self.clusters {
            for fu in c.func_units() {
                assert!(
                    self.resource(fu).kind.is_func_unit(),
                    "cluster {} lists non-FU resource {}",
                    c.tile,
                    fu
                );
            }
            assert!(
                c.tile < self.tile_positions.len(),
                "cluster tile out of range"
            );
        }
    }
}

/// Clones an architecture under a new name and parameters, passing every
/// switch capacity through `scale_capacity`.
///
/// This is the shared mechanism behind domain specialization
/// ([`crate::specialize`]) and communication re-provisioning
/// ([`crate::enumerate`]): the fabric topology is preserved while the sizing
/// knobs change. Rebuilding goes through [`ArchBuilder`] so the consistency
/// checks re-run; resource ids are preserved because the original builder
/// allocated them densely. For structured re-provisioning (per-link-group
/// capacities, torus/express topology links) see [`rebuild_with_comm`].
pub fn rebuild_provisioned(
    arch: &Architecture,
    name: impl Into<String>,
    params: ArchParams,
    scale_capacity: impl Fn(u32) -> u32,
) -> Architecture {
    rebuild_scaled(arch, name, params, |r| match r.kind {
        crate::resource::ResourceKind::FuncUnit(_) => 0,
        crate::resource::ResourceKind::Switch { capacity } => scale_capacity(capacity),
    })
    .build()
}

/// Clones an architecture under a structured [`crate::comm::CommSpec`]:
/// every switch
/// capacity is scaled by the bandwidth class of its link-direction group
/// (local intra-tile switches vs. the mesh-facing global router), and the
/// spec's [`crate::comm::Topology`] contributes its extra inter-tile links
/// (torus wraparound closing every row and column, or express links skipping
/// `stride` tiles) between cluster global routers, registered at one cycle
/// like the mesh links they augment.
///
/// For the legacy preset specs (mesh topology, one class on both groups)
/// this is bit-identical to [`rebuild_provisioned`] with the scalar scaling
/// closure: the same capacities in the same resource order, no extra links.
pub fn rebuild_with_comm(
    arch: &Architecture,
    name: impl Into<String>,
    params: ArchParams,
    spec: &crate::comm::CommSpec,
) -> Architecture {
    use crate::comm::{LinkGroup, Topology};
    // A switch belongs to the global group iff it is some cluster's
    // mesh-facing router (Plaid global routers, baseline PE crossbars);
    // everything else — Plaid local routers, ALU bypass paths — is local.
    let global: std::collections::HashSet<u32> =
        arch.clusters().iter().map(|c| c.global_router.0).collect();
    let mut b = rebuild_scaled(arch, name, params, |r| match r.kind {
        crate::resource::ResourceKind::FuncUnit(_) => 0,
        crate::resource::ResourceKind::Switch { capacity } => {
            let group = if global.contains(&r.id.0) {
                LinkGroup::Global
            } else {
                LinkGroup::Local
            };
            spec.scale_capacity(group, capacity)
        }
    });
    // Topology links run between cluster global routers, addressed by grid
    // position. Appended after the copied links so preset (mesh) rebuilds
    // keep the exact legacy link order; the builder deduplicates, so a
    // wraparound that coincides with an existing mesh link (2-wide arrays)
    // adds nothing.
    let router_at: HashMap<(u32, u32), ResourceId> = arch
        .clusters()
        .iter()
        .map(|c| {
            let p = arch.tile_position(c.tile);
            ((p.x, p.y), c.global_router)
        })
        .collect();
    let cols = arch
        .tile_positions
        .iter()
        .map(|p| p.x + 1)
        .max()
        .unwrap_or(0);
    let rows = arch
        .tile_positions
        .iter()
        .map(|p| p.y + 1)
        .max()
        .unwrap_or(0);
    let mut connect = |a: (u32, u32), z: (u32, u32)| {
        if let (Some(&from), Some(&to)) = (router_at.get(&a), router_at.get(&z)) {
            if from != to {
                b.bidirectional(from, to, 1);
            }
        }
    };
    match spec.topology {
        Topology::Mesh => {}
        Topology::Torus => {
            for y in 0..rows {
                connect((0, y), (cols.saturating_sub(1), y));
            }
            for x in 0..cols {
                connect((x, 0), (x, rows.saturating_sub(1)));
            }
        }
        Topology::Express { stride } => {
            for y in 0..rows {
                for x in 0..cols.saturating_sub(stride) {
                    connect((x, y), (x + stride, y));
                }
            }
            for x in 0..cols {
                for y in 0..rows.saturating_sub(stride) {
                    connect((x, y), (x, y + stride));
                }
            }
        }
    }
    b.build()
}

/// Shared clone loop of [`rebuild_provisioned`] and [`rebuild_with_comm`]:
/// copies tiles, resources (switch capacities through `switch_capacity`,
/// clamped to 1), links and clusters into a fresh builder, which the caller
/// finalizes (optionally after adding topology links).
fn rebuild_scaled(
    arch: &Architecture,
    name: impl Into<String>,
    params: ArchParams,
    switch_capacity: impl Fn(&Resource) -> u32,
) -> ArchBuilder {
    let mut b = ArchBuilder::new(name, arch.class(), params);
    for tile in 0..arch.tile_positions.len() {
        let _ = b.add_tile(arch.tile_position(tile));
    }
    for r in arch.resources() {
        match r.kind {
            crate::resource::ResourceKind::FuncUnit(caps) => {
                b.add_func_unit(r.tile, r.name.clone(), caps);
            }
            crate::resource::ResourceKind::Switch { .. } => {
                b.add_switch(r.tile, r.name.clone(), switch_capacity(r).max(1));
            }
        }
    }
    for l in arch.links() {
        b.link(l.from, l.to, l.latency);
    }
    for c in arch.clusters() {
        b.add_cluster(c.clone());
    }
    b
}

/// Incremental builder used by the architecture constructors in this crate.
#[derive(Debug, Default)]
pub struct ArchBuilder {
    name: String,
    class: Option<ArchClass>,
    params: Option<ArchParams>,
    resources: Vec<Resource>,
    links: Vec<Link>,
    clusters: Vec<Cluster>,
    tile_positions: Vec<Position>,
    link_keys: HashMap<(u32, u32), usize>,
}

impl ArchBuilder {
    /// Starts a new architecture description.
    pub fn new(name: impl Into<String>, class: ArchClass, params: ArchParams) -> Self {
        ArchBuilder {
            name: name.into(),
            class: Some(class),
            params: Some(params),
            ..Default::default()
        }
    }

    /// Registers a tile at a grid position and returns its index.
    pub fn add_tile(&mut self, position: Position) -> usize {
        self.tile_positions.push(position);
        self.tile_positions.len() - 1
    }

    /// Adds a functional unit to a tile.
    pub fn add_func_unit(
        &mut self,
        tile: usize,
        name: impl Into<String>,
        caps: FuCaps,
    ) -> ResourceId {
        self.add_resource(tile, name, ResourceKind::FuncUnit(caps))
    }

    /// Adds a switch to a tile.
    pub fn add_switch(
        &mut self,
        tile: usize,
        name: impl Into<String>,
        capacity: u32,
    ) -> ResourceId {
        self.add_resource(tile, name, ResourceKind::Switch { capacity })
    }

    fn add_resource(
        &mut self,
        tile: usize,
        name: impl Into<String>,
        kind: ResourceKind,
    ) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            id,
            name: name.into(),
            kind,
            tile,
        });
        id
    }

    /// Adds a directed link (idempotent: duplicate links are ignored).
    pub fn link(&mut self, from: ResourceId, to: ResourceId, latency: u32) {
        if self.link_keys.contains_key(&(from.0, to.0)) {
            return;
        }
        self.link_keys.insert((from.0, to.0), self.links.len());
        self.links.push(Link { from, to, latency });
    }

    /// Adds a pair of directed links in both directions.
    pub fn bidirectional(&mut self, a: ResourceId, b: ResourceId, latency: u32) {
        self.link(a, b, latency);
        self.link(b, a, latency);
    }

    /// Registers a cluster.
    pub fn add_cluster(&mut self, cluster: Cluster) {
        self.clusters.push(cluster);
    }

    /// Finalizes the architecture, computing adjacency tables and checking
    /// consistency.
    pub fn build(self) -> Architecture {
        let mut out_adjacency = vec![Vec::new(); self.resources.len()];
        let mut in_adjacency = vec![Vec::new(); self.resources.len()];
        for (i, link) in self.links.iter().enumerate() {
            out_adjacency[link.from.0 as usize].push(i);
            in_adjacency[link.to.0 as usize].push(i);
        }
        let arch = Architecture {
            name: self.name,
            class: self.class.expect("class set in ArchBuilder::new"),
            params: self.params.expect("params set in ArchBuilder::new"),
            resources: self.resources,
            links: self.links,
            clusters: self.clusters,
            tile_positions: self.tile_positions,
            out_adjacency,
            in_adjacency,
            instance: InstanceId(
                NEXT_INSTANCE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            ),
        };
        arch.assert_consistent();
        arch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ArchParams;

    fn tiny_arch() -> Architecture {
        let mut b = ArchBuilder::new(
            "tiny",
            ArchClass::SpatioTemporal,
            ArchParams::baseline(1, 2),
        );
        let t0 = b.add_tile(Position { x: 0, y: 0 });
        let t1 = b.add_tile(Position { x: 1, y: 0 });
        let fu0 = b.add_func_unit(t0, "pe0.fu", FuCaps::ALSU);
        let r0 = b.add_switch(t0, "pe0.router", 4);
        let fu1 = b.add_func_unit(t1, "pe1.fu", FuCaps::ALU);
        let r1 = b.add_switch(t1, "pe1.router", 4);
        b.bidirectional(fu0, r0, 0);
        b.bidirectional(fu1, r1, 0);
        b.bidirectional(r0, r1, 1);
        b.link(r0, r0, 1);
        b.link(r1, r1, 1);
        b.add_cluster(Cluster {
            tile: t0,
            alus: vec![fu0],
            alsu: None,
            local_router: None,
            global_router: r0,
            hardwired: None,
        });
        b.add_cluster(Cluster {
            tile: t1,
            alus: vec![fu1],
            alsu: None,
            local_router: None,
            global_router: r1,
            hardwired: None,
        });
        b.build()
    }

    #[test]
    fn builder_produces_consistent_architecture() {
        let arch = tiny_arch();
        assert_eq!(arch.resources().len(), 4);
        assert_eq!(arch.functional_units().count(), 2);
        assert_eq!(arch.switch_count(), 2);
        assert_eq!(arch.clusters().len(), 2);
    }

    #[test]
    fn capability_queries() {
        let arch = tiny_arch();
        assert_eq!(arch.compute_unit_count(), 2);
        assert_eq!(arch.memory_unit_count(), 1);
        assert_eq!(arch.units_supporting(true).len(), 1);
        assert_eq!(arch.units_supporting(false).len(), 2);
    }

    #[test]
    fn adjacency_and_distance() {
        let arch = tiny_arch();
        let fu0 = ResourceId(0);
        let r0 = ResourceId(1);
        let fu1 = ResourceId(2);
        assert!(arch.out_links(fu0).any(|l| l.to == r0));
        assert!(arch.in_links(fu0).any(|l| l.from == r0));
        assert_eq!(arch.resource_distance(fu0, fu1), 1);
        assert_eq!(arch.resource_distance(fu0, fu0), 0);
    }

    #[test]
    fn duplicate_links_are_ignored() {
        let mut b = ArchBuilder::new("dup", ArchClass::SpatioTemporal, ArchParams::baseline(1, 1));
        let t0 = b.add_tile(Position { x: 0, y: 0 });
        let fu = b.add_func_unit(t0, "fu", FuCaps::ALSU);
        let r = b.add_switch(t0, "router", 2);
        b.bidirectional(fu, r, 0);
        b.link(fu, r, 0);
        b.link(fu, r, 0);
        b.add_cluster(Cluster {
            tile: t0,
            alus: vec![fu],
            alsu: None,
            local_router: None,
            global_router: r,
            hardwired: None,
        });
        let arch = b.build();
        assert_eq!(arch.links().len(), 2);
    }

    #[test]
    fn manhattan_distance() {
        let a = Position { x: 0, y: 0 };
        let b = Position { x: 3, y: 2 };
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
    }

    #[test]
    fn class_labels() {
        assert_eq!(ArchClass::SpatioTemporal.label(), "spatio-temporal");
        assert_eq!(ArchClass::Spatial.label(), "spatial");
        assert_eq!(ArchClass::Plaid.label(), "plaid");
    }
}
