//! The baseline energy-minimal spatial CGRA (Section 6.3).
//!
//! Structurally the fabric matches the spatio-temporal baseline (same PE
//! array, same mesh, same scratch-pad configuration); the difference is the
//! execution paradigm: a DFG (or DFG partition) is mapped fully spatially with
//! a fixed configuration, so each functional unit executes a single operation
//! for the duration of a partition and the configuration memory is
//! clock-gated. Complex kernels must be partitioned into several spatial
//! sub-DFGs, with intermediate values spilled to the scratch-pad (handled by
//! the spatial mapper in `plaid-mapper`).

use crate::architecture::{ArchClass, Architecture};
use crate::spatio_temporal::build_named;

/// Builds a `rows × cols` spatial CGRA.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn build(rows: u32, cols: u32) -> Architecture {
    build_named(
        format!("spatial-{rows}x{cols}"),
        rows,
        cols,
        ArchClass::Spatial,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_matches_spatio_temporal_fabric() {
        let sp = build(4, 4);
        let st = crate::spatio_temporal::build(4, 4);
        assert_eq!(sp.functional_units().count(), st.functional_units().count());
        assert_eq!(sp.links().len(), st.links().len());
        assert_eq!(sp.class(), ArchClass::Spatial);
        assert_eq!(sp.name(), "spatial-4x4");
    }
}
