//! Structural and sizing parameters of an architecture instance.
//!
//! These parameters feed two consumers: the mappers (array dimensions,
//! configuration-memory depth, which bounds the maximum initiation interval)
//! and the cost model in `plaid-sim` (configuration bit budgets, scratch-pad
//! sizing, domain specialization).

use serde::{Deserialize, Serialize};

/// Application domain used for domain-specialized variants (Section 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// TinyML-style machine learning kernels (conv / dwconv / fc).
    MachineLearning,
}

/// Motif pattern hardwired into a specialized PCU (Plaid-ML, Section 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HardwiredPattern {
    /// Two producers feeding one consumer.
    FanIn,
    /// One producer feeding two consumers.
    FanOut,
    /// A three-node sequential chain.
    Unicast,
}

/// Per-tile, per-entry configuration bit budget.
///
/// The split between compute and communication configuration drives the
/// power/area breakdowns of Figure 2 and Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigBudget {
    /// Operation-select bits for all functional units of the tile.
    pub compute_op_bits: u32,
    /// Immediate-constant bits for all functional units of the tile.
    pub compute_const_bits: u32,
    /// Router / multiplexer select bits (communication configuration).
    pub communication_bits: u32,
    /// Predication and miscellaneous control bits.
    pub control_bits: u32,
}

impl ConfigBudget {
    /// Total configuration bits per tile per configuration entry.
    pub fn total_bits(&self) -> u32 {
        self.compute_op_bits + self.compute_const_bits + self.communication_bits + self.control_bits
    }

    /// Bits attributed to compute configuration (op selects + constants).
    pub fn compute_bits(&self) -> u32 {
        self.compute_op_bits + self.compute_const_bits
    }

    /// Configuration budget of a baseline spatio-temporal PE: one ALU
    /// (4-bit opcode, 8-bit constant), a 5-output crossbar router selecting
    /// among 6 inputs, two operand multiplexers and register/predication
    /// control.
    pub fn spatio_temporal_pe() -> Self {
        ConfigBudget {
            compute_op_bits: 4,
            compute_const_bits: 8,
            communication_bits: 5 * 3 + 2 * 3 + 8,
            control_bits: 3,
        }
    }

    /// Configuration budget of a Plaid PCU: three ALUs (4-bit opcode and
    /// 8-bit constant each), one ALSU, plus local (8×8) and global (7×9)
    /// router selects. Totals 120 bits, matching Section 4.3.
    pub fn plaid_pcu() -> Self {
        ConfigBudget {
            // Three ALU opcodes plus the ALSU opcode/address-mode field.
            compute_op_bits: 3 * 4 + 8,
            // Three 8-bit ALU constants plus the ALSU offset constant.
            compute_const_bits: 3 * 8 + 8,
            // Local 8x8 router selects plus global 7x9 router selects.
            communication_bits: 8 * 3 + 7 * 4 + 8,
            control_bits: 8,
        }
    }
}

/// Structural parameters of an architecture instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchParams {
    /// Tile rows (PE rows for the baselines, PCU rows for Plaid).
    pub rows: u32,
    /// Tile columns.
    pub cols: u32,
    /// Configuration-memory depth per tile (paper: 16 entries). This bounds
    /// the maximum initiation interval the mapper may use.
    pub config_entries: u32,
    /// Per-tile, per-entry configuration bit budget.
    pub config: ConfigBudget,
    /// Number of scratch-pad banks.
    pub spm_banks: u32,
    /// Capacity of each scratch-pad bank in KiB.
    pub spm_bank_kib: u32,
    /// Datapath width in bits.
    pub data_width: u32,
    /// Domain specialization, if any.
    pub domain: Option<Domain>,
}

impl ArchParams {
    /// Parameters of a baseline (spatio-temporal or spatial) PE array with the
    /// paper's memory configuration: four 4 KiB banks and 16 config entries.
    pub fn baseline(rows: u32, cols: u32) -> Self {
        ArchParams {
            rows,
            cols,
            config_entries: 16,
            config: ConfigBudget::spatio_temporal_pe(),
            spm_banks: 4,
            spm_bank_kib: 4,
            data_width: 16,
            domain: None,
        }
    }

    /// Parameters of a Plaid PCU array with the paper's memory configuration.
    pub fn plaid(rows: u32, cols: u32) -> Self {
        ArchParams {
            rows,
            cols,
            config_entries: 16,
            config: ConfigBudget::plaid_pcu(),
            spm_banks: 4,
            spm_bank_kib: 4,
            data_width: 16,
            domain: None,
        }
    }

    /// Number of tiles in the array.
    pub fn tile_count(&self) -> u32 {
        self.rows * self.cols
    }

    /// Total configuration bits per cycle across the fabric.
    pub fn fabric_config_bits(&self) -> u32 {
        self.tile_count() * self.config.total_bits()
    }

    /// Total configuration memory capacity of the fabric in bits.
    pub fn config_memory_bits(&self) -> u64 {
        u64::from(self.fabric_config_bits()) * u64::from(self.config_entries)
    }

    /// Maximum initiation interval supported by the configuration memory.
    pub fn max_ii(&self) -> u32 {
        self.config_entries
    }

    /// Total scratch-pad capacity in KiB.
    pub fn spm_total_kib(&self) -> u32 {
        self.spm_banks * self.spm_bank_kib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plaid_pcu_config_entry_is_120_bits() {
        // Section 4.3: "Each instruction, or configuration entry, comprises a
        // total of 120 bits".
        assert_eq!(ConfigBudget::plaid_pcu().total_bits(), 120);
    }

    #[test]
    fn plaid_routers_consume_about_half_the_encoding() {
        // Section 4.3: "The routers alone consume about half of these
        // encoding bits".
        let b = ConfigBudget::plaid_pcu();
        let frac = f64::from(b.communication_bits) / f64::from(b.total_bits());
        assert!(
            (0.4..=0.6).contains(&frac),
            "router share {frac} not near half"
        );
    }

    #[test]
    fn spatio_temporal_pe_budget_is_dominated_by_communication() {
        let b = ConfigBudget::spatio_temporal_pe();
        assert!(b.communication_bits > b.compute_bits());
        assert_eq!(b.total_bits(), 44);
    }

    #[test]
    fn fabric_budgets_favour_plaid() {
        // A 2x2 Plaid (16 FUs) needs fewer configuration bits per cycle than
        // a 4x4 spatio-temporal CGRA (16 FUs).
        let st = ArchParams::baseline(4, 4);
        let plaid = ArchParams::plaid(2, 2);
        assert!(plaid.fabric_config_bits() < st.fabric_config_bits());
        assert_eq!(st.max_ii(), 16);
        assert_eq!(plaid.spm_total_kib(), 16);
    }

    #[test]
    fn config_memory_scales_with_entries() {
        let p = ArchParams::plaid(2, 2);
        assert_eq!(
            p.config_memory_bits(),
            u64::from(p.fabric_config_bits()) * 16
        );
    }
}
