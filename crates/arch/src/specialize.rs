//! Domain-specialized architecture variants (Sections 4.4 and 7.3).
//!
//! * **ST-ML** — the spatio-temporal baseline pruned for the machine-learning
//!   domain: the function set and constant width of each PE are reduced,
//!   which shrinks the configuration word and the compute datapath (REVAMP
//!   style). The fabric topology is unchanged.
//! * **Plaid-ML** — Plaid with the local router of every PCU replaced by
//!   hardwired motif connections chosen to cover the machine-learning DFGs:
//!   two fan-in PCUs, one unicast PCU and one fan-out PCU for the 2×2 array,
//!   exactly as described in Section 7.3.

use crate::architecture::{ArchClass, Architecture};
use crate::params::{ConfigBudget, Domain, HardwiredPattern};
use crate::plaid::{build_specialized, SpecializationPlan};
use crate::spatio_temporal;

/// Builds the machine-learning-optimized spatio-temporal CGRA (ST-ML).
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn spatio_temporal_ml(rows: u32, cols: u32) -> Architecture {
    let mut arch = spatio_temporal::build(rows, cols);
    // Re-parameterize: the ML kernels use a small operation subset (mul, add,
    // shift), so opcode and constant fields shrink and the crossbar control is
    // pruned to the directions the domain actually uses.
    let params = {
        let mut p = arch.params().clone();
        p.domain = Some(Domain::MachineLearning);
        p.config = ConfigBudget {
            compute_op_bits: 3,
            compute_const_bits: 6,
            communication_bits: 5 * 3 + 2 * 2 + 4,
            control_bits: 2,
        };
        p
    };
    arch = rebuild_with_params(arch, "spatio-temporal-ml", params);
    arch
}

/// Builds the machine-learning-optimized Plaid (Plaid-ML) on a 2×2 PCU array:
/// two hardwired fan-in PCUs, one unicast PCU and one fan-out PCU.
pub fn plaid_ml_2x2() -> Architecture {
    let plan = SpecializationPlan {
        hardwired: vec![
            Some(HardwiredPattern::FanIn),
            Some(HardwiredPattern::FanIn),
            Some(HardwiredPattern::Unicast),
            Some(HardwiredPattern::FanOut),
        ],
    };
    let mut arch = build_specialized(2, 2, &plan);
    // Hardwiring removes the local-router select fields from the PCU
    // configuration word.
    let params = {
        let mut p = arch.params().clone();
        p.domain = Some(Domain::MachineLearning);
        p.config = ConfigBudget {
            compute_op_bits: p.config.compute_op_bits,
            compute_const_bits: p.config.compute_const_bits,
            communication_bits: 7 * 4 + 8,
            control_bits: p.config.control_bits,
        };
        p
    };
    arch = rebuild_with_params(arch, "plaid-ml-2x2", params);
    arch
}

/// Clones an architecture with new parameters and name, preserving the fabric.
fn rebuild_with_params(
    arch: Architecture,
    name: &str,
    params: crate::params::ArchParams,
) -> Architecture {
    // Architectures are immutable by design; rebuilding goes through the
    // shared provisioning helper (identity capacity scaling) so the
    // consistency checks re-run.
    crate::architecture::rebuild_provisioned(&arch, name, params, |c| c)
}

/// Convenience: returns the class label of a specialized variant for reports.
pub fn variant_label(arch: &Architecture) -> String {
    match (arch.class(), arch.params().domain) {
        (ArchClass::SpatioTemporal, Some(Domain::MachineLearning)) => "ST-ML".to_string(),
        (ArchClass::SpatioTemporal, None) => "ST".to_string(),
        (ArchClass::Spatial, _) => "Spatial".to_string(),
        (ArchClass::Plaid, Some(Domain::MachineLearning)) => "Plaid-ML".to_string(),
        (ArchClass::Plaid, None) => "Plaid".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_ml_shrinks_the_configuration_word() {
        let st = spatio_temporal::build(4, 4);
        let st_ml = spatio_temporal_ml(4, 4);
        assert!(st_ml.params().config.total_bits() < st.params().config.total_bits());
        assert_eq!(
            st_ml.functional_units().count(),
            st.functional_units().count()
        );
        assert_eq!(st_ml.params().domain, Some(Domain::MachineLearning));
        assert_eq!(variant_label(&st_ml), "ST-ML");
        assert_eq!(variant_label(&st), "ST");
    }

    #[test]
    fn plaid_ml_hardwires_the_motif_mix_from_the_paper() {
        let arch = plaid_ml_2x2();
        let patterns: Vec<_> = arch.clusters().iter().filter_map(|c| c.hardwired).collect();
        assert_eq!(patterns.len(), 4);
        assert_eq!(
            patterns
                .iter()
                .filter(|p| **p == HardwiredPattern::FanIn)
                .count(),
            2
        );
        assert_eq!(
            patterns
                .iter()
                .filter(|p| **p == HardwiredPattern::Unicast)
                .count(),
            1
        );
        assert_eq!(
            patterns
                .iter()
                .filter(|p| **p == HardwiredPattern::FanOut)
                .count(),
            1
        );
        assert_eq!(variant_label(&arch), "Plaid-ML");
    }

    #[test]
    fn plaid_ml_has_a_smaller_config_word_than_plaid() {
        let plaid = crate::plaid::build(2, 2);
        let plaid_ml = plaid_ml_2x2();
        assert!(plaid_ml.params().config.total_bits() < plaid.params().config.total_bits());
        assert_eq!(
            plaid_ml.functional_units().count(),
            plaid.functional_units().count()
        );
    }

    #[test]
    fn rebuild_preserves_fabric_structure() {
        let plaid = crate::plaid::build(2, 2);
        let plaid_ml = plaid_ml_2x2();
        assert_eq!(plaid.resources().len(), plaid_ml.resources().len());
        assert_eq!(plaid.links().len(), plaid_ml.links().len());
    }
}
