//! Routing-resource primitives: functional units, switches and links.

use std::fmt;

/// Identifier of a resource within an [`crate::Architecture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Capabilities of a functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuCaps {
    /// Can execute ALU (compute) operations.
    pub compute: bool,
    /// Can execute load/store operations (has a scratch-pad port).
    pub memory: bool,
}

impl FuCaps {
    /// An ALU: compute only.
    pub const ALU: FuCaps = FuCaps {
        compute: true,
        memory: false,
    };
    /// An ALSU: compute plus load/store.
    pub const ALSU: FuCaps = FuCaps {
        compute: true,
        memory: true,
    };
}

/// The kind of a routing resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A functional unit; executes at most one DFG node per cycle.
    FuncUnit(FuCaps),
    /// A switch (router, register hold, bypass wire); carries at most
    /// `capacity` distinct values per cycle.
    Switch {
        /// Number of distinct values the switch can carry per cycle.
        capacity: u32,
    },
}

impl ResourceKind {
    /// Whether this resource is a functional unit.
    pub fn is_func_unit(self) -> bool {
        matches!(self, ResourceKind::FuncUnit(_))
    }

    /// Per-cycle value capacity (1 for functional units).
    pub fn capacity(self) -> u32 {
        match self {
            ResourceKind::FuncUnit(_) => 1,
            ResourceKind::Switch { capacity } => capacity,
        }
    }
}

/// A routing resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Identifier within the architecture.
    pub id: ResourceId,
    /// Human-readable name, e.g. `"pcu0.alu1"` or `"pe3.router"`.
    pub name: String,
    /// Kind and capacity.
    pub kind: ResourceKind,
    /// Index of the tile (PE or PCU) this resource belongs to.
    pub tile: usize,
}

impl Resource {
    /// Capabilities if this is a functional unit.
    pub fn fu_caps(&self) -> Option<FuCaps> {
        match self.kind {
            ResourceKind::FuncUnit(caps) => Some(caps),
            ResourceKind::Switch { .. } => None,
        }
    }
}

/// A directed link between two resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Source resource.
    pub from: ResourceId,
    /// Destination resource.
    pub to: ResourceId,
    /// Cycles a value takes to traverse the link (0 = combinational,
    /// 1 = registered).
    pub latency: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_caps_constants() {
        let alu = FuCaps::ALU;
        let alsu = FuCaps::ALSU;
        assert!(alu.compute && !alu.memory);
        assert!(alsu.compute && alsu.memory);
    }

    #[test]
    fn resource_kind_capacity() {
        assert_eq!(ResourceKind::FuncUnit(FuCaps::ALU).capacity(), 1);
        assert_eq!(ResourceKind::Switch { capacity: 5 }.capacity(), 5);
        assert!(ResourceKind::FuncUnit(FuCaps::ALSU).is_func_unit());
        assert!(!ResourceKind::Switch { capacity: 1 }.is_func_unit());
    }

    #[test]
    fn resource_fu_caps_accessor() {
        let fu = Resource {
            id: ResourceId(0),
            name: "alu".into(),
            kind: ResourceKind::FuncUnit(FuCaps::ALU),
            tile: 0,
        };
        assert_eq!(fu.fu_caps(), Some(FuCaps::ALU));
        let sw = Resource {
            id: ResourceId(1),
            name: "router".into(),
            kind: ResourceKind::Switch { capacity: 4 },
            tile: 0,
        };
        assert_eq!(sw.fu_caps(), None);
    }
}
