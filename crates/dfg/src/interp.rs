//! Reference interpreters for kernels and DFGs.
//!
//! Two independent executable semantics are provided:
//!
//! * [`run_kernel`] executes the loop-nest IR directly (the "golden" model),
//! * [`run_dfg`] executes a lowered DFG iteration by iteration, honouring
//!   recurrence registers and memory-carried reductions.
//!
//! Agreement between the two validates the lowering; further up the stack the
//! cycle-level simulator in `plaid-sim` is validated against [`run_dfg`].

use std::collections::HashMap;

use crate::error::DfgError;
use crate::graph::{Dfg, EdgeKind, NodeId, Operand};
use crate::kernel::{Expr, Kernel, Stmt};
use crate::lower::is_iterator_array;
use crate::op::Op;

/// Contents of the scratch-pad memory: one `Vec<i64>` (16-bit values stored
/// widened) per named array.
///
/// Array addresses wrap modulo the array length, mirroring the aliasing
/// behaviour of a small scratch-pad; this keeps randomly generated kernels
/// (property tests) well-defined without bounds panics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryImage {
    arrays: HashMap<String, Vec<i64>>,
}

impl MemoryImage {
    /// Creates an empty memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory image with every array of `kernel` allocated and
    /// filled by `fill(array_name, element_index)`.
    pub fn for_kernel(kernel: &Kernel, mut fill: impl FnMut(&str, usize) -> i64) -> Self {
        let mut image = MemoryImage::new();
        for decl in &kernel.arrays {
            let data = (0..decl.len).map(|i| fill(&decl.name, i)).collect();
            image.arrays.insert(decl.name.clone(), data);
        }
        image
    }

    /// Allocates (or replaces) an array.
    pub fn insert(&mut self, name: impl Into<String>, data: Vec<i64>) {
        self.arrays.insert(name.into(), data);
    }

    /// Returns an array's contents, if present.
    pub fn array(&self, name: &str) -> Option<&[i64]> {
        self.arrays.get(name).map(|v| v.as_slice())
    }

    /// Names of all allocated arrays, sorted for deterministic iteration.
    pub fn array_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.arrays.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    fn wrap_index(len: usize, index: i64) -> usize {
        let len = len as i64;
        (((index % len) + len) % len) as usize
    }

    /// Reads `array[index]` (wrapping), returning 0 for unknown arrays.
    pub fn read(&self, array: &str, index: i64) -> i64 {
        match self.arrays.get(array) {
            Some(data) if !data.is_empty() => data[Self::wrap_index(data.len(), index)],
            _ => 0,
        }
    }

    /// Writes `array[index] = value` (wrapping). Writes to unknown arrays
    /// allocate a single-element array so kernels never fail on stores.
    pub fn write(&mut self, array: &str, index: i64, value: i64) {
        let data = self
            .arrays
            .entry(array.to_string())
            .or_insert_with(|| vec![0]);
        if data.is_empty() {
            data.push(0);
        }
        let i = Self::wrap_index(data.len(), index);
        data[i] = value;
    }
}

fn wrap16(v: i64) -> i64 {
    (v as i16) as i64
}

/// Executes the kernel IR directly over `memory` (the golden reference).
///
/// # Errors
///
/// Returns [`DfgError::Interpretation`] if a scalar temporary is read before
/// being defined (which [`Kernel::validate`] would also have rejected).
pub fn run_kernel(kernel: &Kernel, memory: &mut MemoryImage) -> Result<(), DfgError> {
    let mut indices = vec![0i64; kernel.loops.len()];
    let total = kernel.total_iterations();
    for _ in 0..total {
        let mut scalars: HashMap<&str, i64> = HashMap::new();
        for stmt in &kernel.body {
            match stmt {
                Stmt::Let { name, value } => {
                    let v = eval_expr(value, &indices, &scalars, memory)?;
                    scalars.insert(name.as_str(), v);
                }
                Stmt::Store {
                    array,
                    index,
                    value,
                } => {
                    let v = eval_expr(value, &indices, &scalars, memory)?;
                    memory.write(array, index.eval(&indices), wrap16(v));
                }
                Stmt::Accumulate {
                    array,
                    index,
                    op,
                    value,
                } => {
                    let addr = index.eval(&indices);
                    let old = memory.read(array, addr);
                    let v = eval_expr(value, &indices, &scalars, memory)?;
                    memory.write(array, addr, op.eval(old, v));
                }
            }
        }
        advance(&mut indices, &kernel.loops);
    }
    Ok(())
}

fn advance(indices: &mut [i64], loops: &[crate::kernel::LoopVar]) {
    for dim in (0..indices.len()).rev() {
        indices[dim] += 1;
        if (indices[dim] as u64) < loops[dim].trip_count {
            return;
        }
        indices[dim] = 0;
    }
}

fn eval_expr(
    expr: &Expr,
    indices: &[i64],
    scalars: &HashMap<&str, i64>,
    memory: &MemoryImage,
) -> Result<i64, DfgError> {
    let v = match expr {
        Expr::Load { array, index } => memory.read(array, index.eval(indices)),
        Expr::Scalar(name) => *scalars
            .get(name.as_str())
            .ok_or_else(|| DfgError::Interpretation(format!("scalar {name} undefined")))?,
        Expr::Index(var) => indices.get(*var).copied().unwrap_or(0),
        Expr::Const(c) => *c,
        Expr::Unary(op, a) => op.eval(eval_expr(a, indices, scalars, memory)?, 0),
        Expr::Binary(op, a, b) => op.eval(
            eval_expr(a, indices, scalars, memory)?,
            eval_expr(b, indices, scalars, memory)?,
        ),
    };
    Ok(wrap16(v))
}

/// Executes a lowered DFG over its full iteration space.
///
/// Semantics:
/// * nodes are evaluated in topological order of same-iteration data edges;
/// * loads read the scratch-pad (iterator streams return the loop index);
/// * recurrence edges into compute nodes deliver the value produced
///   `distance` iterations earlier (0 before that);
/// * recurrence edges into memory nodes are ordering-only;
/// * a compute node with an immediate and no inputs outputs its immediate.
///
/// # Errors
///
/// Returns an error if the DFG is structurally invalid.
pub fn run_dfg(dfg: &Dfg, memory: &mut MemoryImage) -> Result<(), DfgError> {
    dfg.validate_structure()?;
    let order = dfg.topological_order()?;
    let loops: Vec<(String, u64)> = dfg
        .iteration_space()
        .iter()
        .map(|d| (d.name.clone(), d.trip_count))
        .collect();
    let mut indices = vec![0i64; loops.len()];
    let total = dfg.total_iterations();

    // Recurrence pipelines: edge id -> FIFO of pending values.
    let mut pipelines: HashMap<u32, Vec<i64>> = HashMap::new();
    for e in dfg.recurrence_edges() {
        if dfg.node(e.dst).is_compute() {
            pipelines.insert(e.id.0, vec![0; e.kind.distance() as usize]);
        }
    }

    for _ in 0..total {
        let mut values: HashMap<NodeId, i64> = HashMap::new();
        for &id in &order {
            let node = dfg.node(id);
            let value = match node.op {
                Op::Load => {
                    let access = node.access.as_ref().ok_or_else(|| {
                        DfgError::Interpretation(format!("load {id} lacks a memory access"))
                    })?;
                    let addr = access.index.eval(&indices);
                    if is_iterator_array(&access.array) {
                        wrap16(addr)
                    } else {
                        memory.read(&access.array, addr)
                    }
                }
                Op::Store => {
                    let access = node.access.as_ref().ok_or_else(|| {
                        DfgError::Interpretation(format!("store {id} lacks a memory access"))
                    })?;
                    let input = operand_value(dfg, id, Operand::Lhs, &values, &pipelines)
                        .ok_or_else(|| {
                            DfgError::Interpretation(format!("store {id} has no value operand"))
                        })?;
                    memory.write(&access.array, access.index.eval(&indices), wrap16(input));
                    wrap16(input)
                }
                op => {
                    let has_inputs = dfg.in_edges(id).next().is_some();
                    if let (false, Some(imm)) = (has_inputs, node.immediate) {
                        wrap16(imm)
                    } else {
                        let lhs = operand_value(dfg, id, Operand::Lhs, &values, &pipelines).ok_or(
                            DfgError::MissingOperand {
                                node: id.0,
                                operand: "lhs",
                            },
                        )?;
                        let rhs = if op.arity() == 2 {
                            operand_value(dfg, id, Operand::Rhs, &values, &pipelines)
                                .or(node.immediate)
                                .ok_or(DfgError::MissingOperand {
                                    node: id.0,
                                    operand: "rhs",
                                })?
                        } else {
                            0
                        };
                        op.eval(lhs, rhs)
                    }
                }
            };
            values.insert(id, value);
        }
        // Shift recurrence pipelines with this iteration's produced values.
        for e in dfg.recurrence_edges() {
            if let Some(pipe) = pipelines.get_mut(&e.id.0) {
                pipe.push(values.get(&e.src).copied().unwrap_or(0));
                pipe.remove(0);
            }
        }
        advance_named(&mut indices, &loops);
    }
    Ok(())
}

fn advance_named(indices: &mut [i64], loops: &[(String, u64)]) {
    for dim in (0..indices.len()).rev() {
        indices[dim] += 1;
        if (indices[dim] as u64) < loops[dim].1 {
            return;
        }
        indices[dim] = 0;
    }
}

fn operand_value(
    dfg: &Dfg,
    node: NodeId,
    operand: Operand,
    values: &HashMap<NodeId, i64>,
    pipelines: &HashMap<u32, Vec<i64>>,
) -> Option<i64> {
    // Same-iteration data edge takes precedence; otherwise a recurrence edge
    // delivers the value from `distance` iterations ago.
    for e in dfg.in_edges(node) {
        if e.operand != operand {
            continue;
        }
        match e.kind {
            EdgeKind::Data => return values.get(&e.src).copied(),
            EdgeKind::Recurrence { .. } => {
                if let Some(pipe) = pipelines.get(&e.id.0) {
                    return pipe.first().copied();
                }
            }
        }
    }
    None
}

/// Runs both interpreters from the same initial memory image and reports
/// whether every array matches afterwards.
///
/// Returns the pair of final images `(kernel_result, dfg_result)` on mismatch
/// inside the error string for debugging.
///
/// # Errors
///
/// Propagates interpretation errors and reports mismatching arrays.
pub fn check_lowering_equivalence(
    kernel: &Kernel,
    dfg: &Dfg,
    initial: &MemoryImage,
) -> Result<(), DfgError> {
    let mut golden = initial.clone();
    run_kernel(kernel, &mut golden)?;
    let mut mapped = initial.clone();
    run_dfg(dfg, &mut mapped)?;
    for decl in &kernel.arrays {
        let a = golden.array(&decl.name).unwrap_or(&[]);
        let b = mapped.array(&decl.name).unwrap_or(&[]);
        if a != b {
            return Err(DfgError::Interpretation(format!(
                "array {} differs between kernel and DFG execution: {:?} vs {:?}",
                decl.name, a, b
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AffineExpr, KernelBuilder};
    use crate::lower::{lower_kernel, LoweringOptions};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .loop_var("i", 8)
            .array("x", 8)
            .array("y", 8)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap()
    }

    fn dot() -> Kernel {
        KernelBuilder::new("dot")
            .loop_var("i", 8)
            .array("a", 8)
            .array("b", 8)
            .array("out", 1)
            .accumulate(
                "out",
                AffineExpr::constant(0),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap()
    }

    fn seeded_memory(kernel: &Kernel) -> MemoryImage {
        MemoryImage::for_kernel(kernel, |name, i| {
            (name.len() as i64 * 7 + i as i64 * 3) % 23
        })
    }

    #[test]
    fn kernel_interpreter_computes_axpy() {
        let k = axpy();
        let mut mem = MemoryImage::for_kernel(&k, |name, i| match name {
            "x" => i as i64,
            _ => 100 + i as i64,
        });
        run_kernel(&k, &mut mem).unwrap();
        let y = mem.array("y").unwrap();
        for (i, &v) in y.iter().enumerate() {
            assert_eq!(v, 3 * i as i64 + 100 + i as i64);
        }
    }

    #[test]
    fn dfg_matches_kernel_for_axpy() {
        let k = axpy();
        let dfg = lower_kernel(&k, &LoweringOptions::default()).unwrap();
        check_lowering_equivalence(&k, &dfg, &seeded_memory(&k)).unwrap();
    }

    #[test]
    fn dfg_matches_kernel_for_reduction() {
        let k = dot();
        let dfg = lower_kernel(&k, &LoweringOptions::default()).unwrap();
        check_lowering_equivalence(&k, &dfg, &seeded_memory(&k)).unwrap();
    }

    #[test]
    fn dfg_matches_kernel_after_unrolling() {
        let k = dot();
        for factor in [2, 4] {
            let dfg = lower_kernel(&k, &LoweringOptions::unrolled(factor)).unwrap();
            check_lowering_equivalence(&k, &dfg, &seeded_memory(&k)).unwrap();
        }
    }

    #[test]
    fn memory_wraps_addresses() {
        let mut mem = MemoryImage::new();
        mem.insert("x", vec![1, 2, 3, 4]);
        assert_eq!(mem.read("x", 5), 2);
        assert_eq!(mem.read("x", -1), 4);
        mem.write("x", 6, 9);
        assert_eq!(mem.read("x", 2), 9);
    }

    #[test]
    fn unknown_array_reads_zero() {
        let mem = MemoryImage::new();
        assert_eq!(mem.read("nope", 3), 0);
    }

    #[test]
    fn iterator_loads_return_loop_index() {
        let kernel = KernelBuilder::new("iota")
            .loop_var("i", 5)
            .array("y", 5)
            .store("y", AffineExpr::var(0), Expr::Index(0))
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        let mut mem = MemoryImage::for_kernel(&kernel, |_, _| 0);
        run_dfg(&dfg, &mut mem).unwrap();
        assert_eq!(mem.array("y").unwrap(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn two_dimensional_kernel_equivalence() {
        let kernel = KernelBuilder::new("outer_product")
            .loop_var("i", 4)
            .loop_var("j", 4)
            .array("a", 4)
            .array("b", 4)
            .array("c", 16)
            .store(
                "c",
                AffineExpr::scaled_var(0, 4).add(&AffineExpr::var(1)),
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(1)),
                ),
            )
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        check_lowering_equivalence(&kernel, &dfg, &seeded_memory(&kernel)).unwrap();
    }

    #[test]
    fn register_carried_recurrence_in_dfg() {
        // Hand-built accumulator: acc_t = acc_{t-1} + x[i], stored each
        // iteration; after 4 iterations of x = [1,2,3,4] the store sequence is
        // 1, 3, 6, 10.
        let mut dfg = Dfg::new("acc");
        let ld = dfg.add_load("ld", "x", AffineExpr::var(0));
        let acc = dfg.add_compute_node("acc", Op::Add);
        dfg.add_edge(ld, acc, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(acc, acc, Operand::Rhs, EdgeKind::Recurrence { distance: 1 })
            .unwrap();
        let st = dfg.add_store("st", "out", AffineExpr::var(0));
        dfg.add_edge(acc, st, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.set_iteration_space(vec![crate::graph::IterationDim {
            name: "i".into(),
            trip_count: 4,
        }]);
        let mut mem = MemoryImage::new();
        mem.insert("x", vec![1, 2, 3, 4]);
        mem.insert("out", vec![0; 4]);
        run_dfg(&dfg, &mut mem).unwrap();
        assert_eq!(mem.array("out").unwrap(), &[1, 3, 6, 10]);
    }
}
