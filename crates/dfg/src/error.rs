//! Error types shared across the DFG crate.

use std::fmt;

/// Errors produced while building, validating or interpreting dataflow graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// A node id referenced an entry that does not exist in the graph.
    UnknownNode(u32),
    /// An edge id referenced an entry that does not exist in the graph.
    UnknownEdge(u32),
    /// An operand slot of a node was driven by more than one data edge.
    OperandConflict {
        /// Node whose operand is over-driven.
        node: u32,
        /// Human-readable operand name (`"lhs"` / `"rhs"`).
        operand: &'static str,
    },
    /// A node is missing a required input.
    MissingOperand {
        /// Node whose operand is missing.
        node: u32,
        /// Human-readable operand name.
        operand: &'static str,
    },
    /// The graph contains a cycle made purely of same-iteration data edges.
    DataCycle,
    /// An edge refers to an operand the destination operation cannot accept.
    InvalidOperand {
        /// Destination node.
        node: u32,
        /// Explanation of the arity violation.
        reason: String,
    },
    /// A kernel failed semantic checks before lowering.
    InvalidKernel(String),
    /// Interpretation failed (e.g. out-of-bounds array access).
    Interpretation(String),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            DfgError::UnknownEdge(id) => write!(f, "unknown edge id {id}"),
            DfgError::OperandConflict { node, operand } => {
                write!(
                    f,
                    "operand {operand} of node {node} is driven more than once"
                )
            }
            DfgError::MissingOperand { node, operand } => {
                write!(f, "operand {operand} of node {node} is not driven")
            }
            DfgError::DataCycle => write!(f, "data edges form a same-iteration cycle"),
            DfgError::InvalidOperand { node, reason } => {
                write!(f, "invalid operand on node {node}: {reason}")
            }
            DfgError::InvalidKernel(msg) => write!(f, "invalid kernel: {msg}"),
            DfgError::Interpretation(msg) => write!(f, "interpretation error: {msg}"),
        }
    }
}

impl std::error::Error for DfgError {}
