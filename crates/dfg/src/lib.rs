//! Dataflow-graph (DFG) intermediate representation for the Plaid CGRA
//! reproduction.
//!
//! This crate provides the program-side substrate of the Plaid toolchain:
//!
//! * [`op`] — the operation set supported by CGRA functional units
//!   (16-bit ALU operations plus loads and stores handled by the ALSU).
//! * [`graph`] — the [`Dfg`] itself: nodes, data edges, inter-iteration
//!   (recurrence) edges, structural queries and validation.
//! * [`kernel`] — a small loop-nest kernel IR standing in for the paper's
//!   annotated C kernels, with affine array accesses and reductions.
//! * [`lower`] — DFG generation from the kernel IR, including loop unrolling.
//! * [`interp`] — reference interpreters for both the kernel IR and the DFG,
//!   used to functionally verify mappings produced further up the stack.
//! * [`adjacency`] — a per-node incident-edge index built once per graph,
//!   giving mappers `O(degree)` edge queries in their move loops.
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! # Example
//!
//! ```
//! use plaid_dfg::graph::{Dfg, EdgeKind, Operand};
//! use plaid_dfg::op::Op;
//!
//! // Build the highlighted sub-DFG of Figure 4 in the paper by hand:
//! // n1 = b[i] * k, n2 = a[i] * j, n3 = n1 + n2.
//! let mut dfg = Dfg::new("figure4");
//! let b = dfg.add_load("b_i", "b", plaid_dfg::AffineExpr::var(0));
//! let a = dfg.add_load("a_i", "a", plaid_dfg::AffineExpr::var(0));
//! let n1 = dfg.add_compute_node("n1", Op::Mul);
//! let n2 = dfg.add_compute_node("n2", Op::Mul);
//! let n3 = dfg.add_compute_node("n3", Op::Add);
//! dfg.set_immediate(n1, 4).unwrap(); // * k
//! dfg.set_immediate(n2, 2).unwrap(); // * j
//! dfg.add_edge(b, n1, Operand::Lhs, EdgeKind::Data).unwrap();
//! dfg.add_edge(a, n2, Operand::Lhs, EdgeKind::Data).unwrap();
//! dfg.add_edge(n1, n3, Operand::Lhs, EdgeKind::Data).unwrap();
//! dfg.add_edge(n2, n3, Operand::Rhs, EdgeKind::Data).unwrap();
//! assert_eq!(dfg.node_count(), 5);
//! assert!(dfg.validate_structure().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod dot;
pub mod error;
pub mod graph;
pub mod interp;
pub mod kernel;
pub mod lower;
pub mod op;

pub use adjacency::Adjacency;
pub use error::DfgError;
pub use graph::{Dfg, DfgEdge, DfgNode, EdgeId, EdgeKind, NodeId, Operand};
pub use kernel::{AffineExpr, ArrayDecl, Expr, Kernel, KernelBuilder, LoopVar, Stmt};
pub use lower::{lower_kernel, LoweringOptions};
pub use op::{Op, OpClass};
