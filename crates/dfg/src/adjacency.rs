//! Precomputed per-node edge adjacency.
//!
//! [`Dfg`]'s structural queries (`in_edges`, `out_edges`, incident-edge
//! scans) walk the full edge list on every call, which is fine for one-shot
//! analyses but quadratic inside a mapper's move loop: a simulated-annealing
//! move rips up one node and touches only its incident edges, yet pays
//! `O(E)` to find them. An [`Adjacency`] is built once per graph in `O(V+E)`
//! and answers the same queries in `O(degree)`, preserving the exact
//! edge-id ordering the linear scans produce so search results are
//! bit-identical either way.

use crate::graph::{Dfg, EdgeId, NodeId};

/// Per-node incident-edge index of a [`Dfg`], frozen at construction.
///
/// All edge lists are in ascending edge-id order — the same order the
/// corresponding `Dfg` scans (`in_edges`, `out_edges`, and an
/// `edges().filter(src == n || dst == n)` incident scan) yield — so code can
/// switch between the two forms without changing iteration order. Self-loop
/// edges (`src == dst`, possible for recurrences) appear once in `incident`
/// but in both `ins` and `outs`, matching the scans they replace.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    ins: Vec<Vec<EdgeId>>,
    outs: Vec<Vec<EdgeId>>,
    incident: Vec<Vec<EdgeId>>,
    data_carrying_edges: usize,
}

impl Adjacency {
    /// Builds the index for `dfg` in one pass over its edges.
    pub fn of(dfg: &Dfg) -> Self {
        let n = dfg.node_count();
        let mut adj = Adjacency {
            ins: vec![Vec::new(); n],
            outs: vec![Vec::new(); n],
            incident: vec![Vec::new(); n],
            data_carrying_edges: 0,
        };
        for edge in dfg.edges() {
            adj.outs[edge.src.0 as usize].push(edge.id);
            adj.ins[edge.dst.0 as usize].push(edge.id);
            adj.incident[edge.src.0 as usize].push(edge.id);
            if edge.dst != edge.src {
                adj.incident[edge.dst.0 as usize].push(edge.id);
            }
            if dfg.edge_carries_data(edge) {
                adj.data_carrying_edges += 1;
            }
        }
        adj
    }

    /// Edges arriving at `node`, ascending by edge id.
    pub fn ins(&self, node: NodeId) -> &[EdgeId] {
        &self.ins[node.0 as usize]
    }

    /// Edges leaving `node`, ascending by edge id.
    pub fn outs(&self, node: NodeId) -> &[EdgeId] {
        &self.outs[node.0 as usize]
    }

    /// Edges touching `node` at either endpoint, ascending by edge id
    /// (self-loops listed once).
    pub fn incident(&self, node: NodeId) -> &[EdgeId] {
        &self.incident[node.0 as usize]
    }

    /// Number of edges that transport a value between functional units
    /// (see [`Dfg::edge_carries_data`]).
    pub fn data_carrying_edges(&self) -> usize {
        self.data_carrying_edges
    }

    /// Number of nodes the index was built for.
    pub fn node_count(&self) -> usize {
        self.incident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, Operand};
    use crate::kernel::AffineExpr;
    use crate::op::Op;

    fn sample() -> Dfg {
        let mut dfg = Dfg::new("adj");
        let ld = dfg.add_load("ld", "x", AffineExpr::var(0));
        let a = dfg.add_compute_node("a", Op::Add);
        let b = dfg.add_compute_node("b", Op::Mul);
        dfg.set_immediate(a, 1).unwrap();
        dfg.set_immediate(b, 2).unwrap();
        dfg.add_edge(ld, a, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(a, b, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(b, b, Operand::Rhs, EdgeKind::Recurrence { distance: 1 })
            .unwrap();
        dfg
    }

    #[test]
    fn matches_linear_scans_on_every_node() {
        let dfg = sample();
        let adj = Adjacency::of(&dfg);
        for node in dfg.node_ids() {
            let ins: Vec<EdgeId> = dfg.in_edges(node).map(|e| e.id).collect();
            let outs: Vec<EdgeId> = dfg.out_edges(node).map(|e| e.id).collect();
            let incident: Vec<EdgeId> = dfg
                .edges()
                .filter(|e| e.src == node || e.dst == node)
                .map(|e| e.id)
                .collect();
            assert_eq!(adj.ins(node), ins.as_slice());
            assert_eq!(adj.outs(node), outs.as_slice());
            assert_eq!(adj.incident(node), incident.as_slice());
        }
    }

    #[test]
    fn self_loop_listed_once_in_incident() {
        let dfg = sample();
        let adj = Adjacency::of(&dfg);
        let b = NodeId(2);
        assert_eq!(adj.incident(b).len(), 2); // a->b plus the self recurrence
        assert_eq!(adj.ins(b).len(), 2);
        assert_eq!(adj.outs(b).len(), 1);
    }

    #[test]
    fn counts_data_carrying_edges() {
        let dfg = sample();
        let adj = Adjacency::of(&dfg);
        let expect = dfg.edges().filter(|e| dfg.edge_carries_data(e)).count();
        assert_eq!(adj.data_carrying_edges(), expect);
        assert_eq!(adj.node_count(), dfg.node_count());
    }
}
