//! Operation set of the modelled CGRA functional units.
//!
//! The paper's Plaid Collective Unit (PCU) pairs three 16-bit ALUs with one
//! Arithmetic-Load-Store Unit (ALSU). The ALUs support "ADD, MUL, SHIFT and
//! various bit-wise operations, totalling 15 operations"; loads and stores are
//! handled exclusively by the ALSU, which also absorbs predication and
//! routing-challenged standalone nodes.

use std::fmt;

/// The operation performed by a DFG node.
///
/// The first fifteen variants are ALU (compute) operations; `Load` and
/// `Store` are memory operations executed on ALSUs (or, on the baseline
/// CGRAs, on any PE with a memory port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// Two's complement addition.
    Add,
    /// Two's complement subtraction.
    Sub,
    /// 16-bit multiplication (low half kept).
    Mul,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Bit-wise AND.
    And,
    /// Bit-wise OR.
    Or,
    /// Bit-wise XOR.
    Xor,
    /// Bit-wise NOT (unary).
    Not,
    /// Arithmetic negation (unary).
    Neg,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
    /// Equality comparison producing 0 or 1.
    CmpEq,
    /// Signed less-than comparison producing 0 or 1.
    CmpLt,
    /// Absolute value (unary).
    Abs,
    /// Memory load from the scratch-pad memory.
    Load,
    /// Memory store to the scratch-pad memory.
    Store,
}

/// Broad classification of operations used by the mapper and the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Executes on an ALU (a "compute node" in Table 2 of the paper).
    Compute,
    /// Executes on an ALSU / memory port (loads and stores).
    Memory,
}

impl Op {
    /// All ALU operations, in a stable order.
    pub const COMPUTE_OPS: [Op; 15] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Shl,
        Op::Shr,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Not,
        Op::Neg,
        Op::Min,
        Op::Max,
        Op::CmpEq,
        Op::CmpLt,
        Op::Abs,
    ];

    /// Returns the class of functional unit required by this operation.
    pub fn class(self) -> OpClass {
        match self {
            Op::Load | Op::Store => OpClass::Memory,
            _ => OpClass::Compute,
        }
    }

    /// Whether the operation executes on an ALU.
    pub fn is_compute(self) -> bool {
        self.class() == OpClass::Compute
    }

    /// Whether the operation accesses the scratch-pad memory.
    pub fn is_memory(self) -> bool {
        self.class() == OpClass::Memory
    }

    /// Number of data operands the operation consumes.
    ///
    /// Loads take one operand slot (the address is an affine function of the
    /// loop indices carried on the node itself, so the data operand is unused
    /// and arity is 0); stores take one value operand.
    pub fn arity(self) -> usize {
        match self {
            Op::Not | Op::Neg | Op::Abs => 1,
            Op::Load => 0,
            Op::Store => 1,
            _ => 2,
        }
    }

    /// Whether the operation is commutative in its two operands.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Op::Add | Op::Mul | Op::And | Op::Or | Op::Xor | Op::Min | Op::Max | Op::CmpEq
        )
    }

    /// Evaluate the operation on 16-bit values represented as `i64`.
    ///
    /// Values are wrapped to 16 bits after every operation, mirroring the
    /// 16-bit datapath of the modelled architectures. Unary operations ignore
    /// `rhs`.
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        let wrap = |v: i64| (v as i16) as i64;
        let l = wrap(lhs);
        let r = wrap(rhs);
        let out = match self {
            Op::Add => l.wrapping_add(r),
            Op::Sub => l.wrapping_sub(r),
            Op::Mul => l.wrapping_mul(r),
            Op::Shl => l.wrapping_shl((r & 0xf) as u32),
            Op::Shr => i64::from((l as u16) >> ((r & 0xf) as u32)),
            Op::And => l & r,
            Op::Or => l | r,
            Op::Xor => l ^ r,
            Op::Not => !l,
            Op::Neg => l.wrapping_neg(),
            Op::Min => l.min(r),
            Op::Max => l.max(r),
            Op::CmpEq => i64::from(l == r),
            Op::CmpLt => i64::from(l < r),
            Op::Abs => l.wrapping_abs(),
            Op::Load | Op::Store => l,
        };
        wrap(out)
    }

    /// Short mnemonic used in DOT dumps and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Not => "not",
            Op::Neg => "neg",
            Op::Min => "min",
            Op::Max => "max",
            Op::CmpEq => "cmpeq",
            Op::CmpLt => "cmplt",
            Op::Abs => "abs",
            Op::Load => "load",
            Op::Store => "store",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpClass::Compute => f.write_str("compute"),
            OpClass::Memory => f.write_str("memory"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_op_list_has_fifteen_entries() {
        assert_eq!(Op::COMPUTE_OPS.len(), 15);
        for op in Op::COMPUTE_OPS {
            assert!(op.is_compute());
            assert!(!op.is_memory());
        }
    }

    #[test]
    fn memory_ops_are_classified_as_memory() {
        assert!(Op::Load.is_memory());
        assert!(Op::Store.is_memory());
        assert_eq!(Op::Load.class(), OpClass::Memory);
    }

    #[test]
    fn arity_matches_operand_count() {
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Not.arity(), 1);
        assert_eq!(Op::Neg.arity(), 1);
        assert_eq!(Op::Abs.arity(), 1);
        assert_eq!(Op::Load.arity(), 0);
        assert_eq!(Op::Store.arity(), 1);
    }

    #[test]
    fn eval_wraps_to_sixteen_bits() {
        assert_eq!(Op::Add.eval(0x7fff, 1), -0x8000);
        assert_eq!(Op::Mul.eval(0x100, 0x100), 0);
        assert_eq!(Op::Shl.eval(1, 15), -0x8000);
    }

    #[test]
    fn eval_basic_arithmetic() {
        assert_eq!(Op::Add.eval(2, 3), 5);
        assert_eq!(Op::Sub.eval(2, 3), -1);
        assert_eq!(Op::Mul.eval(7, 6), 42);
        assert_eq!(Op::Min.eval(-4, 9), -4);
        assert_eq!(Op::Max.eval(-4, 9), 9);
        assert_eq!(Op::CmpEq.eval(5, 5), 1);
        assert_eq!(Op::CmpLt.eval(4, 5), 1);
        assert_eq!(Op::CmpLt.eval(6, 5), 0);
        assert_eq!(Op::Abs.eval(-12, 0), 12);
        assert_eq!(Op::Neg.eval(12, 0), -12);
        assert_eq!(Op::Not.eval(0, 0), -1);
    }

    #[test]
    fn shr_is_logical_on_sixteen_bits() {
        assert_eq!(Op::Shr.eval(-1, 1), 0x7fff);
        assert_eq!(Op::Shr.eval(16, 4), 1);
    }

    #[test]
    fn commutativity_flags() {
        assert!(Op::Add.is_commutative());
        assert!(Op::Mul.is_commutative());
        assert!(!Op::Sub.is_commutative());
        assert!(!Op::Shl.is_commutative());
        assert!(!Op::CmpLt.is_commutative());
    }

    #[test]
    fn display_uses_mnemonics() {
        assert_eq!(Op::Add.to_string(), "add");
        assert_eq!(Op::Load.to_string(), "load");
        assert_eq!(OpClass::Compute.to_string(), "compute");
    }
}
