//! Loop-nest kernel IR.
//!
//! The paper feeds annotated C loops (Figure 4) through the Morpher toolchain
//! to obtain DFGs. This module provides the equivalent front end for the
//! reproduction: a compact loop-nest IR with affine array accesses, scalar
//! temporaries and reduction statements. [`crate::lower`] turns a [`Kernel`]
//! into a [`crate::Dfg`]; [`crate::interp`] executes both representations so
//! the lowering (and later the mapping) can be functionally verified.

use std::collections::HashSet;

use crate::error::DfgError;
use crate::op::Op;

/// An affine expression `sum(coeff_k * loop_var_k) + constant` over the loop
/// iteration variables of a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineExpr {
    /// `(loop_var_index, coefficient)` pairs; indices refer to [`Kernel::loops`].
    pub coeffs: Vec<(usize, i64)>,
    /// Constant term.
    pub constant: i64,
}

impl AffineExpr {
    /// A constant affine expression.
    pub fn constant(value: i64) -> Self {
        AffineExpr {
            coeffs: Vec::new(),
            constant: value,
        }
    }

    /// The affine expression `1 * loop_var`.
    pub fn var(loop_var: usize) -> Self {
        AffineExpr {
            coeffs: vec![(loop_var, 1)],
            constant: 0,
        }
    }

    /// The affine expression `coeff * loop_var`.
    pub fn scaled_var(loop_var: usize, coeff: i64) -> Self {
        AffineExpr {
            coeffs: vec![(loop_var, coeff)],
            constant: 0,
        }
    }

    /// Adds another affine expression to this one.
    // Not `std::ops::Add`: the by-reference `other` and builder-style `self`
    // intentionally differ from the trait's signature.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, other: &AffineExpr) -> Self {
        for &(v, c) in &other.coeffs {
            self.add_term(v, c);
        }
        self.constant += other.constant;
        self
    }

    /// Adds a constant offset.
    pub fn offset(mut self, delta: i64) -> Self {
        self.constant += delta;
        self
    }

    /// Adds `coeff * loop_var` to the expression.
    pub fn add_term(&mut self, loop_var: usize, coeff: i64) {
        if coeff == 0 {
            return;
        }
        if let Some(entry) = self.coeffs.iter_mut().find(|(v, _)| *v == loop_var) {
            entry.1 += coeff;
            if entry.1 == 0 {
                self.coeffs.retain(|(v, _)| *v != loop_var);
            }
        } else {
            self.coeffs.push((loop_var, coeff));
        }
    }

    /// Evaluates the expression for a concrete iteration point.
    ///
    /// Loop variables beyond the length of `indices` evaluate to 0.
    pub fn eval(&self, indices: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(v, c) in &self.coeffs {
            acc += c * indices.get(v).copied().unwrap_or(0);
        }
        acc
    }

    /// Substitutes loop variable `var` with `scale * var + shift`
    /// (used by loop unrolling).
    pub fn substitute(&self, var: usize, scale: i64, shift: i64) -> Self {
        let mut out = AffineExpr {
            coeffs: Vec::new(),
            constant: self.constant,
        };
        for &(v, c) in &self.coeffs {
            if v == var {
                out.add_term(v, c * scale);
                out.constant += c * shift;
            } else {
                out.add_term(v, c);
            }
        }
        out
    }

    /// Highest loop-variable index referenced, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.coeffs.iter().map(|&(v, _)| v).max()
    }
}

/// One loop of the kernel's loop nest (outermost first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopVar {
    /// Loop variable name (e.g. `"i"`).
    pub name: String,
    /// Trip count of the loop.
    pub trip_count: u64,
}

/// Declaration of an array living in the scratch-pad memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Number of 16-bit elements.
    pub len: usize,
}

/// A scalar expression in the kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Read `array[index]` from the scratch-pad memory.
    Load {
        /// Array name.
        array: String,
        /// Affine index expression.
        index: AffineExpr,
    },
    /// Reference to a scalar temporary defined earlier in the body by
    /// [`Stmt::Let`].
    Scalar(String),
    /// The current value of a loop variable, used as data
    /// (e.g. `a[i] * j` in Figure 4 of the paper).
    Index(usize),
    /// An integer literal.
    Const(i64),
    /// A unary ALU operation.
    Unary(Op, Box<Expr>),
    /// A binary ALU operation.
    Binary(Op, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a load.
    pub fn load(array: impl Into<String>, index: AffineExpr) -> Self {
        Expr::Load {
            array: array.into(),
            index,
        }
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(op: Op, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a unary expression.
    pub fn unary(op: Op, inner: Expr) -> Self {
        Expr::Unary(op, Box::new(inner))
    }

    /// Number of ALU operations in this expression tree.
    pub fn compute_op_count(&self) -> usize {
        match self {
            Expr::Unary(_, a) => 1 + a.compute_op_count(),
            Expr::Binary(_, a, b) => 1 + a.compute_op_count() + b.compute_op_count(),
            _ => 0,
        }
    }

    fn substitute_var(&self, var: usize, scale: i64, shift: i64, suffix: &str) -> Expr {
        match self {
            Expr::Load { array, index } => Expr::Load {
                array: array.clone(),
                index: index.substitute(var, scale, shift),
            },
            Expr::Scalar(name) => Expr::Scalar(format!("{name}{suffix}")),
            Expr::Index(v) => {
                if *v == var {
                    // j -> factor*j + k, expressed as an affine combination of
                    // the (rescaled) loop variable plus the replica offset.
                    Expr::Binary(
                        Op::Add,
                        Box::new(Expr::Binary(
                            Op::Mul,
                            Box::new(Expr::Index(*v)),
                            Box::new(Expr::Const(scale)),
                        )),
                        Box::new(Expr::Const(shift)),
                    )
                } else {
                    Expr::Index(*v)
                }
            }
            Expr::Const(c) => Expr::Const(*c),
            Expr::Unary(op, a) => {
                Expr::Unary(*op, Box::new(a.substitute_var(var, scale, shift, suffix)))
            }
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute_var(var, scale, shift, suffix)),
                Box::new(b.substitute_var(var, scale, shift, suffix)),
            ),
        }
    }
}

/// A statement in the kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Define a scalar temporary usable by later statements in the same
    /// iteration.
    Let {
        /// Temporary name.
        name: String,
        /// Defining expression.
        value: Expr,
    },
    /// `array[index] = value`.
    Store {
        /// Destination array.
        array: String,
        /// Affine index expression.
        index: AffineExpr,
        /// Stored value.
        value: Expr,
    },
    /// `array[index] = array[index] <op> value` — a reduction carried through
    /// the scratch-pad memory (creates an inter-iteration recurrence).
    Accumulate {
        /// Destination array.
        array: String,
        /// Affine index expression.
        index: AffineExpr,
        /// Reduction operation (usually [`Op::Add`]).
        op: Op,
        /// Value combined into the accumulator.
        value: Expr,
    },
}

impl Stmt {
    fn substitute_var(&self, var: usize, scale: i64, shift: i64, suffix: &str) -> Stmt {
        match self {
            Stmt::Let { name, value } => Stmt::Let {
                name: format!("{name}{suffix}"),
                value: value.substitute_var(var, scale, shift, suffix),
            },
            Stmt::Store {
                array,
                index,
                value,
            } => Stmt::Store {
                array: array.clone(),
                index: index.substitute(var, scale, shift),
                value: value.substitute_var(var, scale, shift, suffix),
            },
            Stmt::Accumulate {
                array,
                index,
                op,
                value,
            } => Stmt::Accumulate {
                array: array.clone(),
                index: index.substitute(var, scale, shift),
                op: *op,
                value: value.substitute_var(var, scale, shift, suffix),
            },
        }
    }
}

/// A kernel: a perfect loop nest with a straight-line body of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (e.g. `"gemm"`).
    pub name: String,
    /// Loop nest, outermost first.
    pub loops: Vec<LoopVar>,
    /// Arrays referenced by the body.
    pub arrays: Vec<ArrayDecl>,
    /// Straight-line body executed once per innermost iteration.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Innermost loop index (the dimension that unrolling targets).
    pub fn innermost(&self) -> usize {
        self.loops.len().saturating_sub(1)
    }

    /// Total number of innermost-body executions.
    pub fn total_iterations(&self) -> u64 {
        self.loops
            .iter()
            .map(|l| l.trip_count.max(1))
            .product::<u64>()
            .max(1)
    }

    /// Looks up an array declaration by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Checks kernel well-formedness: referenced arrays are declared, scalar
    /// temporaries are defined before use, loop-variable references are in
    /// range, and trip counts are non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::InvalidKernel`] describing the first violation.
    pub fn validate(&self) -> Result<(), DfgError> {
        if self.loops.is_empty() {
            return Err(DfgError::InvalidKernel("kernel has no loops".into()));
        }
        for l in &self.loops {
            if l.trip_count == 0 {
                return Err(DfgError::InvalidKernel(format!(
                    "loop {} has zero trip count",
                    l.name
                )));
            }
        }
        let mut defined: HashSet<String> = HashSet::new();
        for stmt in &self.body {
            let (value, target_array, index) = match stmt {
                Stmt::Let { name, value } => {
                    let result = self.check_expr(value, &defined);
                    defined.insert(name.clone());
                    (result, None, None)
                }
                Stmt::Store {
                    array,
                    index,
                    value,
                } => (self.check_expr(value, &defined), Some(array), Some(index)),
                Stmt::Accumulate {
                    array,
                    index,
                    value,
                    op,
                } => {
                    if op.arity() != 2 {
                        return Err(DfgError::InvalidKernel(format!(
                            "accumulate op {op} must be binary"
                        )));
                    }
                    (self.check_expr(value, &defined), Some(array), Some(index))
                }
            };
            value?;
            if let Some(array) = target_array {
                if self.array(array).is_none() {
                    return Err(DfgError::InvalidKernel(format!("undeclared array {array}")));
                }
            }
            if let Some(index) = index {
                if let Some(v) = index.max_var() {
                    if v >= self.loops.len() {
                        return Err(DfgError::InvalidKernel(format!(
                            "index references loop variable {v} out of range"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_expr(&self, expr: &Expr, defined: &HashSet<String>) -> Result<(), DfgError> {
        match expr {
            Expr::Load { array, index } => {
                if self.array(array).is_none() {
                    return Err(DfgError::InvalidKernel(format!("undeclared array {array}")));
                }
                if let Some(v) = index.max_var() {
                    if v >= self.loops.len() {
                        return Err(DfgError::InvalidKernel(format!(
                            "index references loop variable {v} out of range"
                        )));
                    }
                }
                Ok(())
            }
            Expr::Scalar(name) => {
                if defined.contains(name) {
                    Ok(())
                } else {
                    Err(DfgError::InvalidKernel(format!(
                        "scalar {name} used before definition"
                    )))
                }
            }
            Expr::Index(v) => {
                if *v >= self.loops.len() {
                    Err(DfgError::InvalidKernel(format!(
                        "loop variable index {v} out of range"
                    )))
                } else {
                    Ok(())
                }
            }
            Expr::Const(_) => Ok(()),
            Expr::Unary(op, a) => {
                if op.arity() != 1 {
                    return Err(DfgError::InvalidKernel(format!("{op} is not unary")));
                }
                self.check_expr(a, defined)
            }
            Expr::Binary(op, a, b) => {
                if op.arity() != 2 {
                    return Err(DfgError::InvalidKernel(format!("{op} is not binary")));
                }
                self.check_expr(a, defined)?;
                self.check_expr(b, defined)
            }
        }
    }

    /// Unrolls the innermost loop by `factor`, replicating the body and
    /// rewriting index expressions, exactly as the paper's `_u2`/`_u4`
    /// workload variants do.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::InvalidKernel`] if `factor` is zero or does not
    /// divide the innermost trip count.
    pub fn unroll_innermost(&self, factor: u64) -> Result<Kernel, DfgError> {
        if factor == 0 {
            return Err(DfgError::InvalidKernel(
                "unroll factor must be non-zero".into(),
            ));
        }
        if factor == 1 {
            return Ok(self.clone());
        }
        let inner = self.innermost();
        let trip = self.loops[inner].trip_count;
        if !trip.is_multiple_of(factor) {
            return Err(DfgError::InvalidKernel(format!(
                "unroll factor {factor} does not divide trip count {trip}"
            )));
        }
        let mut loops = self.loops.clone();
        loops[inner].trip_count = trip / factor;
        let mut body = Vec::with_capacity(self.body.len() * factor as usize);
        for k in 0..factor {
            let suffix = format!("_u{k}");
            for stmt in &self.body {
                body.push(stmt.substitute_var(inner, factor as i64, k as i64, &suffix));
            }
        }
        Ok(Kernel {
            name: format!("{}_u{}", self.name, factor),
            loops,
            arrays: self.arrays.clone(),
            body,
        })
    }
}

/// Builder for [`Kernel`] values.
///
/// ```
/// use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
/// use plaid_dfg::op::Op;
///
/// let kernel = KernelBuilder::new("saxpy")
///     .loop_var("i", 16)
///     .array("x", 16)
///     .array("y", 16)
///     .store(
///         "y",
///         AffineExpr::var(0),
///         Expr::binary(
///             Op::Add,
///             Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
///             Expr::load("y", AffineExpr::var(0)),
///         ),
///     )
///     .build()
///     .unwrap();
/// assert_eq!(kernel.total_iterations(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    kernel: Kernel,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            kernel: Kernel {
                name: name.into(),
                loops: Vec::new(),
                arrays: Vec::new(),
                body: Vec::new(),
            },
        }
    }

    /// Appends a loop (outermost first).
    pub fn loop_var(mut self, name: impl Into<String>, trip_count: u64) -> Self {
        self.kernel.loops.push(LoopVar {
            name: name.into(),
            trip_count,
        });
        self
    }

    /// Declares a scratch-pad array.
    pub fn array(mut self, name: impl Into<String>, len: usize) -> Self {
        self.kernel.arrays.push(ArrayDecl {
            name: name.into(),
            len,
        });
        self
    }

    /// Appends a scalar temporary definition.
    pub fn let_scalar(mut self, name: impl Into<String>, value: Expr) -> Self {
        self.kernel.body.push(Stmt::Let {
            name: name.into(),
            value,
        });
        self
    }

    /// Appends a store statement.
    pub fn store(mut self, array: impl Into<String>, index: AffineExpr, value: Expr) -> Self {
        self.kernel.body.push(Stmt::Store {
            array: array.into(),
            index,
            value,
        });
        self
    }

    /// Appends an accumulate (reduction) statement.
    pub fn accumulate(
        mut self,
        array: impl Into<String>,
        index: AffineExpr,
        op: Op,
        value: Expr,
    ) -> Self {
        self.kernel.body.push(Stmt::Accumulate {
            array: array.into(),
            index,
            op,
            value,
        });
        self
    }

    /// Validates and returns the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::InvalidKernel`] if the kernel fails validation.
    pub fn build(self) -> Result<Kernel, DfgError> {
        self.kernel.validate()?;
        Ok(self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_kernel() -> Kernel {
        KernelBuilder::new("axpy")
            .loop_var("i", 8)
            .array("x", 8)
            .array("y", 8)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn affine_eval() {
        let mut e = AffineExpr::var(0);
        e.add_term(1, 4);
        let e = e.offset(2);
        assert_eq!(e.eval(&[3, 5]), 3 + 20 + 2);
        assert_eq!(AffineExpr::constant(7).eval(&[]), 7);
    }

    #[test]
    fn affine_add_merges_terms() {
        let a = AffineExpr::scaled_var(0, 2);
        let b = AffineExpr::scaled_var(0, 3).add(&AffineExpr::var(1));
        let c = a.add(&b);
        assert_eq!(c.eval(&[1, 1]), 6);
        assert_eq!(c.coeffs.len(), 2);
    }

    #[test]
    fn affine_substitute_rescales() {
        // i*4 + 1 with i -> 2*i + 1 becomes i*8 + 5.
        let e = AffineExpr::scaled_var(0, 4).offset(1);
        let s = e.substitute(0, 2, 1);
        assert_eq!(s.eval(&[0]), 5);
        assert_eq!(s.eval(&[1]), 13);
    }

    #[test]
    fn affine_cancelling_terms_are_removed() {
        let mut e = AffineExpr::var(0);
        e.add_term(0, -1);
        assert!(e.coeffs.is_empty());
        assert_eq!(e.eval(&[42]), 0);
    }

    #[test]
    fn kernel_validates() {
        let k = simple_kernel();
        assert!(k.validate().is_ok());
        assert_eq!(k.total_iterations(), 8);
    }

    #[test]
    fn undeclared_array_rejected() {
        let err = KernelBuilder::new("bad")
            .loop_var("i", 4)
            .store("z", AffineExpr::var(0), Expr::Const(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, DfgError::InvalidKernel(_)));
    }

    #[test]
    fn scalar_use_before_definition_rejected() {
        let err = KernelBuilder::new("bad")
            .loop_var("i", 4)
            .array("y", 4)
            .store("y", AffineExpr::var(0), Expr::Scalar("t".into()))
            .build()
            .unwrap_err();
        assert!(matches!(err, DfgError::InvalidKernel(_)));
    }

    #[test]
    fn out_of_range_loop_var_rejected() {
        let err = KernelBuilder::new("bad")
            .loop_var("i", 4)
            .array("y", 4)
            .store("y", AffineExpr::var(1), Expr::Const(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, DfgError::InvalidKernel(_)));
    }

    #[test]
    fn unroll_divides_trip_count_and_replicates_body() {
        let k = simple_kernel();
        let u = k.unroll_innermost(2).unwrap();
        assert_eq!(u.loops[0].trip_count, 4);
        assert_eq!(u.body.len(), 2 * k.body.len());
        assert_eq!(u.name, "axpy_u2");
        assert_eq!(u.total_iterations(), 4);
    }

    #[test]
    fn unroll_rewrites_indices() {
        let k = simple_kernel();
        let u = k.unroll_innermost(2).unwrap();
        // Second replica must access 2*i + 1.
        if let Stmt::Store { index, .. } = &u.body[1] {
            assert_eq!(index.eval(&[0]), 1);
            assert_eq!(index.eval(&[3]), 7);
        } else {
            panic!("expected store");
        }
    }

    #[test]
    fn unroll_rejects_non_dividing_factor() {
        let k = simple_kernel();
        assert!(k.unroll_innermost(3).is_err());
        assert!(k.unroll_innermost(0).is_err());
    }

    #[test]
    fn unroll_factor_one_is_identity() {
        let k = simple_kernel();
        assert_eq!(k.unroll_innermost(1).unwrap(), k);
    }

    #[test]
    fn accumulate_requires_binary_op() {
        let err = KernelBuilder::new("bad")
            .loop_var("i", 4)
            .array("y", 4)
            .accumulate("y", AffineExpr::var(0), Op::Not, Expr::Const(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, DfgError::InvalidKernel(_)));
    }

    #[test]
    fn expr_compute_op_count() {
        let e = Expr::binary(
            Op::Add,
            Expr::binary(Op::Mul, Expr::Const(1), Expr::Const(2)),
            Expr::unary(Op::Neg, Expr::Const(3)),
        );
        assert_eq!(e.compute_op_count(), 3);
    }
}
