//! Graphviz (DOT) export of dataflow graphs.

use std::fmt::Write as _;

use crate::graph::{Dfg, EdgeKind};

/// Renders the DFG in Graphviz DOT syntax.
///
/// Compute nodes are drawn as ellipses, memory nodes as boxes; recurrence
/// edges are dashed and annotated with their iteration distance.
pub fn to_dot(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for node in dfg.nodes() {
        let shape = if node.is_memory() { "box" } else { "ellipse" };
        let imm = node
            .immediate
            .map(|v| format!("\\n#{v}"))
            .unwrap_or_default();
        let mem = node
            .access
            .as_ref()
            .map(|a| format!("\\n{}", a.array))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{}{}{}\", shape={}];",
            node.id, node.name, node.op, imm, mem, shape
        );
    }
    for edge in dfg.edges() {
        match edge.kind {
            EdgeKind::Data => {
                let _ = writeln!(out, "  {} -> {};", edge.src, edge.dst);
            }
            EdgeKind::Recurrence { distance } => {
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed, label=\"d={}\"];",
                    edge.src, edge.dst, distance
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Dfg, EdgeKind, Operand};
    use crate::kernel::AffineExpr;
    use crate::op::Op;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut dfg = Dfg::new("demo");
        let a = dfg.add_load("a", "x", AffineExpr::constant(0));
        let b = dfg.add_compute_node("b", Op::Add);
        dfg.set_immediate(b, 4).unwrap();
        dfg.add_edge(a, b, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(b, b, Operand::Rhs, EdgeKind::Recurrence { distance: 2 })
            .unwrap();
        let dot = to_dot(&dfg);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("d=2"));
        assert!(dot.contains("#4"));
        assert!(dot.contains("shape=box"));
    }
}
