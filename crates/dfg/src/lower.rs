//! DFG generation from the kernel IR.
//!
//! Lowering performs the job of the paper's "DFG gen" stage (Figure 1): each
//! innermost-loop body statement becomes a tree of load, compute and store
//! nodes, scalar temporaries become ordinary data edges, loop-index values
//! become loads from implicit iterator streams, and reductions become
//! load-op-store chains with an inter-iteration recurrence edge between the
//! store and the next iteration's load.

use std::collections::HashMap;

use crate::error::DfgError;
use crate::graph::{Dfg, EdgeKind, IterationDim, NodeId, Operand};
use crate::kernel::{Expr, Kernel, Stmt};
use crate::op::Op;

/// Name prefix of the implicit arrays that deliver loop-index values as data.
pub const ITERATOR_ARRAY_PREFIX: &str = "__iter_";

/// Options controlling DFG generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweringOptions {
    /// Unroll factor applied to the innermost loop before lowering.
    pub unroll: u64,
    /// Whether to reuse an existing load of the same `array[index]` within the
    /// body instead of emitting a fresh load node (simple CSE, on by default —
    /// the Morpher front end does the same).
    pub reuse_loads: bool,
}

impl Default for LoweringOptions {
    fn default() -> Self {
        LoweringOptions {
            unroll: 1,
            reuse_loads: true,
        }
    }
}

impl LoweringOptions {
    /// Options with a specific unroll factor and load reuse enabled.
    pub fn unrolled(factor: u64) -> Self {
        LoweringOptions {
            unroll: factor,
            ..Self::default()
        }
    }
}

/// Lowers a kernel into a dataflow graph.
///
/// # Errors
///
/// Returns an error if the kernel fails validation, the unroll factor is
/// invalid, or an internal graph-construction invariant is violated (the
/// latter indicates a bug in the lowering itself).
pub fn lower_kernel(kernel: &Kernel, options: &LoweringOptions) -> Result<Dfg, DfgError> {
    kernel.validate()?;
    let kernel = kernel.unroll_innermost(options.unroll)?;
    let mut ctx = LoweringContext {
        dfg: Dfg::new(kernel.name.clone()),
        scalars: HashMap::new(),
        loads: HashMap::new(),
        forwarded: HashMap::new(),
        stored_arrays: Vec::new(),
        acc_loads: Vec::new(),
        last_store: HashMap::new(),
        options: options.clone(),
        kernel: &kernel,
    };
    for stmt in &kernel.body {
        ctx.lower_stmt(stmt)?;
    }
    // Reductions: the first load of an accumulator array in the body observes
    // the *last* store to that array from the previous iteration.
    let acc_loads = std::mem::take(&mut ctx.acc_loads);
    for (array, load) in acc_loads {
        if let Some(&store) = ctx.last_store.get(&array) {
            ctx.dfg.add_edge(
                store,
                load,
                Operand::Lhs,
                EdgeKind::Recurrence { distance: 1 },
            )?;
        }
    }
    ctx.dfg.set_iteration_space(
        kernel
            .loops
            .iter()
            .map(|l| IterationDim {
                name: l.name.clone(),
                trip_count: l.trip_count,
            })
            .collect(),
    );
    ctx.dfg.validate_structure()?;
    Ok(ctx.dfg)
}

struct LoweringContext<'k> {
    dfg: Dfg,
    /// Scalar temporary name -> node producing its value.
    scalars: HashMap<String, NodeId>,
    /// (array, index signature) -> load node, for load reuse.
    loads: HashMap<(String, String), NodeId>,
    /// (array, index signature) -> node holding the most recently stored value
    /// within this body (store-to-load forwarding).
    forwarded: HashMap<(String, String), NodeId>,
    /// Arrays stored to earlier in this body.
    stored_arrays: Vec<String>,
    /// Reduction loads that need a recurrence edge from the body's final store.
    acc_loads: Vec<(String, NodeId)>,
    /// array name -> most recent store node (for reduction recurrences).
    last_store: HashMap<String, NodeId>,
    options: LoweringOptions,
    kernel: &'k Kernel,
}

impl LoweringContext<'_> {
    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), DfgError> {
        match stmt {
            Stmt::Let { name, value } => {
                let node = self.lower_expr(value)?;
                self.scalars.insert(name.clone(), node);
                Ok(())
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let value_node = self.lower_expr(value)?;
                let store = self
                    .dfg
                    .add_store(format!("st_{array}"), array.clone(), index.clone());
                self.dfg
                    .add_edge(value_node, store, Operand::Lhs, EdgeKind::Data)?;
                self.record_store(array, index, value_node, store);
                Ok(())
            }
            Stmt::Accumulate {
                array,
                index,
                op,
                value,
            } => {
                // out[idx] = out[idx] <op> value, carried through memory.
                // If an earlier statement in this body already stored to the
                // same location, forward its value instead of re-loading it.
                let signature = (array.clone(), format!("{:?}", index));
                let old_value = if let Some(&fwd) = self.forwarded.get(&signature) {
                    fwd
                } else {
                    let load =
                        self.dfg
                            .add_load(format!("ld_{array}_acc"), array.clone(), index.clone());
                    // If the body already stored to this array (at a possibly
                    // aliasing address), order the load after that store.
                    if let Some(&prev_store) = self.last_store.get(array.as_str()) {
                        self.dfg
                            .add_edge(prev_store, load, Operand::Lhs, EdgeKind::Data)?;
                    }
                    self.acc_loads.push((array.clone(), load));
                    load
                };
                let value_node = self.lower_expr(value)?;
                let combine = self.dfg.add_compute_node(format!("{op}_{array}_acc"), *op);
                self.dfg
                    .add_edge(old_value, combine, Operand::Lhs, EdgeKind::Data)?;
                self.dfg
                    .add_edge(value_node, combine, Operand::Rhs, EdgeKind::Data)?;
                let store =
                    self.dfg
                        .add_store(format!("st_{array}_acc"), array.clone(), index.clone());
                self.dfg
                    .add_edge(combine, store, Operand::Lhs, EdgeKind::Data)?;
                self.record_store(array, index, combine, store);
                Ok(())
            }
        }
    }

    /// Records the effects of a store on the forwarding / reuse caches.
    fn record_store(
        &mut self,
        array: &str,
        index: &crate::kernel::AffineExpr,
        value_node: NodeId,
        store: NodeId,
    ) {
        let signature = (array.to_string(), format!("{:?}", index));
        self.last_store.insert(array.to_string(), store);
        // Later loads of the same location observe the stored value directly.
        self.forwarded.retain(|(a, _), _| a != array);
        self.forwarded.insert(signature, value_node);
        // Cached loads of this array are stale.
        self.loads.retain(|(a, _), _| a != array);
        if !self.stored_arrays.iter().any(|a| a == array) {
            self.stored_arrays.push(array.to_string());
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<NodeId, DfgError> {
        match expr {
            Expr::Load { array, index } => {
                let signature = format!("{:?}", index);
                let key = (array.clone(), signature);
                if let Some(&node) = self.forwarded.get(&key) {
                    return Ok(node);
                }
                if self.options.reuse_loads {
                    if let Some(&node) = self.loads.get(&key) {
                        return Ok(node);
                    }
                }
                let node = self
                    .dfg
                    .add_load(format!("ld_{array}"), array.clone(), index.clone());
                // Order the load after any earlier store to the same array in
                // this body (conservative intra-iteration memory ordering).
                if self.stored_arrays.iter().any(|a| a == array) {
                    if let Some(&prev_store) = self.last_store.get(array.as_str()) {
                        self.dfg
                            .add_edge(prev_store, node, Operand::Lhs, EdgeKind::Data)?;
                    }
                }
                if self.options.reuse_loads {
                    self.loads.insert(key, node);
                }
                Ok(node)
            }
            Expr::Scalar(name) => self.scalars.get(name).copied().ok_or_else(|| {
                DfgError::InvalidKernel(format!("scalar {name} used before definition"))
            }),
            Expr::Index(var) => {
                let loop_name = &self.kernel.loops[*var].name;
                let array = format!("{ITERATOR_ARRAY_PREFIX}{loop_name}");
                let index = crate::kernel::AffineExpr::var(*var);
                let key = (array.clone(), format!("{:?}", index));
                if self.options.reuse_loads {
                    if let Some(&node) = self.loads.get(&key) {
                        return Ok(node);
                    }
                }
                let node = self
                    .dfg
                    .add_load(format!("ld_{loop_name}"), array.clone(), index);
                if self.options.reuse_loads {
                    self.loads.insert(key, node);
                }
                Ok(node)
            }
            Expr::Const(value) => {
                // Constants are normally folded into the consumer's immediate
                // field (see the Binary case). A standalone constant becomes a
                // constant-generator node: a compute node with no data inputs
                // whose output is its immediate.
                let node = self.dfg.add_compute_node(format!("const_{value}"), Op::Add);
                self.dfg.set_immediate(node, *value)?;
                Ok(node)
            }
            Expr::Unary(op, a) => {
                let a_node = self.lower_expr(a)?;
                let node = self.dfg.add_compute_node(op.mnemonic().to_string(), *op);
                self.dfg
                    .add_edge(a_node, node, Operand::Lhs, EdgeKind::Data)?;
                Ok(node)
            }
            Expr::Binary(op, a, b) => {
                // Fold a constant right operand into the immediate field, as
                // the PCU configuration word's 8-bit constant does.
                if let Expr::Const(value) = **b {
                    let a_node = self.lower_expr(a)?;
                    let node = self.dfg.add_compute_node(op.mnemonic().to_string(), *op);
                    self.dfg
                        .add_edge(a_node, node, Operand::Lhs, EdgeKind::Data)?;
                    self.dfg.set_immediate(node, value)?;
                    return Ok(node);
                }
                if let Expr::Const(value) = **a {
                    if op.is_commutative() {
                        let b_node = self.lower_expr(b)?;
                        let node = self.dfg.add_compute_node(op.mnemonic().to_string(), *op);
                        self.dfg
                            .add_edge(b_node, node, Operand::Lhs, EdgeKind::Data)?;
                        self.dfg.set_immediate(node, value)?;
                        return Ok(node);
                    }
                }
                let a_node = self.lower_expr(a)?;
                let b_node = self.lower_expr(b)?;
                let node = self.dfg.add_compute_node(op.mnemonic().to_string(), *op);
                self.dfg
                    .add_edge(a_node, node, Operand::Lhs, EdgeKind::Data)?;
                self.dfg
                    .add_edge(b_node, node, Operand::Rhs, EdgeKind::Data)?;
                Ok(node)
            }
        }
    }
}

/// Returns true when `array` is one of the implicit iterator streams created
/// for [`Expr::Index`] operands.
pub fn is_iterator_array(array: &str) -> bool {
    array.starts_with(ITERATOR_ARRAY_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AffineExpr, KernelBuilder};

    fn axpy() -> Kernel {
        KernelBuilder::new("axpy")
            .loop_var("i", 8)
            .array("x", 8)
            .array("y", 8)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap()
    }

    fn dot_product() -> Kernel {
        KernelBuilder::new("dot")
            .loop_var("i", 8)
            .array("a", 8)
            .array("b", 8)
            .array("out", 1)
            .accumulate(
                "out",
                AffineExpr::constant(0),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn axpy_lowering_shape() {
        let dfg = lower_kernel(&axpy(), &LoweringOptions::default()).unwrap();
        // loads: x[i], y[i]; computes: mul (imm 3), add; store y[i].
        assert_eq!(dfg.memory_node_count(), 3);
        assert_eq!(dfg.compute_node_count(), 2);
        assert!(dfg.validate_structure().is_ok());
        assert_eq!(dfg.total_iterations(), 8);
    }

    #[test]
    fn constant_folds_into_immediate() {
        let dfg = lower_kernel(&axpy(), &LoweringOptions::default()).unwrap();
        let mul = dfg.nodes().find(|n| n.op == Op::Mul).unwrap();
        assert_eq!(mul.immediate, Some(3));
    }

    #[test]
    fn accumulate_creates_recurrence() {
        let dfg = lower_kernel(&dot_product(), &LoweringOptions::default()).unwrap();
        assert_eq!(dfg.recurrence_edges().count(), 1);
        let rec = dfg.recurrence_edges().next().unwrap();
        assert_eq!(dfg.node(rec.src).op, Op::Store);
        assert_eq!(dfg.node(rec.dst).op, Op::Load);
        assert_eq!(rec.kind.distance(), 1);
    }

    #[test]
    fn unrolling_scales_node_count() {
        let base = lower_kernel(&axpy(), &LoweringOptions::default()).unwrap();
        let unrolled = lower_kernel(&axpy(), &LoweringOptions::unrolled(2)).unwrap();
        assert_eq!(unrolled.node_count(), 2 * base.node_count());
        assert_eq!(unrolled.total_iterations(), base.total_iterations() / 2);
        assert_eq!(unrolled.name(), "axpy_u2");
    }

    #[test]
    fn load_reuse_deduplicates_identical_accesses() {
        let kernel = KernelBuilder::new("square")
            .loop_var("i", 4)
            .array("x", 4)
            .array("y", 4)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Mul,
                    Expr::load("x", AffineExpr::var(0)),
                    Expr::load("x", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        let reused = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        let duplicated = lower_kernel(
            &kernel,
            &LoweringOptions {
                reuse_loads: false,
                ..LoweringOptions::default()
            },
        )
        .unwrap();
        assert_eq!(reused.memory_node_count(), 2);
        assert_eq!(duplicated.memory_node_count(), 3);
    }

    #[test]
    fn store_to_load_forwarding_within_body() {
        let kernel = KernelBuilder::new("rmw")
            .loop_var("i", 4)
            .array("x", 4)
            .store(
                "x",
                AffineExpr::var(0),
                Expr::binary(Op::Add, Expr::load("x", AffineExpr::var(0)), Expr::Const(1)),
            )
            .store(
                "x",
                AffineExpr::var(0),
                Expr::binary(Op::Add, Expr::load("x", AffineExpr::var(0)), Expr::Const(1)),
            )
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        // The second statement's load is forwarded from the first store, so
        // only a single load node exists, and both stores remain.
        assert_eq!(dfg.nodes().filter(|n| n.op == Op::Load).count(), 1);
        assert_eq!(dfg.nodes().filter(|n| n.op == Op::Store).count(), 2);
    }

    #[test]
    fn aliasing_load_after_store_is_ordered() {
        // Stencil-like body: x[i] = x[i] + 1; y[i] = x[i+1] * 2.
        // The load of x[i+1] must be ordered after the store to x[i].
        let kernel = KernelBuilder::new("alias")
            .loop_var("i", 4)
            .array("x", 8)
            .array("y", 4)
            .store(
                "x",
                AffineExpr::var(0),
                Expr::binary(Op::Add, Expr::load("x", AffineExpr::var(0)), Expr::Const(1)),
            )
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Mul,
                    Expr::load("x", AffineExpr::var(0).offset(1)),
                    Expr::Const(2),
                ),
            )
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        let store_x = dfg
            .nodes()
            .find(|n| n.op == Op::Store && n.access.as_ref().unwrap().array == "x")
            .unwrap()
            .id;
        let ordered_load = dfg
            .nodes()
            .find(|n| {
                n.op == Op::Load
                    && n.access.as_ref().unwrap().array == "x"
                    && dfg.in_edges(n.id).count() > 0
            })
            .expect("aliasing load should carry an ordering edge")
            .id;
        assert!(dfg
            .in_edges(ordered_load)
            .any(|e| e.src == store_x && !dfg.edge_carries_data(e)));
    }

    #[test]
    fn index_operand_becomes_iterator_load() {
        let kernel = KernelBuilder::new("scale_by_index")
            .loop_var("i", 4)
            .array("x", 4)
            .array("y", 4)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Index(0)),
            )
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        assert!(dfg.memory_nodes().any(|n| n
            .access
            .as_ref()
            .is_some_and(|a| is_iterator_array(&a.array))));
    }

    #[test]
    fn scalar_let_is_shared_between_statements() {
        let kernel = KernelBuilder::new("shared_temp")
            .loop_var("i", 4)
            .array("x", 4)
            .array("y", 4)
            .array("z", 4)
            .let_scalar(
                "t",
                Expr::binary(Op::Add, Expr::load("x", AffineExpr::var(0)), Expr::Const(1)),
            )
            .store("y", AffineExpr::var(0), Expr::Scalar("t".into()))
            .store("z", AffineExpr::var(0), Expr::Scalar("t".into()))
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        // Only one add node feeds both stores.
        assert_eq!(dfg.nodes().filter(|n| n.op == Op::Add).count(), 1);
        let add = dfg.nodes().find(|n| n.op == Op::Add).unwrap().id;
        assert_eq!(dfg.data_successors(add).len(), 2);
    }
}
