//! The dataflow graph (DFG) data structure.
//!
//! A [`Dfg`] is a directed graph whose nodes are 16-bit operations
//! ([`crate::op::Op`]) and whose edges are data dependencies. Edges within the
//! same loop iteration are [`EdgeKind::Data`]; dependencies that cross
//! iteration boundaries (recurrences, e.g. accumulations) carry an explicit
//! iteration distance via [`EdgeKind::Recurrence`]. The same-iteration
//! subgraph is always acyclic.
//!
//! The graph also records the iteration space of the loop nest it was
//! generated from, which the downstream simulator uses to compute total cycle
//! counts from the initiation interval (II).

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::error::DfgError;
use crate::kernel::AffineExpr;
use crate::op::Op;

/// Identifier of a node within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of an edge within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Which operand slot of the destination node an edge drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Left / first operand.
    Lhs,
    /// Right / second operand.
    Rhs,
}

impl Operand {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            Operand::Lhs => "lhs",
            Operand::Rhs => "rhs",
        }
    }
}

/// Kind of data dependency carried by an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Same-iteration data dependency.
    Data,
    /// Inter-iteration dependency carried `distance` iterations forward.
    Recurrence {
        /// Number of iterations between producer and consumer (≥ 1).
        distance: u32,
    },
}

impl EdgeKind {
    /// Iteration distance of the dependency (0 for same-iteration edges).
    pub fn distance(self) -> u32 {
        match self {
            EdgeKind::Data => 0,
            EdgeKind::Recurrence { distance } => distance,
        }
    }

    /// Whether the dependency crosses loop iterations.
    pub fn is_recurrence(self) -> bool {
        matches!(self, EdgeKind::Recurrence { .. })
    }
}

/// Description of a scratch-pad memory access attached to a load or store node.
///
/// Addresses are affine functions of the loop indices; keeping them on the
/// node (rather than materialising address-arithmetic nodes) matches the node
/// counts the paper reports in Table 2, where loads/stores are single nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    /// Name of the array in the scratch-pad memory.
    pub array: String,
    /// Affine index expression over the loop iteration variables.
    pub index: AffineExpr,
}

/// A node of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfgNode {
    /// Identifier of this node.
    pub id: NodeId,
    /// Human-readable label (unique labels are not required).
    pub name: String,
    /// Operation executed by the node.
    pub op: Op,
    /// Optional immediate operand (the paper's 8-bit constants); when present
    /// it supplies the `Rhs` operand of a binary operation.
    pub immediate: Option<i64>,
    /// Memory access descriptor for `Load`/`Store` nodes.
    pub access: Option<MemAccess>,
}

impl DfgNode {
    /// Whether this node executes on an ALU.
    pub fn is_compute(&self) -> bool {
        self.op.is_compute()
    }

    /// Whether this node accesses the scratch-pad memory.
    pub fn is_memory(&self) -> bool {
        self.op.is_memory()
    }
}

/// An edge of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfgEdge {
    /// Identifier of this edge.
    pub id: EdgeId,
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Operand slot of the consumer driven by this edge.
    pub operand: Operand,
    /// Same-iteration or recurrence dependency.
    pub kind: EdgeKind,
}

/// One dimension of the iteration space of the loop nest a DFG came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationDim {
    /// Loop variable name.
    pub name: String,
    /// Trip count of the loop.
    pub trip_count: u64,
}

/// A dataflow graph: the unit of mapping in the Plaid toolchain.
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    name: String,
    nodes: Vec<DfgNode>,
    edges: Vec<DfgEdge>,
    iteration_space: Vec<IterationDim>,
}

impl Dfg {
    /// Creates an empty DFG with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            iteration_space: Vec::new(),
        }
    }

    /// Name of the kernel this DFG represents.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the DFG (used when deriving unrolled variants).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Iteration space (outermost loop first) of the originating loop nest.
    pub fn iteration_space(&self) -> &[IterationDim] {
        &self.iteration_space
    }

    /// Sets the iteration space of the originating loop nest.
    pub fn set_iteration_space(&mut self, dims: Vec<IterationDim>) {
        self.iteration_space = dims;
    }

    /// Total number of loop iterations executed by the kernel
    /// (product of trip counts; 1 for an empty iteration space).
    pub fn total_iterations(&self) -> u64 {
        self.iteration_space
            .iter()
            .map(|d| d.trip_count.max(1))
            .product::<u64>()
            .max(1)
    }

    /// Adds a node with an arbitrary operation and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, op: Op) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(DfgNode {
            id,
            name: name.into(),
            op,
            immediate: None,
            access: None,
        });
        id
    }

    /// Adds a compute (ALU) node.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory operation; use [`Dfg::add_load`] or
    /// [`Dfg::add_store`] for those.
    pub fn add_compute_node(&mut self, name: impl Into<String>, op: Op) -> NodeId {
        assert!(
            op.is_compute(),
            "use add_load/add_store for memory operations"
        );
        self.add_node(name, op)
    }

    /// Adds a load node reading `array[index]`.
    pub fn add_load(
        &mut self,
        name: impl Into<String>,
        array: impl Into<String>,
        index: AffineExpr,
    ) -> NodeId {
        let id = self.add_node(name, Op::Load);
        self.nodes[id.0 as usize].access = Some(MemAccess {
            array: array.into(),
            index,
        });
        id
    }

    /// Adds a store node writing `array[index]`.
    pub fn add_store(
        &mut self,
        name: impl Into<String>,
        array: impl Into<String>,
        index: AffineExpr,
    ) -> NodeId {
        let id = self.add_node(name, Op::Store);
        self.nodes[id.0 as usize].access = Some(MemAccess {
            array: array.into(),
            index,
        });
        id
    }

    /// Attaches an immediate (constant) operand to a node.
    ///
    /// The immediate supplies the `Rhs` slot of binary operations, mirroring
    /// the 8-bit constant fields in the PCU configuration word.
    pub fn set_immediate(&mut self, node: NodeId, value: i64) -> Result<(), DfgError> {
        let n = self
            .nodes
            .get_mut(node.0 as usize)
            .ok_or(DfgError::UnknownNode(node.0))?;
        n.immediate = Some(value);
        Ok(())
    }

    /// Adds a dependency edge and returns its id.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist, if the operand slot
    /// is already driven by another same-iteration data edge, or if the
    /// destination operation cannot accept the operand.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        operand: Operand,
        kind: EdgeKind,
    ) -> Result<EdgeId, DfgError> {
        if src.0 as usize >= self.nodes.len() {
            return Err(DfgError::UnknownNode(src.0));
        }
        if dst.0 as usize >= self.nodes.len() {
            return Err(DfgError::UnknownNode(dst.0));
        }
        let dst_node = &self.nodes[dst.0 as usize];
        let arity = dst_node.op.arity();
        // Edges into loads (which take no data operands) and recurrence edges
        // into memory nodes are pure ordering constraints — e.g. a store
        // followed by a potentially aliasing load within the body, or the
        // store -> load dependency of a memory-carried reduction. They do not
        // drive an operand and bypass arity/conflict checks.
        let is_ordering =
            dst_node.op == Op::Load || (kind.is_recurrence() && dst_node.op.is_memory());
        if !is_ordering {
            if arity == 0 {
                return Err(DfgError::InvalidOperand {
                    node: dst.0,
                    reason: format!("operation {} takes no data operands", dst_node.op),
                });
            }
            if arity == 1 && operand == Operand::Rhs {
                return Err(DfgError::InvalidOperand {
                    node: dst.0,
                    reason: format!(
                        "operation {} is unary; only the lhs operand exists",
                        dst_node.op
                    ),
                });
            }
            if kind == EdgeKind::Data
                && self
                    .edges
                    .iter()
                    .any(|e| e.dst == dst && e.operand == operand && e.kind == EdgeKind::Data)
            {
                return Err(DfgError::OperandConflict {
                    node: dst.0,
                    operand: operand.name(),
                });
            }
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(DfgEdge {
            id,
            src,
            dst,
            operand,
            kind,
        });
        Ok(id)
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of ALU (compute) nodes.
    pub fn compute_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_compute()).count()
    }

    /// Number of load/store nodes.
    pub fn memory_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_memory()).count()
    }

    /// Returns the node with the given id.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.0 as usize]
    }

    /// Returns the node with the given id, or `None` if out of range.
    pub fn try_node(&self, id: NodeId) -> Option<&DfgNode> {
        self.nodes.get(id.0 as usize)
    }

    /// Returns the edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &DfgEdge {
        &self.edges[id.0 as usize]
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &DfgNode> {
        self.nodes.iter()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &DfgEdge> {
        self.edges.iter()
    }

    /// Iterator over the compute (ALU) nodes.
    pub fn compute_nodes(&self) -> impl Iterator<Item = &DfgNode> {
        self.nodes.iter().filter(|n| n.is_compute())
    }

    /// Iterator over the memory (load/store) nodes.
    pub fn memory_nodes(&self) -> impl Iterator<Item = &DfgNode> {
        self.nodes.iter().filter(|n| n.is_memory())
    }

    /// Edges arriving at `node` (both data and recurrence).
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = &DfgEdge> {
        self.edges.iter().filter(move |e| e.dst == node)
    }

    /// Edges leaving `node` (both data and recurrence).
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = &DfgEdge> {
        self.edges.iter().filter(move |e| e.src == node)
    }

    /// Same-iteration predecessors of `node`.
    pub fn data_predecessors(&self, node: NodeId) -> Vec<NodeId> {
        self.in_edges(node)
            .filter(|e| !e.kind.is_recurrence())
            .map(|e| e.src)
            .collect()
    }

    /// Same-iteration successors of `node`.
    pub fn data_successors(&self, node: NodeId) -> Vec<NodeId> {
        self.out_edges(node)
            .filter(|e| !e.kind.is_recurrence())
            .map(|e| e.dst)
            .collect()
    }

    /// All predecessors of `node`, including across iterations.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        self.in_edges(node).map(|e| e.src).collect()
    }

    /// All successors of `node`, including across iterations.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        self.out_edges(node).map(|e| e.dst).collect()
    }

    /// Recurrence (inter-iteration) edges of the graph.
    pub fn recurrence_edges(&self) -> impl Iterator<Item = &DfgEdge> {
        self.edges.iter().filter(|e| e.kind.is_recurrence())
    }

    /// Topological order of the nodes considering only same-iteration edges.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::DataCycle`] if the same-iteration subgraph contains
    /// a cycle.
    pub fn topological_order(&self) -> Result<Vec<NodeId>, DfgError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            if !e.kind.is_recurrence() {
                indegree[e.dst.0 as usize] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(NodeId(i as u32));
            for e in &self.edges {
                if !e.kind.is_recurrence() && e.src.0 as usize == i {
                    let d = e.dst.0 as usize;
                    indegree[d] -= 1;
                    if indegree[d] == 0 {
                        queue.push_back(d);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DfgError::DataCycle)
        }
    }

    /// As-soon-as-possible level of every node (unit latency per node),
    /// computed over same-iteration edges only.
    pub fn asap_levels(&self) -> Result<HashMap<NodeId, u32>, DfgError> {
        let order = self.topological_order()?;
        let mut level: HashMap<NodeId, u32> = HashMap::new();
        for id in order {
            let l = self
                .in_edges(id)
                .filter(|e| !e.kind.is_recurrence())
                .map(|e| level.get(&e.src).copied().unwrap_or(0) + 1)
                .max()
                .unwrap_or(0);
            level.insert(id, l);
        }
        Ok(level)
    }

    /// Length (in nodes) of the longest same-iteration dependency chain.
    pub fn critical_path_length(&self) -> Result<u32, DfgError> {
        Ok(self
            .asap_levels()?
            .values()
            .copied()
            .max()
            .map(|l| l + 1)
            .unwrap_or(0))
    }

    /// Checks structural invariants of the graph.
    ///
    /// Verified properties:
    /// * every binary compute node has both operands driven (by a data or
    ///   recurrence edge, or by the node's immediate),
    /// * no operand slot is driven by two same-iteration data edges
    ///   (enforced on construction, re-checked here),
    /// * stores have their value operand driven,
    /// * the same-iteration subgraph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate_structure(&self) -> Result<(), DfgError> {
        self.topological_order()?;
        for node in &self.nodes {
            let arity = node.op.arity();
            if arity == 0 {
                continue;
            }
            // Constant-generator nodes: a compute node with an immediate and no
            // incoming edges outputs its immediate directly.
            if node.immediate.is_some() && self.in_edges(node.id).next().is_none() {
                continue;
            }
            // Ordering edges (recurrence into a memory node) do not drive
            // operands and must not count towards driven-ness.
            let drives = |e: &&DfgEdge| !(e.kind.is_recurrence() && node.op.is_memory());
            let lhs_driven = self
                .in_edges(node.id)
                .filter(drives)
                .any(|e| e.operand == Operand::Lhs);
            let rhs_driven = self
                .in_edges(node.id)
                .filter(drives)
                .any(|e| e.operand == Operand::Rhs)
                || node.immediate.is_some();
            if !lhs_driven {
                return Err(DfgError::MissingOperand {
                    node: node.id.0,
                    operand: "lhs",
                });
            }
            if arity == 2 && !rhs_driven {
                return Err(DfgError::MissingOperand {
                    node: node.id.0,
                    operand: "rhs",
                });
            }
            let mut data_lhs = 0;
            let mut data_rhs = 0;
            for e in self.in_edges(node.id).filter(|e| e.kind == EdgeKind::Data) {
                match e.operand {
                    Operand::Lhs => data_lhs += 1,
                    Operand::Rhs => data_rhs += 1,
                }
            }
            if data_lhs > 1 {
                return Err(DfgError::OperandConflict {
                    node: node.id.0,
                    operand: "lhs",
                });
            }
            if data_rhs > 1 {
                return Err(DfgError::OperandConflict {
                    node: node.id.0,
                    operand: "rhs",
                });
            }
        }
        Ok(())
    }

    /// Whether an edge transports an actual value between functional units.
    ///
    /// Ordering-only edges (any edge into a load, or a recurrence edge into a
    /// memory node) constrain the schedule but occupy no routing resources.
    pub fn edge_carries_data(&self, edge: &DfgEdge) -> bool {
        let dst = self.node(edge.dst);
        if dst.op == Op::Load {
            return false;
        }
        !(edge.kind.is_recurrence() && dst.op.is_memory())
    }

    /// Multiset of operations in the graph, useful for unrolling tests.
    pub fn op_histogram(&self) -> HashMap<Op, usize> {
        let mut hist = HashMap::new();
        for n in &self.nodes {
            *hist.entry(n.op).or_insert(0) += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::AffineExpr;

    fn diamond() -> (Dfg, NodeId, NodeId, NodeId, NodeId) {
        let mut dfg = Dfg::new("diamond");
        let a = dfg.add_compute_node("a", Op::Add);
        let b = dfg.add_compute_node("b", Op::Mul);
        let c = dfg.add_compute_node("c", Op::Sub);
        let d = dfg.add_compute_node("d", Op::Add);
        dfg.set_immediate(a, 1).unwrap();
        dfg.set_immediate(a, 1).unwrap();
        // a feeds b and c; b and c feed d.
        dfg.add_edge(a, b, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(a, c, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.set_immediate(b, 2).unwrap();
        dfg.set_immediate(c, 3).unwrap();
        dfg.add_edge(b, d, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(c, d, Operand::Rhs, EdgeKind::Data).unwrap();
        // a's lhs comes from a load.
        let ld = dfg.add_load("ld", "x", AffineExpr::constant(0));
        dfg.add_edge(ld, a, Operand::Lhs, EdgeKind::Data).unwrap();
        (dfg, a, b, c, d)
    }

    #[test]
    fn build_and_count() {
        let (dfg, ..) = diamond();
        assert_eq!(dfg.node_count(), 5);
        assert_eq!(dfg.edge_count(), 5);
        assert_eq!(dfg.compute_node_count(), 4);
        assert_eq!(dfg.memory_node_count(), 1);
    }

    #[test]
    fn operand_conflict_rejected() {
        let mut dfg = Dfg::new("conflict");
        let a = dfg.add_compute_node("a", Op::Not);
        let b = dfg.add_compute_node("b", Op::Not);
        let c = dfg.add_compute_node("c", Op::Not);
        dfg.add_edge(a, c, Operand::Lhs, EdgeKind::Data).unwrap();
        let err = dfg
            .add_edge(b, c, Operand::Lhs, EdgeKind::Data)
            .unwrap_err();
        assert!(matches!(err, DfgError::OperandConflict { .. }));
    }

    #[test]
    fn unary_rhs_rejected() {
        let mut dfg = Dfg::new("unary");
        let a = dfg.add_compute_node("a", Op::Not);
        let b = dfg.add_compute_node("b", Op::Not);
        let err = dfg
            .add_edge(a, b, Operand::Rhs, EdgeKind::Data)
            .unwrap_err();
        assert!(matches!(err, DfgError::InvalidOperand { .. }));
    }

    #[test]
    fn edges_into_loads_are_ordering_only() {
        let mut dfg = Dfg::new("load");
        let a = dfg.add_compute_node("a", Op::Not);
        let ld = dfg.add_load("ld", "x", AffineExpr::constant(0));
        let e = dfg.add_edge(a, ld, Operand::Lhs, EdgeKind::Data).unwrap();
        assert!(!dfg.edge_carries_data(dfg.edge(e)));
        // Ordering edges still participate in the topological order.
        let order = dfg.topological_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&n| n == id).unwrap();
        assert!(pos(a) < pos(ld));
    }

    #[test]
    fn data_edges_between_compute_nodes_carry_data() {
        let mut dfg = Dfg::new("carry");
        let a = dfg.add_compute_node("a", Op::Not);
        let b = dfg.add_compute_node("b", Op::Not);
        let e = dfg.add_edge(a, b, Operand::Lhs, EdgeKind::Data).unwrap();
        assert!(dfg.edge_carries_data(dfg.edge(e)));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let (dfg, a, b, c, d) = diamond();
        let order = dfg.topological_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&n| n == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn validate_detects_missing_operand() {
        let mut dfg = Dfg::new("missing");
        let _a = dfg.add_compute_node("a", Op::Add);
        let err = dfg.validate_structure().unwrap_err();
        assert!(matches!(err, DfgError::MissingOperand { .. }));
    }

    #[test]
    fn recurrence_edges_do_not_create_data_cycles() {
        let mut dfg = Dfg::new("acc");
        let acc = dfg.add_compute_node("acc", Op::Add);
        let ld = dfg.add_load("ld", "x", AffineExpr::constant(0));
        dfg.add_edge(ld, acc, Operand::Lhs, EdgeKind::Data).unwrap();
        dfg.add_edge(acc, acc, Operand::Rhs, EdgeKind::Recurrence { distance: 1 })
            .unwrap();
        assert!(dfg.validate_structure().is_ok());
        assert_eq!(dfg.recurrence_edges().count(), 1);
    }

    #[test]
    fn critical_path_of_diamond_is_three() {
        let (dfg, ..) = diamond();
        // load -> a -> b/c -> d  gives 4 levels.
        assert_eq!(dfg.critical_path_length().unwrap(), 4);
    }

    #[test]
    fn asap_levels_start_at_zero() {
        let (dfg, a, ..) = diamond();
        let levels = dfg.asap_levels().unwrap();
        assert_eq!(levels[&a], 1); // fed by the load at level 0
        assert_eq!(levels.values().copied().min().unwrap(), 0);
    }

    #[test]
    fn total_iterations_defaults_to_one() {
        let (mut dfg, ..) = diamond();
        assert_eq!(dfg.total_iterations(), 1);
        dfg.set_iteration_space(vec![
            IterationDim {
                name: "i".into(),
                trip_count: 4,
            },
            IterationDim {
                name: "j".into(),
                trip_count: 8,
            },
        ]);
        assert_eq!(dfg.total_iterations(), 32);
    }

    #[test]
    fn op_histogram_counts_operations() {
        let (dfg, ..) = diamond();
        let hist = dfg.op_histogram();
        assert_eq!(hist[&Op::Add], 2);
        assert_eq!(hist[&Op::Mul], 1);
        assert_eq!(hist[&Op::Load], 1);
    }
}
