//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build container has no crates.io access, so the bench targets run
//! against this minimal timer harness: `criterion_group!`/`criterion_main!`,
//! benchmark groups with `sample_size`/`measurement_time`/`warm_up_time`, and
//! `bench_function` with `Bencher::iter`. Each benchmark runs a short
//! calibration pass, then reports mean wall time per iteration. Statistical
//! machinery (outlier rejection, regressions, HTML reports) is out of scope —
//! swap the `[workspace.dependencies]` entry for the real crate to get it.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver (stands in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a plain argument;
        // `cargo test`-style harness flags are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark function (no group).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let filter = self.filter.clone();
        run_benchmark(
            name,
            &filter,
            Duration::from_millis(500),
            Duration::from_secs(3),
            10,
            f,
        );
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(
            &full,
            &self.criterion.filter,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            f,
        );
        self
    }

    /// Finishes the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

fn run_benchmark(
    name: &str,
    filter: &Option<String>,
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode: Mode::WarmUp {
            deadline: Instant::now() + warm_up,
        },
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let per_sample = budget.as_secs_f64() / samples as f64;
    bencher.plan(per_sample);
    bencher.mode = Mode::Measure {
        target_samples: samples,
    };
    f(&mut bencher);
    bencher.report(name);
}

enum Mode {
    WarmUp { deadline: Instant },
    Measure { target_samples: usize },
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly per the harness plan.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        match self.mode {
            Mode::WarmUp { deadline } => {
                // Also estimates the per-iteration cost for sample planning.
                let mut iters = 0u64;
                let start = Instant::now();
                while Instant::now() < deadline {
                    hint::black_box(routine());
                    iters += 1;
                }
                let elapsed = start.elapsed().as_secs_f64();
                self.samples.clear();
                self.samples.push(if iters > 0 {
                    elapsed / iters as f64
                } else {
                    elapsed
                });
            }
            Mode::Measure { target_samples } => {
                self.samples.clear();
                for _ in 0..target_samples {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        hint::black_box(routine());
                    }
                    self.samples
                        .push(start.elapsed().as_secs_f64() / self.iters_per_sample as f64);
                }
            }
        }
    }

    /// Chooses iterations-per-sample from the warm-up estimate.
    fn plan(&mut self, per_sample_seconds: f64) {
        let est = self.samples.first().copied().unwrap_or(1e-6).max(1e-9);
        self.iters_per_sample = ((per_sample_seconds / est).round() as u64).clamp(1, 1_000_000);
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} no samples");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<50} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
        // Called once for warm-up and once for measurement.
        assert_eq!(ran, 2);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(5e-9).contains("ns"));
        assert!(format_time(5e-6).contains("µs"));
        assert!(format_time(5e-3).contains("ms"));
        assert!(format_time(5.0).contains(" s"));
    }
}
