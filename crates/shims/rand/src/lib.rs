//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! deterministic xorshift-based implementation of the `rand` APIs the mappers
//! rely on: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`seq::SliceRandom`].
//! The streams are reproducible but are *not* the upstream `rand` streams;
//! mapper seeds therefore explore the same space with different samples.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly from a `Range` by this shim.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[range.start, range.end)` using `next` as the
    /// word source.
    fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u128;
                let v = (next() as u128) % span;
                range.start + v as Self
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (next() as u128) % span;
                (range.start as i128 + v as i128) as Self
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Core random-sampling trait (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample(range, &mut f)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Samples a uniform value in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 bits of mantissa, as rand's Standard distribution does.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::standard(&mut f)
    }
}

/// Types with a standard distribution this shim can sample (`rng.gen()`).
pub trait Standard {
    /// Samples from the standard distribution using `next` as the word
    /// source.
    fn standard(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn standard(next: &mut dyn FnMut() -> u64) -> f64 {
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard(next: &mut dyn FnMut() -> u64) -> bool {
        next() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard(next: &mut dyn FnMut() -> u64) -> u64 {
        next()
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random number generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*; stands in for
    /// `rand::rngs::SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); good enough statistical quality for the
            // randomized mapper moves and fully deterministic per seed.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds with
            // a splitmix64 scramble.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }
}

/// Sequence-related sampling helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_and_f64_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues));
        for _ in 0..100 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
