//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container has no crates.io access, so the property tests run on
//! this minimal deterministic re-implementation: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, integer-range and tuple
//! strategies, `any::<T>()`, `prop::sample::select`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Unlike upstream proptest there is
//! no shrinking — a failing case reports its seed and inputs but is not
//! minimized. Cases are generated from a deterministic per-test RNG, so runs
//! are reproducible.

#![forbid(unsafe_code)]

/// Test-runner configuration and RNG.
pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    /// Deterministic xorshift64* RNG seeded from the test path and case
    /// index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for `(test_path, case)`.
        pub fn deterministic(test_path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values (subset of `proptest::strategy::Strategy`;
    /// no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// Strategy for the full value range of `T` (returned by
    /// [`crate::arbitrary::any`]).
    #[derive(Debug, Clone)]
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    /// Strategy choosing uniformly among fixed options (see
    /// [`crate::sample::select`]).
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        pub(crate) options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select from empty options");
            let i = (rng.next_u64() as usize) % self.options.len();
            self.options[i].clone()
        }
    }

    /// Strategy yielding a constant.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{Any, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

/// `prop::sample` namespace (subset).
pub mod sample {
    use crate::strategy::Select;

    /// Chooses uniformly among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// The `prop` module alias used as `prop::sample::select(..)`.
pub mod prop {
    pub use crate::sample;
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests, mirroring `proptest! { ... }`.
///
/// Each test body runs once per case with inputs drawn from its strategies;
/// `prop_assert*` failures report the case index. `#[test]` attributes
/// written inside the block are re-emitted unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let outcome: Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t", 0);
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-4i64..4).generate(&mut rng);
            assert!((-4..4).contains(&w));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1usize..5, any::<u64>()).prop_map(|(n, seed)| vec![seed; n]);
        let mut rng = crate::test_runner::TestRng::deterministic("t2", 1);
        let v = strat.generate(&mut rng);
        assert!((1..5).contains(&v.len()));
    }

    #[test]
    fn select_picks_from_options() {
        let strat = prop::sample::select(vec![2u64, 4, 8]);
        let mut rng = crate::test_runner::TestRng::deterministic("t3", 2);
        for _ in 0..50 {
            assert!([2u64, 4, 8].contains(&strat.generate(&mut rng)));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name_and_case() {
        let a = crate::test_runner::TestRng::deterministic("x", 1).next_u64();
        let b = crate::test_runner::TestRng::deterministic("x", 1).next_u64();
        let c = crate::test_runner::TestRng::deterministic("x", 2).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(x in 0u32..10, y in 0u32..10) {
            prop_assert!(x < 10);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
