//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`] and the re-exported [`Value`] tree.
//!
//! Works with the sibling `serde` shim: serialization lowers through
//! `serde::Serialize` to a [`Value`] and renders it; parsing produces a
//! [`Value`] and rebuilds the target via `serde::Deserialize`. Object keys
//! are emitted in sorted order, so output is deterministic and stable across
//! runs — a property the explore cache relies on.

#![forbid(unsafe_code)]

pub use serde::{Error, Map, Value};

use std::fmt::Write as _;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render(&value.serialize(), None, 0))
}

/// Serializes `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render(&value.serialize(), Some(2), 0))
}

/// Lowers `value` to the [`Value`] tree without rendering it.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Parses JSON text and rebuilds a `T` from it.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---- rendering -------------------------------------------------------------

fn render(value: &Value, indent: Option<usize>, depth: usize) -> String {
    let mut out = String::new();
    write_value(&mut out, value, indent, depth);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !map.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Inf; serde_json emits null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing .0 so the value parses back as a float.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            let c = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a low surrogate escape must
                                // follow (JSON encodes non-BMP characters as
                                // \uD8xx\uDCxx pairs).
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.unicode_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (cursor on the `u`),
    /// leaving the cursor on the last digit.
    fn unicode_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let mut obj = Map::new();
        obj.insert("name".into(), Value::String("atax_u2".into()));
        obj.insert("cycles".into(), Value::Int(1234));
        obj.insert("energy".into(), Value::Float(5.5));
        obj.insert(
            "tags".into(),
            Value::Array(vec![Value::Bool(true), Value::Null]),
        );
        let v = Value::Object(obj);
        let compact = to_string(&v).unwrap();
        let parsed = parse_value(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ slash ünïcode";
        let v = Value::String(s.to_string());
        let text = to_string(&v).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn numbers_parse_with_correct_types() {
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(
            parse_value("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse_value("1.5e3").unwrap(), Value::Float(1500.0));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let text = to_string(&3.0f64).unwrap();
        assert_eq!(text, "3.0");
        assert_eq!(parse_value(&text).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Python's json.dumps escapes non-BMP characters as surrogate pairs.
        let v = parse_value(r#""\ud83d\ude00 ok""#).unwrap();
        assert_eq!(v, Value::String("\u{1F600} ok".to_string()));
        assert!(
            parse_value(r#""\ud83d""#).is_err(),
            "unpaired high surrogate"
        );
        assert!(
            parse_value(r#""\ud83d\u0041""#).is_err(),
            "low surrogate out of range"
        );
        // BMP escapes still decode directly, as does raw UTF-8.
        assert_eq!(
            parse_value(r#""\u00e9""#).unwrap(),
            Value::String("é".to_string())
        );
        assert_eq!(
            parse_value("\"é 😀\"").unwrap(),
            Value::String("é 😀".to_string())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn typed_round_trip_via_from_str() {
        let v: Vec<u64> = vec![1, 2, 3];
        let text = to_string(&v).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
