//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build container has no crates.io access, so parallel sweeps run on a
//! scoped-thread fork/join implemented with the standard library. The API
//! mirrors the `rayon` calls used by `plaid-explore` (`par_iter().map(..)
//! .collect()`, `with_min_len`, `current_num_threads`) so the shim can be
//! swapped for the real crate by flipping one `[workspace.dependencies]`
//! entry.
//!
//! Work is split into one contiguous chunk per worker thread; results are
//! concatenated in input order, so `collect()` is order-preserving exactly
//! like rayon's indexed parallel iterators.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::thread;

/// Returns the number of worker threads the shim will use.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(4)
        })
}

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

/// Parallel iterator adaptors.
pub mod iter {
    use super::current_num_threads;
    use std::thread;

    /// Conversion of `&collection` into a parallel iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// Item yielded by the iterator.
        type Item: 'a;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Creates a parallel iterator over borrowed items.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = ParSlice<'a, T>;

        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice {
                items: self,
                min_len: 1,
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = ParSlice<'a, T>;

        fn par_iter(&'a self) -> ParSlice<'a, T> {
            self.as_slice().par_iter()
        }
    }

    /// Minimal parallel-iterator interface: `map` then `collect`.
    pub trait ParallelIterator: Sized {
        /// Item type.
        type Item: Send;

        /// Runs the pipeline, returning results in input order.
        fn run(self) -> Vec<Self::Item>;

        /// Maps each item through `f` in parallel.
        fn map<R, F>(self, f: F) -> ParMap<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            ParMap { base: self, f }
        }

        /// Collects results in input order.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_par_vec(self.run())
        }
    }

    /// Collection types a parallel iterator can collect into.
    pub trait FromParallelIterator<T> {
        /// Builds the collection from the ordered result vector.
        fn from_par_vec(v: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_vec(v: Vec<T>) -> Self {
            v
        }
    }

    /// Parallel iterator over a slice.
    pub struct ParSlice<'a, T> {
        items: &'a [T],
        min_len: usize,
    }

    impl<'a, T: Sync> ParSlice<'a, T> {
        /// Lower bound on items per worker chunk (rayon's `with_min_len`).
        pub fn with_min_len(mut self, min: usize) -> Self {
            self.min_len = min.max(1);
            self
        }
    }

    impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
        type Item = &'a T;

        fn run(self) -> Vec<&'a T> {
            self.items.iter().collect()
        }
    }

    /// A mapped parallel iterator.
    pub struct ParMap<B, F> {
        base: B,
        f: F,
    }

    impl<'a, T, R, F> ParallelIterator for ParMap<ParSlice<'a, T>, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        type Item = R;

        fn run(self) -> Vec<R> {
            let items = self.base.items;
            let f = &self.f;
            if items.is_empty() {
                return Vec::new();
            }
            let workers = current_num_threads().max(1);
            let chunk = items.len().div_ceil(workers).max(self.base.min_len);
            if chunk >= items.len() {
                return items.iter().map(f).collect();
            }
            let mut per_chunk: Vec<Vec<R>> = Vec::new();
            thread::scope(|scope| {
                let handles: Vec<_> = items
                    .chunks(chunk)
                    .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                per_chunk = handles
                    .into_iter()
                    .map(|h| h.join().expect("rayon-shim worker panicked"))
                    .collect();
            });
            per_chunk.into_iter().flatten().collect()
        }
    }

    // One level of nesting (`par_iter().map(f).map(g)`) is enough for this
    // workspace; deeper pipelines should fuse their closures.
    impl<'a, T, R, R2, F, G> ParallelIterator for ParMap<ParMap<ParSlice<'a, T>, F>, G>
    where
        T: Sync,
        R: Send,
        R2: Send,
        F: Fn(&'a T) -> R + Sync,
        G: Fn(R) -> R2 + Sync,
    {
        type Item = R2;

        fn run(self) -> Vec<R2> {
            let g = &self.f;
            let inner = self.base;
            let f = &inner.f;
            let fused = ParMap {
                base: inner.base,
                f: move |t: &'a T| g(f(t)),
            };
            fused.run()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..997).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..997).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..4096).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        if super::current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread");
        }
    }

    #[test]
    fn chained_maps_fuse() {
        let input: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = input.par_iter().map(|&x| x + 1).map(|x| x * 3).collect();
        assert_eq!(out[10], 33);
    }
}
