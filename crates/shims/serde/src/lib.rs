//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! value-tree serialization framework with the same *surface* as serde:
//! `#[derive(Serialize, Deserialize)]` (provided by the sibling
//! `serde_derive` shim) plus `serde_json::{to_string, to_string_pretty,
//! from_str}`. Instead of serde's visitor architecture, [`Serialize`] lowers
//! a value to a [`Value`] tree and [`Deserialize`] rebuilds it from one;
//! `serde_json` renders and parses that tree. Swap the
//! `[workspace.dependencies]` path entries for the real crates to get the
//! upstream implementation.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Map type used for JSON objects. `BTreeMap` keeps field order stable so
/// serialized output is deterministic.
pub type Map = BTreeMap<String, Value>;

/// An owned, self-describing value tree (the shim's data model; mirrors
/// `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministic (sorted) key order.
    Object(Map),
}

impl Value {
    /// Borrows the object map if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric value as `f64` if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Returns the numeric value as `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// Returns the numeric value as `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Looks up a field of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Error for a type mismatch at `what`.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::custom(format!("expected {what}, got {kind}"))
    }

    /// Error for a missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` of `{ty}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` to a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::expected(stringify!($t), value))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "{i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        if let Ok(i) = i64::try_from(*self) {
            Value::Int(i)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_u64().ok_or_else(|| Error::expected("u64", value))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::expected("f64", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("f32", value))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn serialize(&self) -> Value {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| Error::expected("tuple array", value))?;
                let expected = [$($idx,)+].len();
                if arr.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got array of {}", arr.len()
                    )));
                }
                Ok(($($name::deserialize(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0i64, -3, i64::MAX] {
            assert_eq!(i64::deserialize(&v.serialize()).unwrap(), v);
        }
        assert_eq!(u64::deserialize(&u64::MAX.serialize()).unwrap(), u64::MAX);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        let f = 1.5f64;
        assert_eq!(f64::deserialize(&f.serialize()).unwrap(), f);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            BTreeMap::<String, u32>::deserialize(&m.serialize()).unwrap(),
            m
        );
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u32::deserialize(&Value::String("x".into())).is_err());
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
        assert!(Vec::<u32>::deserialize(&Value::Null).is_err());
    }
}
