//! `#[derive(Serialize, Deserialize)]` for the workspace's offline `serde`
//! shim.
//!
//! The build container has no crates.io access, so this crate implements the
//! two derives directly on `proc_macro::TokenStream` (no `syn`/`quote`).
//! Supported shapes — which cover every type the workspace derives on:
//!
//! * structs with named fields (`struct S { a: T, b: U }`),
//! * unit structs,
//! * enums whose variants are all unit variants (`enum E { A, B }`) —
//!   serialized as the variant-name string, matching serde's external
//!   representation for C-like enums.
//!
//! Tuple structs, generic types and data-carrying enum variants are rejected
//! with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct with the listed field identifiers.
    Struct { name: String, fields: Vec<String> },
    /// Unit struct.
    UnitStruct { name: String },
    /// Enum with only unit variants.
    Enum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize` (shim) for named-field structs, unit structs
/// and unit-variant enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (shim) for named-field structs, unit structs
/// and unit-variant enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Parses the item the derive is attached to into one of the supported
/// shapes.
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracket group of the attribute.
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute before item".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                return Err(format!("serde shim derive: unexpected `{s}` before item"));
            }
            Some(other) => {
                return Err(format!("serde shim derive: unexpected token `{other}`"));
            }
            None => return Err("serde shim derive: empty item".into()),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: missing item name".into()),
    };

    // Reject generics: the shim only derives on concrete types.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Shape::Struct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            } else {
                Ok(Shape::Enum {
                    name,
                    variants: parse_unit_variants(g.stream())?,
                })
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => {
            Ok(Shape::UnitStruct { name })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Err(format!(
            "serde shim derive does not support tuple struct `{name}`"
        )),
        _ => Err(format!("serde shim derive: malformed body of `{name}`")),
    }
}

/// Extracts field names from the brace group of a named-field struct.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility on the field.
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name.
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => return Err(format!("expected field name, got `{other}`")),
            None => break,
        }
        // Expect `:` then the type; skip type tokens up to a top-level comma.
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("expected `:` after field name".into()),
        }
        let mut angle_depth = 0i32;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Extracts variant names from the brace group of an enum, rejecting
/// data-carrying variants.
fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            _ => {}
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            Some(other) => return Err(format!("expected variant name, got `{other}`")),
            None => break,
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive does not support data-carrying variant `{}`",
                    variants.last().unwrap()
                ));
            }
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert({f:?}.to_string(), serde::Serialize::serialize(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         let mut map = serde::Map::new();\n\
                         {inserts}\
                         serde::Value::Object(map)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> serde::Value {{\n\
                     serde::Value::Object(serde::Map::new())\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            // Missing fields deserialize from `Null`, so `Option<T>` fields
            // may be omitted (matching serde's behaviour); non-optional
            // fields still produce a missing-field error.
            let extracts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match obj.get({f:?}) {{\n\
                             Some(v) => serde::Deserialize::deserialize(v)?,\n\
                             None => serde::Deserialize::deserialize(&serde::Value::Null)\n\
                                 .map_err(|_| serde::Error::missing_field({name:?}, {f:?}))?,\n\
                         }},\n"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let obj = value\n\
                             .as_object()\n\
                             .ok_or_else(|| serde::Error::expected({name:?}, value))?;\n\
                         Ok({name} {{ {extracts} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     value.as_object()\n\
                         .map(|_| {name})\n\
                         .ok_or_else(|| serde::Error::expected({name:?}, value))\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let s = value\n\
                             .as_str()\n\
                             .ok_or_else(|| serde::Error::expected({name:?}, value))?;\n\
                         match s {{\n\
                             {arms}\
                             other => Err(serde::Error::custom(format!(\n\
                                 \"unknown variant `{{other}}` of {name}\"\n\
                             ))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
