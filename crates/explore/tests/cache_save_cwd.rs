//! Regression: `ResultCache::save` to a *bare filename* must create its
//! temporary file next to the target — i.e. in the working directory the
//! bare name resolves against — and leave nothing else behind. This test
//! changes the process working directory, so it lives in its own test
//! binary where no other test can race it.

use plaid::pipeline::MapperChoice;
use plaid_arch::{ArchClass, CommSpec, DesignPoint};
use plaid_explore::{cache_key, EvalRecord, ResultCache, SweepPoint};
use plaid_workloads::find_workload;

#[test]
fn save_to_bare_filename_stays_in_the_scratch_cwd() {
    let scratch = std::env::temp_dir().join(format!("plaid-cache-cwd-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    let original_cwd = std::env::current_dir().unwrap();
    std::env::set_current_dir(&scratch).unwrap();

    let point = SweepPoint {
        workload: find_workload("dwconv").unwrap(),
        design: DesignPoint {
            class: ArchClass::Plaid,
            rows: 2,
            cols: 2,
            config_entries: 16,
            comm: CommSpec::ALIGNED,
        },
        mapper: MapperChoice::Plaid,
    };
    let key = cache_key(&point);
    let cache = ResultCache::new();
    cache.insert(
        key.clone(),
        EvalRecord::failed(&point, "bare-filename save"),
    );

    // Save to a bare filename (no parent component at all) — the temp file
    // must be created beside it in the scratch cwd, then renamed over it.
    cache
        .save(std::path::Path::new("bare-cache.json"))
        .expect("bare-filename save succeeds");

    let entries: Vec<String> = std::fs::read_dir(&scratch)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        entries.iter().any(|n| n == "bare-cache.json"),
        "cache file missing from scratch cwd: {entries:?}"
    );
    assert!(
        !entries.iter().any(|n| n.contains(".tmp-")),
        "temp file left behind in scratch cwd: {entries:?}"
    );

    // Overwriting through the same bare path also stays put, and the saved
    // cache round-trips.
    cache.save(std::path::Path::new("bare-cache.json")).unwrap();
    let reloaded = ResultCache::load(std::path::Path::new("bare-cache.json")).unwrap();
    assert_eq!(reloaded.len(), 1);
    assert!(reloaded.lookup(&key, &point).is_some());

    std::env::set_current_dir(&original_cwd).unwrap();
    std::fs::remove_dir_all(&scratch).ok();
}
