//! The headline sharding guarantee, end to end: a 4-way sharded run of the
//! default 216-point sweep, merged through the `plaid-dse merge` subcommand,
//! reproduces the single-process `run_sweep` output byte for byte — frontier
//! JSON and `SweepStats` totals alike.
//!
//! This is the reproducibility contract CI's shard-matrix + merge-verify
//! jobs enforce on real multi-process runs; here the same path runs
//! in-process (shard sweeps + cache saves) with the actual `plaid-dse`
//! binary doing the merge, so `cargo test` covers it on every platform.

use std::process::Command;

use plaid_explore::{
    merge_outcomes, run_sweep, run_sweep_sharded, EvalRecord, FrontierReport, ResultCache,
    SeedPolicy, ShardSpec, SweepPlan,
};
use plaid_workloads::table2_workloads;

/// The `plaid-dse` default plan: the 54-point default grid crossed with the
/// `rep8` workload selection (every 8th registry workload) — 216 points.
fn default_plan() -> SweepPlan {
    let workloads: Vec<_> = table2_workloads().into_iter().step_by(8).collect();
    let plan = SweepPlan::cross(&workloads, &plaid_arch::SpaceSpec::default_grid());
    assert_eq!(plan.len(), 216, "the default sweep is 216 points");
    plan
}

fn strip_seeds(records: &[EvalRecord]) -> Vec<EvalRecord> {
    records.iter().map(EvalRecord::without_seed).collect()
}

#[test]
fn four_way_sharded_default_sweep_merges_bit_identically() {
    let plan = default_plan();
    let scratch = std::env::temp_dir().join(format!("plaid-shard-test-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();

    // Single-process reference, computed independently of the shards.
    let whole = run_sweep(&plan, &ResultCache::new());
    let whole_frontier = FrontierReport::from_records(&whole.records);
    let whole_frontier_json = serde_json::to_string_pretty(&whole_frontier).unwrap();

    // Four shard runs, each with its own cache file and seed store —
    // exactly what four `plaid-dse --shard i/4` processes would do.
    const SHARDS: u32 = 4;
    let mut shard_outcomes = Vec::new();
    let mut shard_cache_paths = Vec::new();
    for index in 0..SHARDS {
        let cache = ResultCache::new();
        let outcome = run_sweep_sharded(
            &plan,
            ShardSpec {
                index,
                count: SHARDS,
            },
            &cache,
            SeedPolicy::Exact,
        );
        assert_eq!(
            cache.len(),
            outcome.records.len(),
            "shard cache holds exactly its shard's records"
        );
        let path = scratch.join(format!("shard-{index}.json"));
        cache.save(&path).unwrap();
        shard_cache_paths.push(path);
        shard_outcomes.push(outcome);
    }

    // Library-level merge: records reorder into plan order, stats totals
    // match the single-process pass (seeding counters are intra-shard and
    // wall time is aggregate, so only the deterministic totals compare).
    let merged = merge_outcomes(&plan, &shard_outcomes).expect("shards partition the plan");
    assert_eq!(merged.stats.points, whole.stats.points);
    assert_eq!(merged.stats.compiled, whole.stats.compiled);
    assert_eq!(merged.stats.cache_hits, whole.stats.cache_hits);
    assert_eq!(merged.stats.failures, whole.stats.failures);
    assert_eq!(
        strip_seeds(&merged.records),
        strip_seeds(&whole.records),
        "merged records are the single-process records, in plan order"
    );

    // Binary-level merge: `plaid-dse merge` unions the four shard caches
    // and emits the merged frontier JSON.
    let merged_cache_path = scratch.join("merged.json");
    let merged_frontier_path = scratch.join("merged_frontier.json");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_plaid-dse"));
    cmd.arg("merge")
        .arg(&merged_cache_path)
        .args(&shard_cache_paths)
        .arg("--frontier")
        .arg(&merged_frontier_path)
        .arg("--quiet");
    let output = cmd.output().expect("plaid-dse merge runs");
    assert!(
        output.status.success(),
        "plaid-dse merge failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The headline assertion: byte-for-byte identical frontier JSON.
    let merged_frontier_json = std::fs::read_to_string(&merged_frontier_path).unwrap();
    assert_eq!(
        merged_frontier_json, whole_frontier_json,
        "merged frontier JSON diverges from the single-process sweep"
    );

    // The merged cache covers the whole plan and reloads cleanly.
    let reloaded = ResultCache::load(&merged_cache_path).unwrap();
    assert_eq!(reloaded.len(), plan.len());

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn shard_cli_flag_runs_the_content_hash_subset() {
    // Cheap end-to-end check of `--shard I/N` on the smoke grid: the saved
    // shard cache holds exactly the shard sub-plan's points.
    let scratch = std::env::temp_dir().join(format!("plaid-shard-cli-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    let cache_path = scratch.join("shard-cli.json");
    let output = Command::new(env!("CARGO_BIN_EXE_plaid-dse"))
        .args([
            "--grid",
            "smoke",
            "--shard",
            "1/3",
            "--passes",
            "1",
            "--no-frontier-file",
            "--quiet",
            "--cache",
        ])
        .arg(&cache_path)
        .output()
        .expect("plaid-dse --shard runs");
    assert!(
        output.status.success(),
        "plaid-dse --shard failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let workloads: Vec<_> = table2_workloads().into_iter().step_by(8).collect();
    let plan = SweepPlan::cross(&workloads, &plaid_arch::SpaceSpec::smoke_grid());
    let sub = plaid_explore::shard_plan(&plan, ShardSpec { index: 1, count: 3 });
    assert!(!sub.is_empty(), "shard 1/3 of the smoke plan is non-empty");
    let cache = ResultCache::load(&cache_path).unwrap();
    assert_eq!(cache.len(), sub.len());
    std::fs::remove_dir_all(&scratch).ok();
}
