//! Design-space exploration for aligned compute/communication provisioning.
//!
//! The paper argues that CGRA efficiency is a *provisioning alignment*
//! problem: a fabric wastes energy when its communication resources (routers,
//! configuration select bits) outrun its compute, and wastes performance when
//! they fall short. Answering "which provisioning is right for this workload
//! mix?" requires sweeping the design space — exactly what this crate does:
//!
//! 1. [`plaid_arch::enumerate::SpaceSpec`] enumerates architecture points
//!    across the compute axis (array dimensions, configuration-memory depth)
//!    and the structured communication axis ([`plaid_arch::CommSpec`]:
//!    topology × per-link-group bandwidth × select policy, with the legacy
//!    [`plaid_arch::CommLevel`] presets lowering onto it bit-exactly);
//! 2. [`sweep::SweepPlan`] crosses those points with workloads and
//!    [`sweep::run_sweep`] evaluates them in parallel through the
//!    `plaid::pipeline`, memoizing every result in a content-addressed
//!    [`cache::ResultCache`] so repeated and overlapping sweeps are
//!    near-free;
//! 3. [`pareto::FrontierReport`] extracts the per-workload Pareto frontier
//!    over {cycles, area, energy} and serializes it to JSON;
//! 4. [`shard`] scales a sweep *out*: [`shard::partition_plan`] splits a
//!    plan across processes or hosts by the cache's own content hashes
//!    (stable under reordering, so uncoordinated hosts agree), and
//!    [`cache::ResultCache::union_merge`] + [`shard::merge_outcomes`]
//!    reassemble shard results into the byte-identical single-process
//!    outcome (`plaid-dse --shard I/N` / `plaid-dse merge`).
//!
//! The `plaid-dse` binary drives all three stages from the command line; the
//! `provisioning_frontier` example reproduces the paper's aligned-versus-
//! misaligned comparison as a frontier table.
//!
//! # Example
//!
//! ```
//! use plaid_arch::{ArchClass, CommSpec, SpaceSpec};
//! use plaid_explore::{run_sweep, FrontierReport, ResultCache, SweepPlan};
//! use plaid_workloads::find_workload;
//!
//! let spec = SpaceSpec {
//!     classes: vec![ArchClass::Plaid],
//!     dims: vec![(2, 2)],
//!     config_entries: vec![16],
//!     comm_specs: vec![CommSpec::ALIGNED],
//! };
//! let plan = SweepPlan::cross(&[find_workload("dwconv").unwrap()], &spec);
//! let cache = ResultCache::new();
//! let outcome = run_sweep(&plan, &cache);
//! let frontier = FrontierReport::from_records(&outcome.records);
//! assert_eq!(frontier.frontiers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod pareto;
pub mod record;
pub mod seed;
pub mod shard;
pub mod sweep;

pub use cache::{cache_key, cache_key_hash, ResultCache};
pub use pareto::{pareto_indices, FrontierReport, Objectives, WorkloadFrontier};
pub use record::EvalRecord;
pub use seed::{provisioning_distance, SeedFamily, SeedPolicy, SeedStore};
pub use shard::{
    merge_outcomes, partition_plan, run_sweep_sharded, shard_of, shard_plan, ShardSpec,
};
pub use sweep::{
    default_mapper_for_class, evaluate_point, run_sweep, run_sweep_with, SweepOutcome, SweepPlan,
    SweepPoint, SweepStats,
};
