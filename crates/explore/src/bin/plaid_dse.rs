//! `plaid-dse` — parallel design-space exploration from the command line.
//!
//! Sweeps (workload × architecture × mapper) points across the provisioning
//! grid, memoizes every evaluation in a content-addressed cache, and emits
//! the per-workload Pareto frontier over {cycles, area, energy} as JSON.
//!
//! By default the sweep runs twice — a cold pass and a warm pass — so the
//! cache behaviour is visible in one invocation: the second pass reports a
//! 100% hit rate and a correspondingly lower wall time.

use std::path::PathBuf;
use std::process::ExitCode;

use plaid_arch::{ArchClass, BwClass, CommSpec, SpaceSpec, Topology};
use plaid_explore::{
    run_sweep_with, shard_plan, FrontierReport, ResultCache, SeedPolicy, ShardSpec, SweepPlan,
};
use plaid_workloads::{table2_workloads, Workload};

struct Options {
    grid: SpaceSpec,
    workloads: Vec<Workload>,
    passes: u32,
    seed_policy: SeedPolicy,
    shard: Option<ShardSpec>,
    cache_path: Option<PathBuf>,
    out_path: Option<PathBuf>,
    frontier_path: Option<PathBuf>,
    quiet: bool,
}

const USAGE: &str = "\
plaid-dse — parallel design-space exploration over CGRA provisioning points

USAGE:
    plaid-dse [OPTIONS]
    plaid-dse merge <OUT_CACHE> <SHARD_CACHE>... [--frontier FILE] [--quiet]
                    [--allow-overlap]

SUBCOMMANDS:
    merge    Union shard caches into <OUT_CACHE> and emit the merged Pareto
             frontier JSON — byte-identical to a single-process sweep of the
             same points. Shard caches are disjoint by construction, so
             inputs re-supplying an already-merged record identity are
             rejected (duplicated shard run / mismatched sweep
             configuration) unless --allow-overlap is given

OPTIONS:
    --grid <default|smoke|full>   Architecture grid to enumerate [default: default]
    --topology <LIST>             Replace the grid's communication axis with
                                  the cross product of these topologies and
                                  the --bw classes. Comma-separated:
                                  mesh|torus|express[:N]|xpN, or 'all'
                                  (mesh,torus,express)
    --bw <LIST>                   Bandwidth classes for --topology crossing:
                                  half|base|boost|double (comma-separated),
                                  or 'all' [default: base]
    --dims <LIST>                 Override the grid's array dimensions,
                                  e.g. 4x4 or 2x2,3x3,4x4
    --workloads <SPEC>            Comma-separated workload names, 'all', or
                                  'repN' for every Nth registry workload
                                  [default: rep8 — 4 workloads spanning domains]
    --passes <N>                  Sweep passes over the same plan [default: 2,
                                  demonstrating cold vs. cached performance]
    --seed <off|exact|aggressive> Warm-start policy [default: exact — reuse
                                  placement seeds across neighbouring design
                                  points whenever results stay bit-identical
                                  to a cold run]
    --no-seed                     Disable warm-start seeding (same as
                                  --seed off); every point maps from scratch
    --shard <I/N>                 Evaluate only shard I of an N-way
                                  content-hash partition of the plan
                                  (0-based). Disjoint and covering across
                                  shards, stable under point reordering;
                                  combine shard caches with `plaid-dse merge`
    --cache <FILE>                Load/save the content-addressed result cache
    --out <FILE>                  Write all sweep records as JSON
    --frontier <FILE>             Write the Pareto frontier as JSON
                                  [default: dse_frontier.json]
    --no-frontier-file            Skip writing the frontier JSON file
    --list                        Print the plan (workloads × grid) and exit
    --quiet                       Suppress the frontier table on stdout
    -h, --help                    Show this help
";

fn parse_grid(name: &str) -> Result<SpaceSpec, String> {
    match name {
        "default" => Ok(SpaceSpec::default_grid()),
        "smoke" => Ok(SpaceSpec::smoke_grid()),
        "full" => Ok(SpaceSpec {
            classes: vec![
                ArchClass::SpatioTemporal,
                ArchClass::Spatial,
                ArchClass::Plaid,
            ],
            dims: vec![(2, 2), (2, 4), (3, 3), (4, 4), (3, 5), (4, 6), (6, 6)],
            config_entries: vec![4, 8, 16, 32],
            comm_specs: CommSpec::presets(),
        }),
        other => Err(format!("unknown grid `{other}` (default|smoke|full)")),
    }
}

fn parse_topologies(spec: &str) -> Result<Vec<Topology>, String> {
    if spec == "all" {
        return Ok(vec![
            Topology::Mesh,
            Topology::Torus,
            Topology::Express { stride: 2 },
        ]);
    }
    spec.split(',').map(Topology::parse).collect()
}

fn parse_bw_classes(spec: &str) -> Result<Vec<BwClass>, String> {
    if spec == "all" {
        return Ok(BwClass::ALL.to_vec());
    }
    spec.split(',').map(BwClass::parse).collect()
}

fn parse_dims(spec: &str) -> Result<Vec<(u32, u32)>, String> {
    spec.split(',')
        .map(|dim| {
            let (rows, cols) = dim
                .split_once('x')
                .ok_or_else(|| format!("bad dimensions `{dim}` (expected RxC, e.g. 4x4)"))?;
            let rows: u32 = rows.parse().map_err(|_| format!("bad rows in `{dim}`"))?;
            let cols: u32 = cols.parse().map_err(|_| format!("bad cols in `{dim}`"))?;
            if rows == 0 || cols == 0 {
                return Err(format!("dimensions must be non-zero in `{dim}`"));
            }
            Ok((rows, cols))
        })
        .collect()
}

fn parse_workloads(spec: &str) -> Result<Vec<Workload>, String> {
    let registry = table2_workloads();
    if spec == "all" {
        return Ok(registry);
    }
    if let Some(stride) = spec.strip_prefix("rep") {
        let n: usize = stride
            .parse()
            .map_err(|_| format!("bad stride in `{spec}`"))?;
        if n == 0 {
            return Err("stride must be positive".into());
        }
        return Ok(registry.into_iter().step_by(n).collect());
    }
    spec.split(',')
        .map(|name| {
            registry
                .iter()
                .find(|w| w.name == name)
                .cloned()
                .ok_or_else(|| format!("unknown workload `{name}` (try --list)"))
        })
        .collect()
}

fn parse_args(args: Vec<String>) -> Result<Option<Options>, String> {
    let mut grid = SpaceSpec::default_grid();
    let mut topologies: Option<Vec<Topology>> = None;
    let mut bw_classes: Option<Vec<BwClass>> = None;
    let mut dims: Option<Vec<(u32, u32)>> = None;
    let mut workloads = parse_workloads("rep8").expect("default workload spec is valid");
    let mut passes = 2u32;
    let mut seed_policy = SeedPolicy::Exact;
    let mut shard = None;
    let mut cache_path = None;
    let mut out_path = None;
    let mut frontier_path = Some(PathBuf::from("dse_frontier.json"));
    let mut quiet = false;
    let mut list = false;

    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--grid" => grid = parse_grid(&value("--grid")?)?,
            "--topology" => topologies = Some(parse_topologies(&value("--topology")?)?),
            "--bw" => bw_classes = Some(parse_bw_classes(&value("--bw")?)?),
            "--dims" => dims = Some(parse_dims(&value("--dims")?)?),
            "--workloads" => workloads = parse_workloads(&value("--workloads")?)?,
            "--passes" => {
                passes = value("--passes")?
                    .parse()
                    .map_err(|_| "bad --passes value".to_string())?;
                if passes == 0 {
                    return Err("--passes must be at least 1".into());
                }
            }
            "--seed" => seed_policy = SeedPolicy::parse(&value("--seed")?)?,
            "--no-seed" => seed_policy = SeedPolicy::Off,
            "--shard" => shard = Some(ShardSpec::parse(&value("--shard")?)?),
            "--cache" => cache_path = Some(PathBuf::from(value("--cache")?)),
            "--out" => out_path = Some(PathBuf::from(value("--out")?)),
            "--frontier" => frontier_path = Some(PathBuf::from(value("--frontier")?)),
            "--no-frontier-file" => frontier_path = None,
            "--list" => list = true,
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }

    // --topology / --bw replace the grid's communication axis with the
    // cross product of the requested topologies and (uniform) bandwidth
    // classes; --dims overrides the array dimensions. `--bw` without
    // `--topology` varies bandwidth on the mesh.
    if topologies.is_some() || bw_classes.is_some() {
        let topologies = topologies.unwrap_or_else(|| vec![Topology::Mesh]);
        let bw_classes = bw_classes.unwrap_or_else(|| vec![BwClass::Base]);
        grid = grid.with_comm_grid(&topologies, &bw_classes);
    }
    if let Some(dims) = dims {
        grid.dims = dims;
    }

    let options = Options {
        grid,
        workloads,
        passes,
        seed_policy,
        shard,
        cache_path,
        out_path,
        frontier_path,
        quiet,
    };
    if list {
        let designs = options.grid.enumerate();
        println!("workloads ({}):", options.workloads.len());
        for w in &options.workloads {
            println!("  {}", w.name);
        }
        println!("architecture points ({}):", designs.len());
        for d in &designs {
            println!("  {}", d.label());
        }
        println!(
            "plan: {} x {} = {} sweep points",
            options.workloads.len(),
            designs.len(),
            options.workloads.len() * designs.len()
        );
        return Ok(None);
    }
    Ok(Some(options))
}

fn run(options: &Options) -> Result<(), String> {
    let cache = match &options.cache_path {
        Some(path) => ResultCache::load(path)
            .map_err(|e| format!("cannot load cache {}: {e}", path.display()))?,
        None => ResultCache::new(),
    };
    if let Some(path) = &options.cache_path {
        if !cache.is_empty() {
            eprintln!(
                "loaded {} cached results from {}",
                cache.len(),
                path.display()
            );
        }
    }

    let full_plan = SweepPlan::cross(&options.workloads, &options.grid);
    let full_len = full_plan.len();
    let plan = match options.shard {
        Some(shard) => shard_plan(&full_plan, shard),
        None => full_plan,
    };
    match options.shard {
        Some(shard) => eprintln!(
            "sweeping shard {} — {} of {} plan points ({} workloads x {} architecture points, \
             content-hash partition) on {} threads, seeding {}",
            shard.label(),
            plan.len(),
            full_len,
            options.workloads.len(),
            options.grid.enumerate().len(),
            rayon::current_num_threads(),
            options.seed_policy.label(),
        ),
        None => eprintln!(
            "sweeping {} points ({} workloads x {} architecture points) on {} threads, seeding {}",
            plan.len(),
            options.workloads.len(),
            options.grid.enumerate().len(),
            rayon::current_num_threads(),
            options.seed_policy.label(),
        ),
    }

    let mut last_outcome = None;
    for pass in 1..=options.passes {
        let outcome = run_sweep_with(&plan, &cache, options.seed_policy);
        let s = &outcome.stats;
        eprintln!(
            "pass {pass}: {} points in {} ms — {} compiled, {} cache hits ({:.0}% hit rate), \
             {} seeded ({} seed hits), {} infeasible",
            s.points,
            s.wall_ms,
            s.compiled,
            s.cache_hits,
            s.hit_rate() * 100.0,
            s.seeded,
            s.seed_hits,
            s.failures,
        );
        last_outcome = Some(outcome);
    }
    let outcome = last_outcome.expect("at least one pass");

    if let Some(path) = &options.cache_path {
        cache
            .save(path)
            .map_err(|e| format!("cannot save cache {}: {e}", path.display()))?;
        eprintln!("saved {} results to {}", cache.len(), path.display());
    }
    if let Some(path) = &options.out_path {
        let json =
            serde_json::to_string_pretty(&outcome).map_err(|e| format!("serialize sweep: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("wrote sweep records to {}", path.display());
    }

    let frontier = FrontierReport::from_records(&outcome.records);
    emit_frontier(
        &frontier,
        options.frontier_path.as_deref(),
        options.quiet,
        "",
    )
}

/// Writes the frontier JSON (when a path is given) and renders the table
/// (unless quiet) — shared by the sweep and merge paths so their output
/// stays in lockstep (the merge-verify CI job diffs the two files byte for
/// byte).
fn emit_frontier(
    frontier: &FrontierReport,
    path: Option<&std::path::Path>,
    quiet: bool,
    kind: &str,
) -> Result<(), String> {
    if let Some(path) = path {
        let json = serde_json::to_string_pretty(frontier)
            .map_err(|e| format!("serialize frontier: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!(
            "wrote {kind}Pareto frontier ({} points across {} workloads) to {}",
            frontier.frontier_size(),
            frontier.frontiers.len(),
            path.display()
        );
    }
    if !quiet {
        print!("{}", frontier.render());
    }
    Ok(())
}

/// The `merge` subcommand: unions shard caches into one cache file and
/// derives the merged Pareto frontier from its canonical record set —
/// byte-identical to the frontier a single-process sweep of the same points
/// writes, because frontier extraction is order-insensitive and the shard
/// caches partition the plan.
///
/// Correct shard caches are *disjoint* (the partition is content-addressed),
/// so an input contributing records whose identity is already present is a
/// misconfiguration — the same `--shard` run twice, a file listed twice, or
/// hosts that swept different grids — and is rejected by default: the
/// last-input-wins resolution would otherwise silently produce a frontier
/// over a point set no single plan describes. `--allow-overlap` opts into
/// the general cache-union behaviour for deliberately overlapping caches.
fn run_merge(args: Vec<String>) -> Result<(), String> {
    let mut out_cache: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut frontier_path = Some(PathBuf::from("dse_frontier.json"));
    let mut quiet = false;
    let mut allow_overlap = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--frontier" => {
                frontier_path = Some(PathBuf::from(
                    args.next().ok_or("missing value for --frontier")?,
                ))
            }
            "--no-frontier-file" => frontier_path = None,
            "--quiet" => quiet = true,
            "--allow-overlap" => allow_overlap = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown merge option `{other}` (see --help)"))
            }
            path if out_cache.is_none() => out_cache = Some(PathBuf::from(path)),
            path => inputs.push(PathBuf::from(path)),
        }
    }
    let out_cache = out_cache.ok_or("merge: missing <OUT_CACHE> argument (see --help)")?;
    if inputs.is_empty() {
        return Err("merge: no shard caches to merge (see --help)".into());
    }

    let merged = ResultCache::new();
    for path in &inputs {
        let shard = ResultCache::load(path)
            .map_err(|e| format!("cannot load shard cache {}: {e}", path.display()))?;
        let loaded = shard.len();
        let added = merged.union_merge(&shard);
        let overlapping = loaded - added;
        if overlapping > 0 && !allow_overlap {
            return Err(format!(
                "merge: {} contributes {overlapping} record(s) whose identity another input \
                 already supplied — shard caches are disjoint by construction, so this usually \
                 means the same shard ran twice, a file was listed twice, or the hosts swept \
                 different configurations; pass --allow-overlap to union anyway (last input wins)",
                path.display()
            ));
        }
        eprintln!("merged {}: {loaded} records, {added} new", path.display());
    }
    merged
        .save(&out_cache)
        .map_err(|e| format!("cannot save merged cache {}: {e}", out_cache.display()))?;
    eprintln!(
        "saved {} merged records to {}",
        merged.len(),
        out_cache.display()
    );

    let records = merged.canonical_records();
    let frontier = FrontierReport::from_records(&records);
    emit_frontier(&frontier, frontier_path.as_deref(), quiet, "merged ")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        return match run_merge(args[1..].to_vec()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("plaid-dse: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match parse_args(args) {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(options)) => match run(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("plaid-dse: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("plaid-dse: {e}");
            ExitCode::FAILURE
        }
    }
}
