//! Content-addressed memoization of sweep evaluations.
//!
//! Every (workload × design point × mapper) evaluation is keyed by a hash of
//! the *content* that determines its result — the workload descriptor, the
//! full architecture parameterization and the mapper choice — not by its
//! position in any particular sweep. Overlapping or repeated sweeps therefore
//! share results: a point evaluated once is never compiled again, whether the
//! second request comes from the same process or from a cache file persisted
//! by an earlier `plaid-dse` run.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::record::EvalRecord;
use crate::sweep::SweepPoint;

/// FNV-1a 64-bit hash — stable across platforms and runs, unlike
/// `DefaultHasher`, which makes keys safe to persist.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Computes the raw 64-bit content hash of a sweep point — the number behind
/// [`cache_key`].
///
/// The hash covers the workload identity (name, kernel, unroll, iteration
/// count), the complete architecture parameterization (class, dimensions,
/// configuration depth, communication spec — via the design point's JSON
/// form, which includes every `ArchParams` knob the builders consume) and the
/// mapper. It depends only on the point's *content*, never on its position in
/// a sweep plan, which is what makes it usable both as a cache key and as the
/// shard-assignment hash of [`crate::shard::partition_plan`] (stable under
/// point reordering).
pub fn cache_key_hash(point: &SweepPoint) -> u64 {
    let descriptor = point.workload.descriptor();
    let canonical = format!(
        "v1|workload={}|kernel={}|unroll={}|iters={}|design={}|params={}|mapper={}",
        descriptor.name,
        descriptor.kernel,
        descriptor.unroll,
        descriptor.iterations,
        serde_json::to_string(&point.design).expect("design point serializes"),
        serde_json::to_string(&point.design.params()).expect("params serialize"),
        point.mapper.label(),
    );
    fnv1a64(canonical.as_bytes())
}

/// Computes the content-addressed cache key of a sweep point.
///
/// The key is the hex form of [`cache_key_hash`]. The `v1:` prefix versions
/// the scheme so a future format change invalidates old cache files instead
/// of aliasing them.
pub fn cache_key(point: &SweepPoint) -> String {
    format!("v1:{:016x}", cache_key_hash(point))
}

/// True when a cached record was produced for exactly this sweep point.
fn record_matches(record: &EvalRecord, point: &SweepPoint) -> bool {
    record.design == point.design
        && record.mapper == point.mapper
        && record.workload == point.workload.descriptor()
}

/// Thread-safe, content-addressed result cache with hit/miss accounting.
///
/// Entries are stored in per-key *buckets*: two points whose content hashes
/// collide on the same 64-bit key coexist in one bucket (each record's full
/// identity disambiguates them) instead of evicting each other on every
/// insert.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: RwLock<HashMap<String, Vec<EvalRecord>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a cache persisted by [`ResultCache::save`]. A missing file
    /// yields an empty cache; a malformed file is an error.
    ///
    /// Both the current bucketed format (`key -> [record, ...]`) and the
    /// legacy single-record format (`key -> record`) are accepted, so cache
    /// files written before collision buckets existed keep loading.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the file exists but cannot be read or
    /// parsed.
    pub fn load(path: &Path) -> io::Result<Self> {
        if !path.exists() {
            return Ok(Self::new());
        }
        let text = std::fs::read_to_string(path)?;
        let invalid =
            |e: serde_json::Error| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
        let raw: HashMap<String, serde_json::Value> =
            serde_json::from_str(&text).map_err(invalid)?;
        let mut entries: HashMap<String, Vec<EvalRecord>> = HashMap::with_capacity(raw.len());
        for (key, value) in raw {
            let bucket = if value.as_array().is_some() {
                serde_json::from_value::<Vec<EvalRecord>>(&value).map_err(invalid)?
            } else {
                vec![serde_json::from_value::<EvalRecord>(&value).map_err(invalid)?]
            };
            entries.insert(key, bucket);
        }
        Ok(ResultCache {
            entries: RwLock::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Persists the cache as JSON (object keyed by content hash, one bucket
    /// of identity-verified records per key).
    ///
    /// The write is atomic: the JSON goes to a temporary file in the target's
    /// own directory which is then renamed over `path`, so a crash mid-save
    /// can never leave a truncated cache file behind for
    /// [`ResultCache::load`] to reject on every future run. The temporary
    /// file is created *next to the target* — resolved through
    /// [`Path::parent`], with an empty parent (a bare file name) meaning the
    /// current directory — rather than naively rewriting the path, so the
    /// rename never crosses a filesystem boundary and a bare-filename save
    /// from any working directory lands its temp file beside the cache.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the file cannot be written or renamed.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let entries = self.entries.read().expect("cache lock poisoned");
        let text = serde_json::to_string_pretty(&*entries)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        drop(entries);
        let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "cache path has no file name")
        })?;
        // `Path::parent` returns `Some("")` for a bare file name — an empty
        // parent means the current directory, made explicit as `.` so the
        // temp file verifiably lands beside the target.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let tmp = parent.join(format!("{file_name}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, text)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Unions another cache's records into this one, returning how many
    /// records were *new* (an identity not previously present under its
    /// key). A record whose exact identity (workload × design × mapper)
    /// already exists is replaced by `other`'s copy — later merge inputs
    /// win — and colliding-key buckets union record-by-record, so two
    /// points sharing a 64-bit key never evict each other during a merge.
    ///
    /// This is the merge layer of sharded sweeps: shard-local caches are
    /// disjoint by construction ([`crate::shard::partition_plan`] assigns
    /// each point to exactly one shard), so unioning them reconstructs the
    /// record set an unsharded sweep would have produced.
    pub fn union_merge(&self, other: &ResultCache) -> usize {
        // Merging a cache into itself is a no-op (union is idempotent);
        // without this check the read lock on `other` would deadlock
        // against the write lock on `self` — the same RwLock.
        if std::ptr::eq(self, other) {
            return 0;
        }
        let other_entries = other.entries.read().expect("cache lock poisoned");
        let mut entries = self.entries.write().expect("cache lock poisoned");
        let mut added = 0usize;
        for (key, bucket) in other_entries.iter() {
            let target = entries.entry(key.clone()).or_default();
            for record in bucket {
                match target.iter_mut().find(|r| {
                    r.workload == record.workload
                        && r.design == record.design
                        && r.mapper == record.mapper
                }) {
                    Some(slot) => *slot = record.clone(),
                    None => {
                        target.push(record.clone());
                        added += 1;
                    }
                }
            }
        }
        added
    }

    /// All cached records in a canonical, content-determined order: keys
    /// ascending, and within a colliding-key bucket by serialized form. Two
    /// caches holding the same record set — regardless of the insertion or
    /// merge order that built them — return byte-identical snapshots, which
    /// is what makes merged-frontier output reproducible and lets tests
    /// compare caches for semantic equality.
    pub fn canonical_records(&self) -> Vec<EvalRecord> {
        let entries = self.entries.read().expect("cache lock poisoned");
        let mut keys: Vec<&String> = entries.keys().collect();
        keys.sort();
        let mut records = Vec::with_capacity(entries.values().map(Vec::len).sum());
        for key in keys {
            let bucket = &entries[key];
            if bucket.len() <= 1 {
                records.extend(bucket.iter().cloned());
            } else {
                let mut sorted: Vec<EvalRecord> = bucket.clone();
                sorted.sort_by_key(|r| serde_json::to_string(r).expect("record serializes"));
                records.extend(sorted);
            }
        }
        records
    }

    /// Looks up a point by its content key, counting a hit or miss.
    ///
    /// The stored records' identities are verified against `point` before
    /// one is returned: a 64-bit key collision (or a corrupted/hand-edited
    /// cache file) is treated as a miss, so collisions degrade to
    /// recompilation instead of silently returning another point's result.
    pub fn lookup(&self, key: &str, point: &SweepPoint) -> Option<EvalRecord> {
        let entries = self.entries.read().expect("cache lock poisoned");
        match entries
            .get(key)
            .and_then(|bucket| bucket.iter().find(|r| record_matches(r, point)))
        {
            Some(record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an evaluated record into its key's bucket, replacing a stored
    /// record with the same identity and coexisting with colliding records
    /// of *different* identity (the historical behaviour overwrote them, so
    /// two colliding points evicted each other forever and one was silently
    /// lost on save).
    pub fn insert(&self, key: String, record: EvalRecord) {
        let mut entries = self.entries.write().expect("cache lock poisoned");
        let bucket = entries.entry(key).or_default();
        match bucket.iter_mut().find(|r| {
            r.workload == record.workload && r.design == record.design && r.mapper == record.mapper
        }) {
            Some(slot) => *slot = record,
            None => bucket.push(record),
        }
    }

    /// Number of cached records (across all buckets).
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .expect("cache lock poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry since construction (or the last
    /// [`ResultCache::reset_counters`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from cache (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Zeroes the hit/miss counters (entries are kept). Sweeps call this
    /// between passes so per-pass rates are meaningful.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid::pipeline::MapperChoice;
    use plaid_arch::{ArchClass, BwClass, CommLevel, CommSpec, DesignPoint, Topology};
    use plaid_workloads::find_workload;

    fn spec_point(workload: &str, comm: CommSpec) -> SweepPoint {
        SweepPoint {
            workload: find_workload(workload).unwrap(),
            design: DesignPoint {
                class: ArchClass::Plaid,
                rows: 2,
                cols: 2,
                config_entries: 16,
                comm,
            },
            mapper: MapperChoice::Plaid,
        }
    }

    fn point(workload: &str, comm: CommLevel) -> SweepPoint {
        spec_point(workload, comm.spec())
    }

    #[test]
    fn keys_are_stable_and_content_sensitive() {
        let a = cache_key(&point("dwconv", CommLevel::Aligned));
        let b = cache_key(&point("dwconv", CommLevel::Aligned));
        assert_eq!(a, b, "same content, same key");
        let c = cache_key(&point("dwconv", CommLevel::Lean));
        assert_ne!(a, c, "different comm level, different key");
        let d = cache_key(&point("fc", CommLevel::Aligned));
        assert_ne!(a, d, "different workload, different key");
        assert!(a.starts_with("v1:"));
    }

    #[test]
    fn structured_comm_specs_never_alias_a_preset_key() {
        // Regression for the scalar-era latent bug: a key derived from a
        // 3-valued comm scalar cannot distinguish specs that share a
        // bandwidth level but differ in topology or per-group allocation.
        // The key must cover the *full* comm structure.
        let aligned = spec_point("dwconv", CommSpec::ALIGNED);
        let torus = spec_point("dwconv", CommSpec::uniform(Topology::Torus, BwClass::Base));
        let express = spec_point(
            "dwconv",
            CommSpec::uniform(Topology::Express { stride: 2 }, BwClass::Base),
        );
        let split = spec_point(
            "dwconv",
            CommSpec {
                topology: Topology::Mesh,
                link_bw: plaid_arch::LinkBw {
                    local: BwClass::Half,
                    global: BwClass::Base,
                },
                select_policy: plaid_arch::SelectPolicy::Proportional,
            },
        );
        let keys = [
            cache_key(&aligned),
            cache_key(&torus),
            cache_key(&express),
            cache_key(&split),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "specs {i} and {j} alias one cache key");
                }
            }
        }
        // And even under a forced key collision, the bucket's identity check
        // keeps the records apart (the design embeds the full spec).
        let cache = ResultCache::new();
        cache.insert(keys[0].clone(), EvalRecord::failed(&torus, "torus"));
        assert!(
            cache.lookup(&keys[0], &aligned).is_none(),
            "a torus record must never serve an aligned lookup"
        );
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ResultCache::new();
        let p = point("dwconv", CommLevel::Aligned);
        let key = cache_key(&p);
        assert!(cache.lookup(&key, &p).is_none());
        assert_eq!(cache.misses(), 1);
        let record = EvalRecord::failed(&p, "probe");
        cache.insert(key.clone(), record);
        assert!(cache.lookup(&key, &p).is_some());
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        cache.reset_counters();
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn colliding_key_with_wrong_identity_is_a_miss() {
        // Simulate a 64-bit hash collision: a record for a *different* point
        // stored under this point's key must not be returned.
        let cache = ResultCache::new();
        let p = point("dwconv", CommLevel::Aligned);
        let other = point("fc", CommLevel::Rich);
        let key = cache_key(&p);
        cache.insert(key.clone(), EvalRecord::failed(&other, "imposter"));
        assert!(
            cache.lookup(&key, &p).is_none(),
            "mismatched identity served"
        );
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn colliding_points_coexist_in_one_bucket() {
        // Regression: the historical cache stored one record per key, so on
        // a 64-bit collision `insert` overwrote the other point's entry and
        // the two points evicted each other forever.
        let cache = ResultCache::new();
        let p = point("dwconv", CommLevel::Aligned);
        let other = point("fc", CommLevel::Rich);
        let key = cache_key(&p);
        cache.insert(key.clone(), EvalRecord::failed(&p, "mine"));
        cache.insert(key.clone(), EvalRecord::failed(&other, "collider"));
        assert_eq!(cache.len(), 2, "both colliding records retained");
        let got_p = cache.lookup(&key, &p).expect("first record kept");
        assert_eq!(got_p.error.as_deref(), Some("mine"));
        let got_other = cache.lookup(&key, &other).expect("collider kept");
        assert_eq!(got_other.error.as_deref(), Some("collider"));
        // Same-identity insert replaces rather than appending.
        cache.insert(key.clone(), EvalRecord::failed(&p, "updated"));
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.lookup(&key, &p).unwrap().error.as_deref(),
            Some("updated")
        );
        // Both survive persistence.
        let dir = std::env::temp_dir().join("plaid-explore-collision-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        let reloaded = ResultCache::load(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert!(reloaded.lookup(&key, &p).is_some());
        assert!(reloaded.lookup(&key, &other).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn union_merge_unions_buckets_and_self_merge_is_a_noop() {
        let cache = ResultCache::new();
        let p = point("dwconv", CommLevel::Aligned);
        let other_point = point("fc", CommLevel::Rich);
        let key = cache_key(&p);
        cache.insert(key.clone(), EvalRecord::failed(&p, "mine"));
        // Self-merge must neither deadlock nor duplicate.
        assert_eq!(cache.union_merge(&cache), 0);
        assert_eq!(cache.len(), 1);
        // A colliding record of different identity arriving from another
        // cache joins the bucket instead of evicting.
        let incoming = ResultCache::new();
        incoming.insert(key.clone(), EvalRecord::failed(&other_point, "collider"));
        incoming.insert(key.clone(), EvalRecord::failed(&p, "updated"));
        assert_eq!(cache.union_merge(&incoming), 1, "only the collider is new");
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.lookup(&key, &p).unwrap().error.as_deref(),
            Some("updated"),
            "same identity replaced by the merge input"
        );
        assert_eq!(
            cache.lookup(&key, &other_point).unwrap().error.as_deref(),
            Some("collider")
        );
        // Canonical snapshots are identical however the records arrived.
        let rebuilt = ResultCache::new();
        rebuilt.insert(key.clone(), EvalRecord::failed(&other_point, "collider"));
        rebuilt.insert(key, EvalRecord::failed(&p, "updated"));
        assert_eq!(cache.canonical_records(), rebuilt.canonical_records());
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let cache = ResultCache::new();
        let p = point("dwconv", CommLevel::Lean);
        cache.insert(cache_key(&p), EvalRecord::failed(&p, "v1"));
        let dir = std::env::temp_dir().join("plaid-explore-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        // Overwriting an existing file goes through the same tmp+rename.
        cache.insert(cache_key(&p), EvalRecord::failed(&p, "v2"));
        cache.save(&path).unwrap();
        let reloaded = ResultCache::load(&path).unwrap();
        assert_eq!(
            reloaded
                .lookup(&cache_key(&p), &p)
                .unwrap()
                .error
                .as_deref(),
            Some("v2")
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_single_record_format_still_loads() {
        let p = point("dwconv", CommLevel::Aligned);
        let key = cache_key(&p);
        let record = EvalRecord::failed(&p, "legacy");
        let legacy = format!("{{\"{key}\": {}}}", serde_json::to_string(&record).unwrap());
        let dir = std::env::temp_dir().join("plaid-explore-legacy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, legacy).unwrap();
        let cache = ResultCache::load(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key, &p).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_load_round_trip() {
        let cache = ResultCache::new();
        let p = point("dwconv", CommLevel::Rich);
        let key = cache_key(&p);
        cache.insert(key.clone(), EvalRecord::failed(&p, "persisted"));
        let dir = std::env::temp_dir().join("plaid-explore-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        let reloaded = ResultCache::load(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert!(reloaded.lookup(&key, &p).is_some());
        std::fs::remove_file(&path).ok();
        // Missing file loads as empty.
        let empty = ResultCache::load(&dir.join("nonexistent.json")).unwrap();
        assert!(empty.is_empty());
    }
}
