//! Deterministic sweep sharding: split one [`SweepPlan`] across processes or
//! hosts, evaluate each shard independently, and merge the results back into
//! exactly what a single-process sweep would have produced.
//!
//! Shard assignment is *content-addressed*: a point belongs to shard
//! `cache_key_hash(point) % count` — the same stable FNV-1a hash the
//! [`ResultCache`] keys records by. Because the hash depends only on the
//! point's content (workload, design parameterization, mapper), never on its
//! position, the partition is invariant under plan reordering and identical
//! on every host that enumerates the same space: `N` machines can each run
//! `plaid-dse --shard i/N` against the same grid with no coordination and be
//! guaranteed disjoint, covering work sets.
//!
//! Merging is a pure union: shard-local caches are disjoint by construction,
//! so [`ResultCache::union_merge`] reconstructs the full record set and
//! [`merge_outcomes`] reorders it into plan order, making the merged
//! [`SweepOutcome`] — and, headline guarantee, the [`crate::FrontierReport`]
//! JSON derived from it — byte-for-byte identical to an unsharded
//! [`crate::run_sweep`]. Warm-start seeding stays *intra-shard* (each shard
//! builds its own seed store), which is sound for [`SeedPolicy::Exact`]:
//! exact seeding is result-preserving by contract, so per-shard seed
//! visibility changes how much work is skipped, never what is produced. The
//! one carve-out is the mapper-internal `seed` field inside a record's
//! summary: its capacity certificate depends on how each II ladder was
//! reached (which seeds happened to be visible), so raw records compare
//! equal only after [`EvalRecord::without_seed`] — exactly as
//! [`crate::FrontierReport`] already strips it, keeping frontier output
//! seed-schedule-independent.

use serde::{Deserialize, Serialize};

use crate::cache::{cache_key_hash, ResultCache};
use crate::record::EvalRecord;
use crate::seed::SeedPolicy;
use crate::sweep::{run_sweep_with, SweepOutcome, SweepPlan, SweepPoint, SweepStats};

/// One shard of a sharded sweep: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: u32,
    /// Total number of shards, `>= 1`.
    pub count: u32,
}

impl ShardSpec {
    /// The trivial single-shard spec (the whole plan).
    pub const WHOLE: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Parses the CLI form `I/N` (e.g. `0/4`), zero-based.
    ///
    /// # Errors
    ///
    /// Returns a message when the form is not `I/N`, `N` is zero or `I` is
    /// out of range.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (index, count) = spec
            .split_once('/')
            .ok_or_else(|| format!("bad shard `{spec}` (expected I/N, e.g. 0/4)"))?;
        let index: u32 = index
            .parse()
            .map_err(|_| format!("bad shard index in `{spec}`"))?;
        let count: u32 = count
            .parse()
            .map_err(|_| format!("bad shard count in `{spec}`"))?;
        let shard = ShardSpec { index, count };
        shard.validate()?;
        Ok(shard)
    }

    /// Checks `count >= 1` and `index < count`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if self.index >= self.count {
            return Err(format!(
                "shard index {} out of range (count {})",
                self.index, self.count
            ));
        }
        Ok(())
    }

    /// Display form `I/N`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }

    /// Whether `point` belongs to this shard.
    pub fn contains(&self, point: &SweepPoint) -> bool {
        shard_of(point, self.count) == self.index
    }
}

/// The shard a point belongs to in a `count`-way partition: its content hash
/// modulo `count`. Stable across plan orderings, processes and hosts.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn shard_of(point: &SweepPoint, count: u32) -> u32 {
    assert!(count > 0, "shard count must be at least 1");
    (cache_key_hash(point) % u64::from(count)) as u32
}

/// The sub-plan of `plan` belonging to `shard`, preserving the plan's point
/// order within the shard.
///
/// # Panics
///
/// Panics if `shard` is invalid ([`ShardSpec::validate`]) — the `pub`
/// fields allow constructing an out-of-range spec directly; parse or
/// validate first when the spec comes from user input.
pub fn shard_plan(plan: &SweepPlan, shard: ShardSpec) -> SweepPlan {
    shard.validate().expect("invalid shard spec");
    SweepPlan {
        points: plan
            .points
            .iter()
            .filter(|p| shard.contains(p))
            .cloned()
            .collect(),
    }
}

/// Splits `plan` into `count` disjoint, covering sub-plans by content hash.
///
/// Every point lands in exactly one shard (`partition_plan` is a partition),
/// and because assignment is content-addressed the same point lands in the
/// same shard no matter how the input plan is ordered — only the *within*-
/// shard order follows the input. Shards are not guaranteed equal-sized
/// (hash balance is statistical), but for sweep grids of hundreds of points
/// the imbalance is small.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn partition_plan(plan: &SweepPlan, count: u32) -> Vec<SweepPlan> {
    assert!(count > 0, "shard count must be at least 1");
    let mut shards: Vec<SweepPlan> = (0..count).map(|_| SweepPlan::default()).collect();
    for point in &plan.points {
        shards[shard_of(point, count) as usize]
            .points
            .push(point.clone());
    }
    shards
}

/// Evaluates one shard of `plan` under `policy`, against a (typically
/// shard-local) cache.
///
/// This is [`run_sweep_with`] over [`shard_plan`]: the shard gets its own
/// seed store, so warm-start reuse never crosses shard boundaries — under
/// [`SeedPolicy::Exact`] the mappings and metrics are identical to what an
/// unsharded sweep produces for the same points (merely with fewer seeding
/// opportunities); only the mapper-internal seed certificate inside each
/// summary may differ, and it is stripped from frontier reports (see the
/// module docs). Records come back in shard-plan order; merge them across
/// shards with [`merge_outcomes`].
///
/// # Panics
///
/// Panics if `shard` is invalid ([`ShardSpec::validate`]), via
/// [`shard_plan`].
pub fn run_sweep_sharded(
    plan: &SweepPlan,
    shard: ShardSpec,
    cache: &ResultCache,
    policy: SeedPolicy,
) -> SweepOutcome {
    run_sweep_with(&shard_plan(plan, shard), cache, policy)
}

/// The identity of a record (or plan point) used to align shard records back
/// to plan positions: the full workload descriptor, design point and mapper
/// — everything [`crate::cache_key`] hashes, un-hashed so 64-bit collisions
/// cannot alias two points during a merge.
fn identity_of(
    workload: &plaid_workloads::WorkloadDescriptor,
    design: &plaid_arch::DesignPoint,
    mapper: plaid::pipeline::MapperChoice,
) -> String {
    format!(
        "{}|{}|{}",
        serde_json::to_string(workload).expect("descriptor serializes"),
        serde_json::to_string(design).expect("design serializes"),
        mapper.label(),
    )
}

/// Merges per-shard outcomes back into the single-process [`SweepOutcome`]
/// for `plan`: records are reordered into plan order and the shard
/// [`SweepStats`] are summed.
///
/// The merged records are what [`crate::run_sweep`] over the whole plan
/// returns (under [`SeedPolicy::Exact`] or [`SeedPolicy::Off`], the
/// result-preserving policies), up to the mapper-internal seed certificate
/// in each summary — strip with [`EvalRecord::without_seed`] to compare, as
/// frontier extraction already does. Of the summed stats, `points`, `compiled`,
/// `cache_hits` and `failures` equal the unsharded totals; `seeded` /
/// `seed_hits` reflect intra-shard seeding (a whole-plan sweep sees more
/// reuse opportunities) and `wall_ms` is the *aggregate* shard wall time,
/// not the elapsed time of a parallel shard fleet.
///
/// # Errors
///
/// Returns a message when the shard outcomes are not a partition of the
/// plan: a plan point missing from every shard, the same point evaluated by
/// two shards, or a shard record for a point outside the plan (a host swept
/// a different grid or workload set).
pub fn merge_outcomes(plan: &SweepPlan, shards: &[SweepOutcome]) -> Result<SweepOutcome, String> {
    let mut by_identity: std::collections::HashMap<String, EvalRecord> =
        std::collections::HashMap::with_capacity(plan.len());
    for outcome in shards {
        for record in &outcome.records {
            let id = identity_of(&record.workload, &record.design, record.mapper);
            if by_identity.insert(id, record.clone()).is_some() {
                return Err(format!(
                    "duplicate record across shards for {} on {}",
                    record.workload.name, record.arch
                ));
            }
        }
    }
    let mut records = Vec::with_capacity(plan.len());
    for point in &plan.points {
        let id = identity_of(&point.workload.descriptor(), &point.design, point.mapper);
        let record = by_identity.remove(&id).ok_or_else(|| {
            format!(
                "no shard evaluated {} on {}",
                point.workload.name,
                point.design.label()
            )
        })?;
        records.push(record);
    }
    if let Some(extra) = by_identity.into_values().next() {
        // A leftover record means a shard evaluated points outside this
        // plan (mismatched --grid/--workloads across hosts); dropping it
        // silently would also leave the summed stats inconsistent with the
        // returned records, so reject the merge outright.
        return Err(format!(
            "shard record for {} on {} is not in the plan (mismatched sweep configuration?)",
            extra.workload.name, extra.arch
        ));
    }
    let mut stats = SweepStats {
        points: 0,
        compiled: 0,
        cache_hits: 0,
        failures: 0,
        seeded: 0,
        seed_hits: 0,
        wall_ms: 0,
    };
    for outcome in shards {
        stats.points += outcome.stats.points;
        stats.compiled += outcome.stats.compiled;
        stats.cache_hits += outcome.stats.cache_hits;
        stats.failures += outcome.stats.failures;
        stats.seeded += outcome.stats.seeded;
        stats.seed_hits += outcome.stats.seed_hits;
        stats.wall_ms += outcome.stats.wall_ms;
    }
    Ok(SweepOutcome { records, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::cache_key;
    use plaid_arch::{ArchClass, CommSpec, SpaceSpec};
    use plaid_workloads::find_workload;

    fn small_plan() -> SweepPlan {
        let spec = SpaceSpec {
            classes: vec![ArchClass::SpatioTemporal, ArchClass::Plaid],
            dims: vec![(2, 2)],
            config_entries: vec![8, 16],
            comm_specs: CommSpec::presets(),
        };
        SweepPlan::cross(
            &[
                find_workload("dwconv").unwrap(),
                find_workload("fc").unwrap(),
            ],
            &spec,
        )
    }

    #[test]
    fn parse_accepts_valid_and_rejects_invalid_specs() {
        assert_eq!(
            ShardSpec::parse("0/4").unwrap(),
            ShardSpec { index: 0, count: 4 }
        );
        assert_eq!(ShardSpec::parse("3/4").unwrap().label(), "3/4");
        assert!(ShardSpec::parse("4/4").is_err(), "index out of range");
        assert!(ShardSpec::parse("0/0").is_err(), "zero shards");
        assert!(ShardSpec::parse("1").is_err(), "missing slash");
        assert!(ShardSpec::parse("a/b").is_err(), "non-numeric");
        assert!(ShardSpec::WHOLE.validate().is_ok());
    }

    #[test]
    fn partition_is_disjoint_and_covering() {
        let plan = small_plan();
        for count in [1u32, 2, 3, 4, 7] {
            let shards = partition_plan(&plan, count);
            assert_eq!(shards.len(), count as usize);
            let total: usize = shards.iter().map(SweepPlan::len).sum();
            assert_eq!(total, plan.len(), "{count}-way partition covers the plan");
            // Each point's key appears in exactly the shard its hash names.
            let mut seen = std::collections::HashSet::new();
            for (i, shard) in shards.iter().enumerate() {
                for point in &shard.points {
                    assert_eq!(shard_of(point, count) as usize, i);
                    assert!(seen.insert(cache_key(point)), "point in two shards");
                }
            }
        }
    }

    #[test]
    fn assignment_is_stable_under_plan_reordering() {
        let plan = small_plan();
        let mut reversed = plan.clone();
        reversed.points.reverse();
        for count in [2u32, 4] {
            let forward = partition_plan(&plan, count);
            let backward = partition_plan(&reversed, count);
            for (f, b) in forward.iter().zip(backward.iter()) {
                let mut fk: Vec<String> = f.points.iter().map(cache_key).collect();
                let mut bk: Vec<String> = b.points.iter().map(cache_key).collect();
                fk.sort();
                bk.sort();
                assert_eq!(fk, bk, "shard membership changed with plan order");
            }
        }
    }

    #[test]
    fn shard_plan_matches_partition_and_preserves_order() {
        let plan = small_plan();
        let shards = partition_plan(&plan, 3);
        for index in 0..3u32 {
            let spec = ShardSpec { index, count: 3 };
            let filtered = shard_plan(&plan, spec);
            let keys: Vec<String> = filtered.points.iter().map(cache_key).collect();
            let expect: Vec<String> = shards[index as usize]
                .points
                .iter()
                .map(cache_key)
                .collect();
            assert_eq!(keys, expect);
            // Within-shard order follows plan order.
            let positions: Vec<usize> = filtered
                .points
                .iter()
                .map(|p| {
                    plan.points
                        .iter()
                        .position(|q| cache_key(q) == cache_key(p))
                        .unwrap()
                })
                .collect();
            assert!(positions.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sharded_evaluation_merges_to_the_unsharded_outcome() {
        let plan = small_plan();
        let whole_cache = ResultCache::new();
        let whole = run_sweep_with(&plan, &whole_cache, SeedPolicy::Exact);

        let count = 4u32;
        let mut outcomes = Vec::new();
        let merged_cache = ResultCache::new();
        for index in 0..count {
            let shard_cache = ResultCache::new();
            let outcome = run_sweep_sharded(
                &plan,
                ShardSpec { index, count },
                &shard_cache,
                SeedPolicy::Exact,
            );
            merged_cache.union_merge(&shard_cache);
            outcomes.push(outcome);
        }
        let merged = merge_outcomes(&plan, &outcomes).expect("shards partition the plan");

        assert_eq!(merged.stats.points, whole.stats.points);
        assert_eq!(merged.stats.compiled, whole.stats.compiled);
        assert_eq!(merged.stats.cache_hits, whole.stats.cache_hits);
        assert_eq!(merged.stats.failures, whole.stats.failures);
        // Records are bit-identical up to the mapper-internal seed (whose
        // capacity certificate depends on how each II ladder was reached).
        let strip = |records: &[EvalRecord]| -> Vec<EvalRecord> {
            records.iter().map(EvalRecord::without_seed).collect()
        };
        assert_eq!(strip(&merged.records), strip(&whole.records));
        // And the derived frontiers are byte-for-byte identical.
        let whole_frontier = crate::FrontierReport::from_records(&whole.records);
        let merged_frontier = crate::FrontierReport::from_records(&merged.records);
        assert_eq!(
            serde_json::to_string_pretty(&merged_frontier).unwrap(),
            serde_json::to_string_pretty(&whole_frontier).unwrap()
        );
        // The unioned cache holds every plan point.
        assert_eq!(merged_cache.len(), plan.len());
    }

    #[test]
    fn merge_rejects_missing_and_duplicate_points() {
        let plan = small_plan();
        let shards = partition_plan(&plan, 2);
        let cache = ResultCache::new();
        let a = run_sweep_with(&shards[0], &cache, SeedPolicy::Off);
        let b = run_sweep_with(&shards[1], &cache, SeedPolicy::Off);
        assert!(
            merge_outcomes(&plan, &[a.clone()]).is_err(),
            "missing shard"
        );
        assert!(
            merge_outcomes(&plan, &[a.clone(), a.clone(), b.clone()]).is_err(),
            "duplicated shard"
        );
        // A record for a point outside the plan (a host swept a different
        // grid or workload set) must be rejected, not silently dropped.
        let mut trimmed = plan.clone();
        trimmed.points.pop().expect("plan is non-empty");
        assert!(
            merge_outcomes(&trimmed, &[a.clone(), b.clone()]).is_err(),
            "foreign record accepted"
        );
        assert!(merge_outcomes(&plan, &[a, b]).is_ok());
    }
}
