//! Parallel sweep execution over the provisioning grid.
//!
//! A [`SweepPlan`] is the cross product of a workload list and an enumerated
//! design space, with one mapper per point (the class default unless
//! overridden). [`run_sweep`] evaluates the plan in parallel with `rayon`,
//! consulting the [`ResultCache`] before every compilation so overlapping or
//! repeated sweeps only pay for points they have never seen.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use plaid::pipeline::{compile_workload_on, compile_workload_on_seeded, MapperChoice, SeedOutcome};
use plaid_arch::{ArchClass, DesignPoint, SpaceSpec};
use plaid_workloads::Workload;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cache::{cache_key, ResultCache};
use crate::record::EvalRecord;
use crate::seed::{SeedFamily, SeedPolicy, SeedStore};

/// One evaluatable point: a workload, a provisioning design point and the
/// mapper that will place the workload onto it.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The workload to compile.
    pub workload: Workload,
    /// The architecture point to build.
    pub design: DesignPoint,
    /// The mapper to run.
    pub mapper: MapperChoice,
}

/// Default mapper for an enumerated architecture class: the motif-aware
/// mapper on Plaid fabrics, the partitioner on spatial fabrics and
/// PathFinder on the spatio-temporal baseline (the faster of the two generic
/// mappers, which matters when sweeping hundreds of points).
pub fn default_mapper_for_class(class: ArchClass) -> MapperChoice {
    match class {
        ArchClass::Plaid => MapperChoice::Plaid,
        ArchClass::Spatial => MapperChoice::Spatial,
        ArchClass::SpatioTemporal => MapperChoice::PathFinder,
    }
}

/// An ordered list of sweep points.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// Points in deterministic (workload-major) order.
    pub points: Vec<SweepPoint>,
}

impl SweepPlan {
    /// Crosses `workloads` with the enumerated `space`, assigning each point
    /// its class-default mapper.
    pub fn cross(workloads: &[Workload], space: &SpaceSpec) -> Self {
        Self::cross_with(workloads, space, default_mapper_for_class)
    }

    /// Crosses `workloads` with `space` using an explicit mapper policy.
    pub fn cross_with(
        workloads: &[Workload],
        space: &SpaceSpec,
        mapper_for: impl Fn(ArchClass) -> MapperChoice,
    ) -> Self {
        let designs = space.enumerate();
        let mut points = Vec::with_capacity(workloads.len() * designs.len());
        for workload in workloads {
            for &design in &designs {
                points.push(SweepPoint {
                    workload: workload.clone(),
                    design,
                    mapper: mapper_for(design.class),
                });
            }
        }
        SweepPlan { points }
    }

    /// Number of points in the plan.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Accounting for one sweep pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Points in the plan.
    pub points: usize,
    /// Points actually compiled this pass (cache misses).
    pub compiled: usize,
    /// Points served from the cache.
    pub cache_hits: usize,
    /// Points whose compilation failed (counted within `compiled`).
    pub failures: usize,
    /// Compiled points that had a warm-start hint available.
    pub seeded: usize,
    /// Compiled points where seeding demonstrably skipped work: an exact
    /// replay, a floored (or fully skipped) II ladder.
    pub seed_hits: usize,
    /// Wall-clock time of the pass in milliseconds.
    pub wall_ms: u64,
}

impl SweepStats {
    /// Fraction of points served from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.points as f64
        }
    }
}

/// The result of one sweep pass: per-point records (in plan order) plus
/// accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// One record per plan point, in plan order.
    pub records: Vec<EvalRecord>,
    /// Pass accounting.
    pub stats: SweepStats,
}

/// Evaluates one sweep point, consulting (and populating) the cache.
pub fn evaluate_point(point: &SweepPoint, cache: &ResultCache) -> EvalRecord {
    let key = cache_key(point);
    if let Some(record) = cache.lookup(&key, point) {
        return record;
    }
    let arch = point.design.build();
    let record = match compile_workload_on(&point.workload, &arch, point.mapper) {
        Ok(compiled) => EvalRecord::succeeded(point, compiled.summary()),
        Err(e) => EvalRecord::failed(point, e.to_string()),
    };
    cache.insert(key, record.clone());
    record
}

/// Runs the plan with the default warm-start policy
/// ([`SeedPolicy::Exact`], which preserves cold-run results bit-for-bit),
/// returning records in plan order.
///
/// Seeding changes the schedule, not the results: points sharing a seed
/// super-family run sequentially (in depth order) so later points can reuse
/// earlier seeds, and only distinct groups run in parallel. A plan that is
/// one big family therefore trades per-point parallelism for seed reuse —
/// pass [`SeedPolicy::Off`] to [`run_sweep_with`] to get the flat
/// fully-parallel evaluation instead.
///
/// Cache hit/miss accounting in the returned [`SweepStats`] reflects only
/// this pass (the cache's counters are reset on entry).
pub fn run_sweep(plan: &SweepPlan, cache: &ResultCache) -> SweepOutcome {
    run_sweep_with(plan, cache, SeedPolicy::Exact)
}

/// Runs the plan in parallel under an explicit warm-start policy.
///
/// Points are grouped by seed *super-family* (workload × class × dimensions
/// × mapper — the communication and depth axes erased) and each group is
/// evaluated in ascending depth, aligned-communication-first order, so every
/// group compiles one ladder cold and derives its siblings from the cached
/// [`plaid::pipeline::PlacementSeed`]: an exact replay for depth siblings
/// (identical fabric signature), a capacity-certified replay for
/// communication siblings, and a skipped ladder prefix where a shallower
/// sibling proved its ladder infeasible. Groups still run in parallel;
/// records come back in plan order.
pub fn run_sweep_with(plan: &SweepPlan, cache: &ResultCache, policy: SeedPolicy) -> SweepOutcome {
    let start = Instant::now();
    cache.reset_counters();

    // The cold path stays flat: without seeding there is no reason to
    // serialize points within a super-family, so every point is an
    // independent parallel task (and the seed store is never built) — the
    // `--no-seed` baseline measures exactly the pre-seeding sweep.
    if policy == SeedPolicy::Off {
        let records: Vec<EvalRecord> = plan
            .points
            .par_iter()
            .map(|point| evaluate_point(point, cache))
            .collect();
        let cache_hits = cache.hits() as usize;
        let failures = records.iter().filter(|r| !r.ok).count();
        return SweepOutcome {
            stats: SweepStats {
                points: records.len(),
                compiled: records.len() - cache_hits,
                cache_hits,
                failures,
                seeded: 0,
                seed_hits: 0,
                wall_ms: start.elapsed().as_millis() as u64,
            },
            records,
        };
    }

    let store = SeedStore::new();
    let seeded = AtomicUsize::new(0);
    let seed_hits = AtomicUsize::new(0);

    let groups = group_points_for_seeding(plan);

    let evaluated: Vec<Vec<(usize, EvalRecord)>> = groups
        .par_iter()
        .map(|group| {
            group
                .iter()
                .map(|&i| {
                    let point = &plan.points[i];
                    (
                        i,
                        evaluate_point_seeded(point, cache, &store, policy, &seeded, &seed_hits),
                    )
                })
                .collect()
        })
        .collect();

    let mut slots: Vec<Option<EvalRecord>> = vec![None; plan.len()];
    for (i, record) in evaluated.into_iter().flatten() {
        slots[i] = Some(record);
    }
    let records: Vec<EvalRecord> = slots
        .into_iter()
        .map(|r| r.expect("every plan point evaluated"))
        .collect();

    let cache_hits = cache.hits() as usize;
    let failures = records.iter().filter(|r| !r.ok).count();
    SweepOutcome {
        stats: SweepStats {
            points: records.len(),
            compiled: records.len() - cache_hits,
            cache_hits,
            failures,
            seeded: seeded.load(Ordering::Relaxed),
            seed_hits: seed_hits.load(Ordering::Relaxed),
            wall_ms: start.elapsed().as_millis() as u64,
        },
        records,
    }
}

/// Groups plan indices by seed super-family for a warm-started sweep,
/// ordered by first appearance so the grouping is deterministic. Within a
/// group: ascending depth (the cheap shallow ladder is a prefix of every
/// deeper one), then the canonical communication scheduling order
/// ([`plaid_arch::CommSpec::order_rank`]): the as-published aligned network
/// first within a depth — its certificate transfers to both the lean and
/// rich variants when capacity never binds — then the remaining presets,
/// then structured specs by topology and bandwidth. This is the single
/// grouping used by [`run_sweep_with`] (and pinned by the stable-grouping
/// test).
fn group_points_for_seeding(plan: &SweepPlan) -> Vec<Vec<usize>> {
    let mut group_of: HashMap<SeedFamily, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, point) in plan.points.iter().enumerate() {
        let family = SeedFamily::super_of(point);
        let g = *group_of.entry(family).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(i);
    }
    for group in &mut groups {
        group.sort_by_key(|&i| {
            let d = &plan.points[i].design;
            (d.config_entries, d.comm.order_rank(), i)
        });
    }
    groups
}

/// Evaluates one point with warm-start seeding, consulting (and feeding)
/// both the result cache and the seed store.
fn evaluate_point_seeded(
    point: &SweepPoint,
    cache: &ResultCache,
    store: &SeedStore,
    policy: SeedPolicy,
    seeded: &AtomicUsize,
    seed_hits: &AtomicUsize,
) -> EvalRecord {
    let key = cache_key(point);
    if let Some(record) = cache.lookup(&key, point) {
        // Cached successes still feed the store: their seeds warm the rest
        // of the family (this is how a persisted cache seeds a new grid),
        // and a replayed seed is re-validated on the target fabric. Cached
        // *failures* are deliberately not absorbed: an infeasibility floor
        // is trusted without re-validation, and a cache persisted by an
        // older mapper could floor points the current mapper can map.
        store.absorb_seed(point, &record);
        return record;
    }
    let arch = point.design.build();
    // Hints are stamped with the workload's DFG fingerprint so the mapper
    // can verify they belong to the graph it is about to place (floors are
    // keyed by workload name in the store; the mapper re-checks identity).
    let hint = point.workload.lower().ok().and_then(|dfg| {
        store.hint_for(point, &arch, plaid::pipeline::dfg_fingerprint(&dfg), policy)
    });
    if hint.is_some() {
        seeded.fetch_add(1, Ordering::Relaxed);
    }
    let record =
        match compile_workload_on_seeded(&point.workload, &arch, point.mapper, hint.as_ref()) {
            Ok(compiled) => {
                if matches!(
                    compiled.seed_outcome,
                    SeedOutcome::Replayed | SeedOutcome::Floored
                ) {
                    seed_hits.fetch_add(1, Ordering::Relaxed);
                }
                EvalRecord::succeeded(point, compiled.summary())
            }
            Err(e) => {
                // A failure reached through a floored or fully skipped
                // ladder also saved work (a canonical sibling seed above
                // this point's II bound fast-fails the whole ladder).
                let skipped_work = hint.as_ref().is_some_and(|h| {
                    h.infeasible.is_some()
                        || h.seed
                            .as_ref()
                            .is_some_and(|s| s.canonical && s.ii > point.design.config_entries)
                });
                if skipped_work {
                    seed_hits.fetch_add(1, Ordering::Relaxed);
                }
                EvalRecord::failed(point, e.to_string())
            }
        };
    cache.insert(key, record.clone());
    store.absorb(point, &record);
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{BwClass, CommSpec, Topology};
    use plaid_workloads::find_workload;

    fn tiny_plan() -> SweepPlan {
        let spec = SpaceSpec {
            classes: vec![ArchClass::Plaid],
            dims: vec![(2, 2)],
            config_entries: vec![16],
            comm_specs: vec![CommSpec::ALIGNED, CommSpec::RICH],
        };
        SweepPlan::cross(&[find_workload("dwconv").unwrap()], &spec)
    }

    #[test]
    fn plan_is_the_cross_product_with_class_default_mappers() {
        let plan = tiny_plan();
        assert_eq!(plan.len(), 2);
        assert!(plan.points.iter().all(|p| p.mapper == MapperChoice::Plaid));
        assert_eq!(
            default_mapper_for_class(ArchClass::Spatial),
            MapperChoice::Spatial
        );
        assert_eq!(
            default_mapper_for_class(ArchClass::SpatioTemporal),
            MapperChoice::PathFinder
        );
    }

    #[test]
    fn sweep_evaluates_and_second_pass_is_fully_cached() {
        let plan = tiny_plan();
        let cache = ResultCache::new();
        let first = run_sweep(&plan, &cache);
        assert_eq!(first.stats.points, 2);
        assert_eq!(first.stats.compiled, 2);
        assert_eq!(first.stats.cache_hits, 0);
        assert!(first.records.iter().all(|r| r.ok), "dwconv maps on plaid");

        let second = run_sweep(&plan, &cache);
        assert_eq!(
            second.stats.compiled, 0,
            "no recompilation on identical sweep"
        );
        assert_eq!(second.stats.cache_hits, 2);
        assert!((second.stats.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(second.records, first.records, "cached results identical");
    }

    #[test]
    fn overlapping_sweep_only_compiles_new_points() {
        let cache = ResultCache::new();
        let _ = run_sweep(&tiny_plan(), &cache);
        // Extend the space by one comm level: only the new point compiles.
        let spec = SpaceSpec {
            classes: vec![ArchClass::Plaid],
            dims: vec![(2, 2)],
            config_entries: vec![16],
            comm_specs: CommSpec::presets(),
        };
        let bigger = SweepPlan::cross(&[find_workload("dwconv").unwrap()], &spec);
        let outcome = run_sweep(&bigger, &cache);
        assert_eq!(outcome.stats.points, 3);
        assert_eq!(outcome.stats.compiled, 1);
        assert_eq!(outcome.stats.cache_hits, 2);
    }

    #[test]
    fn seed_group_ordering_is_stable_and_canonical() {
        // The canonical comm ordering (CommSpec::order_rank) must schedule a
        // mixed preset/structured axis deterministically: depth first, then
        // aligned before lean before rich before structured specs — and the
        // grouping must be identical across repeated plan constructions.
        let spec = SpaceSpec {
            classes: vec![ArchClass::SpatioTemporal],
            dims: vec![(2, 2)],
            config_entries: vec![16, 8],
            comm_specs: vec![
                CommSpec::uniform(Topology::Torus, BwClass::Base),
                CommSpec::RICH,
                CommSpec::LEAN,
                CommSpec::ALIGNED,
            ],
        };
        let plan = SweepPlan::cross(&[find_workload("dwconv").unwrap()], &spec);
        // Exercises the production grouping (`group_points_for_seeding`,
        // the one `run_sweep_with` schedules by), not a private re-derivation.
        let order_of = |plan: &SweepPlan| -> Vec<Vec<String>> {
            group_points_for_seeding(plan)
                .iter()
                .map(|g| g.iter().map(|&i| plan.points[i].design.label()).collect())
                .collect()
        };
        let groups = order_of(&plan);
        assert_eq!(groups, order_of(&plan), "grouping must be deterministic");
        // Torus points form their own structural family; preset points share
        // one, scheduled depth-major then aligned/lean/rich.
        assert_eq!(groups.len(), 2);
        let preset_group: &Vec<String> = groups
            .iter()
            .find(|g| g.iter().any(|l| l.ends_with("/aligned")))
            .unwrap();
        let expected: Vec<String> = [
            "d8/aligned",
            "d8/lean",
            "d8/rich",
            "d16/aligned",
            "d16/lean",
            "d16/rich",
        ]
        .iter()
        .map(|s| format!("spatio-temporal-2x2/{s}"))
        .collect();
        assert_eq!(preset_group, &expected);
        let torus_group: &Vec<String> = groups
            .iter()
            .find(|g| g.iter().any(|l| l.contains("torus")))
            .unwrap();
        assert_eq!(
            torus_group,
            &vec![
                "spatio-temporal-2x2/d8/torus".to_string(),
                "spatio-temporal-2x2/d16/torus".to_string(),
            ]
        );
    }
}
