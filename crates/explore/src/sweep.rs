//! Parallel sweep execution over the provisioning grid.
//!
//! A [`SweepPlan`] is the cross product of a workload list and an enumerated
//! design space, with one mapper per point (the class default unless
//! overridden). [`run_sweep`] evaluates the plan in parallel with `rayon`,
//! consulting the [`ResultCache`] before every compilation so overlapping or
//! repeated sweeps only pay for points they have never seen.

use std::time::Instant;

use plaid::pipeline::{compile_workload_on, MapperChoice};
use plaid_arch::{ArchClass, DesignPoint, SpaceSpec};
use plaid_workloads::Workload;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cache::{cache_key, ResultCache};
use crate::record::EvalRecord;

/// One evaluatable point: a workload, a provisioning design point and the
/// mapper that will place the workload onto it.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The workload to compile.
    pub workload: Workload,
    /// The architecture point to build.
    pub design: DesignPoint,
    /// The mapper to run.
    pub mapper: MapperChoice,
}

/// Default mapper for an enumerated architecture class: the motif-aware
/// mapper on Plaid fabrics, the partitioner on spatial fabrics and
/// PathFinder on the spatio-temporal baseline (the faster of the two generic
/// mappers, which matters when sweeping hundreds of points).
pub fn default_mapper_for_class(class: ArchClass) -> MapperChoice {
    match class {
        ArchClass::Plaid => MapperChoice::Plaid,
        ArchClass::Spatial => MapperChoice::Spatial,
        ArchClass::SpatioTemporal => MapperChoice::PathFinder,
    }
}

/// An ordered list of sweep points.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// Points in deterministic (workload-major) order.
    pub points: Vec<SweepPoint>,
}

impl SweepPlan {
    /// Crosses `workloads` with the enumerated `space`, assigning each point
    /// its class-default mapper.
    pub fn cross(workloads: &[Workload], space: &SpaceSpec) -> Self {
        Self::cross_with(workloads, space, default_mapper_for_class)
    }

    /// Crosses `workloads` with `space` using an explicit mapper policy.
    pub fn cross_with(
        workloads: &[Workload],
        space: &SpaceSpec,
        mapper_for: impl Fn(ArchClass) -> MapperChoice,
    ) -> Self {
        let designs = space.enumerate();
        let mut points = Vec::with_capacity(workloads.len() * designs.len());
        for workload in workloads {
            for &design in &designs {
                points.push(SweepPoint {
                    workload: workload.clone(),
                    design,
                    mapper: mapper_for(design.class),
                });
            }
        }
        SweepPlan { points }
    }

    /// Number of points in the plan.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Accounting for one sweep pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Points in the plan.
    pub points: usize,
    /// Points actually compiled this pass (cache misses).
    pub compiled: usize,
    /// Points served from the cache.
    pub cache_hits: usize,
    /// Points whose compilation failed (counted within `compiled`).
    pub failures: usize,
    /// Wall-clock time of the pass in milliseconds.
    pub wall_ms: u64,
}

impl SweepStats {
    /// Fraction of points served from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.points as f64
        }
    }
}

/// The result of one sweep pass: per-point records (in plan order) plus
/// accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// One record per plan point, in plan order.
    pub records: Vec<EvalRecord>,
    /// Pass accounting.
    pub stats: SweepStats,
}

/// Evaluates one sweep point, consulting (and populating) the cache.
pub fn evaluate_point(point: &SweepPoint, cache: &ResultCache) -> EvalRecord {
    let key = cache_key(point);
    if let Some(record) = cache.lookup(&key, point) {
        return record;
    }
    let arch = point.design.build();
    let record = match compile_workload_on(&point.workload, &arch, point.mapper) {
        Ok(compiled) => EvalRecord::succeeded(point, compiled.summary()),
        Err(e) => EvalRecord::failed(point, e.to_string()),
    };
    cache.insert(key, record.clone());
    record
}

/// Runs the plan in parallel, returning records in plan order.
///
/// Cache hit/miss accounting in the returned [`SweepStats`] reflects only
/// this pass (the cache's counters are reset on entry).
pub fn run_sweep(plan: &SweepPlan, cache: &ResultCache) -> SweepOutcome {
    let start = Instant::now();
    cache.reset_counters();
    let records: Vec<EvalRecord> = plan
        .points
        .par_iter()
        .map(|point| evaluate_point(point, cache))
        .collect();
    let cache_hits = cache.hits() as usize;
    let failures = records.iter().filter(|r| !r.ok).count();
    SweepOutcome {
        stats: SweepStats {
            points: records.len(),
            compiled: records.len() - cache_hits,
            cache_hits,
            failures,
            wall_ms: start.elapsed().as_millis() as u64,
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::CommLevel;
    use plaid_workloads::find_workload;

    fn tiny_plan() -> SweepPlan {
        let spec = SpaceSpec {
            classes: vec![ArchClass::Plaid],
            dims: vec![(2, 2)],
            config_entries: vec![16],
            comm_levels: vec![CommLevel::Aligned, CommLevel::Rich],
        };
        SweepPlan::cross(&[find_workload("dwconv").unwrap()], &spec)
    }

    #[test]
    fn plan_is_the_cross_product_with_class_default_mappers() {
        let plan = tiny_plan();
        assert_eq!(plan.len(), 2);
        assert!(plan.points.iter().all(|p| p.mapper == MapperChoice::Plaid));
        assert_eq!(
            default_mapper_for_class(ArchClass::Spatial),
            MapperChoice::Spatial
        );
        assert_eq!(
            default_mapper_for_class(ArchClass::SpatioTemporal),
            MapperChoice::PathFinder
        );
    }

    #[test]
    fn sweep_evaluates_and_second_pass_is_fully_cached() {
        let plan = tiny_plan();
        let cache = ResultCache::new();
        let first = run_sweep(&plan, &cache);
        assert_eq!(first.stats.points, 2);
        assert_eq!(first.stats.compiled, 2);
        assert_eq!(first.stats.cache_hits, 0);
        assert!(first.records.iter().all(|r| r.ok), "dwconv maps on plaid");

        let second = run_sweep(&plan, &cache);
        assert_eq!(
            second.stats.compiled, 0,
            "no recompilation on identical sweep"
        );
        assert_eq!(second.stats.cache_hits, 2);
        assert!((second.stats.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(second.records, first.records, "cached results identical");
    }

    #[test]
    fn overlapping_sweep_only_compiles_new_points() {
        let cache = ResultCache::new();
        let _ = run_sweep(&tiny_plan(), &cache);
        // Extend the space by one comm level: only the new point compiles.
        let spec = SpaceSpec {
            classes: vec![ArchClass::Plaid],
            dims: vec![(2, 2)],
            config_entries: vec![16],
            comm_levels: CommLevel::ALL.to_vec(),
        };
        let bigger = SweepPlan::cross(&[find_workload("dwconv").unwrap()], &spec);
        let outcome = run_sweep(&bigger, &cache);
        assert_eq!(outcome.stats.points, 3);
        assert_eq!(outcome.stats.compiled, 1);
        assert_eq!(outcome.stats.cache_hits, 2);
    }
}
