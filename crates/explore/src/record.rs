//! The serializable result record of one sweep evaluation.

use plaid::pipeline::{CompileSummary, MapperChoice};
use plaid_arch::DesignPoint;
use plaid_workloads::WorkloadDescriptor;
use serde::{Deserialize, Serialize};

use crate::pareto::Objectives;
use crate::sweep::SweepPoint;

/// Result of evaluating one (workload × design point × mapper) sweep point.
///
/// Failures are first-class: a point whose mapping fails (e.g. a lean network
/// that cannot route the workload, or a configuration memory too shallow for
/// any feasible initiation interval) is recorded with its error text, so the
/// frontier report can distinguish "dominated" from "infeasible".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Workload identity.
    pub workload: WorkloadDescriptor,
    /// The provisioning point that was built.
    pub design: DesignPoint,
    /// Architecture label (`DesignPoint::label`), kept denormalized for
    /// report rendering.
    pub arch: String,
    /// Mapper used.
    pub mapper: MapperChoice,
    /// Functional units the point provisions (the compute axis).
    pub compute_units: u32,
    /// Whether compilation succeeded.
    pub ok: bool,
    /// Error text when `ok` is false.
    pub error: Option<String>,
    /// Compilation summary when `ok` is true.
    pub summary: Option<CompileSummary>,
}

impl EvalRecord {
    /// A copy of this record with the mapper-internal [`plaid::pipeline::PlacementSeed`]
    /// stripped from its summary, built without ever cloning the seed (the
    /// placements and route hops are the dominant share of a successful
    /// record's size).
    pub fn without_seed(&self) -> Self {
        EvalRecord {
            workload: self.workload.clone(),
            design: self.design,
            arch: self.arch.clone(),
            mapper: self.mapper,
            compute_units: self.compute_units,
            ok: self.ok,
            error: self.error.clone(),
            summary: self.summary.as_ref().map(|s| CompileSummary {
                name: s.name.clone(),
                coverage: s.coverage.clone(),
                metrics: s.metrics.clone(),
                seed: None,
            }),
        }
    }

    /// Builds the success record for a sweep point.
    pub fn succeeded(point: &SweepPoint, summary: CompileSummary) -> Self {
        EvalRecord {
            workload: point.workload.descriptor(),
            design: point.design,
            arch: point.design.label(),
            mapper: point.mapper,
            compute_units: point.design.compute_units(),
            ok: true,
            error: None,
            summary: Some(summary),
        }
    }

    /// Builds the failure record for a sweep point.
    pub fn failed(point: &SweepPoint, error: impl Into<String>) -> Self {
        EvalRecord {
            workload: point.workload.descriptor(),
            design: point.design,
            arch: point.design.label(),
            mapper: point.mapper,
            compute_units: point.design.compute_units(),
            ok: false,
            error: Some(error.into()),
            summary: None,
        }
    }

    /// The minimization objectives of this record (`None` for failures).
    pub fn objectives(&self) -> Option<Objectives> {
        self.summary.as_ref().map(|s| Objectives {
            cycles: s.metrics.cycles,
            area_um2: s.metrics.area_um2,
            energy_nj: s.metrics.energy_nj,
        })
    }
}
