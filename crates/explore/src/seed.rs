//! Cross-point seed management for warm-started sweeps.
//!
//! A [`SeedStore`] indexes the [`PlacementSeed`]s captured by successful
//! compilations (and the infeasibility proofs implied by failed ones) by
//! workload and design-point *family* — the axes that determine fabric
//! structure: execution class, array dimensions, communication level and
//! mapper. Before a sweep point compiles, [`SeedStore::hint_for`] retrieves
//! the nearest cached neighbour under a provisioning distance metric and
//! packages it as the [`MapSeed`] hint the mappers consume.
//!
//! Two retrieval policies exist (see [`SeedPolicy`]):
//!
//! * `Exact` only returns hints that are provably result-preserving — seeds
//!   and infeasibility prefixes from the *same family* (identical fabric
//!   structure, differing only in configuration depth). Sweeps stay
//!   bit-identical to cold runs while skipping most of the mapping work on
//!   the depth axis.
//! * `Aggressive` additionally returns the nearest foreign-family seed as a
//!   heuristic warm start, which can recover feasibility at lower IIs but
//!   may produce different (never invalid) mappings than a cold run.

use std::collections::HashMap;
use std::sync::RwLock;

use plaid::pipeline::{InfeasiblePrefix, MapSeed, MapperChoice, PlacementSeed};
use plaid_arch::DesignPoint;
use serde::{Deserialize, Serialize};

use crate::record::EvalRecord;
use crate::sweep::SweepPoint;

/// How a sweep uses cached seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// Never consult the seed store; every point maps from scratch.
    Off,
    /// Only result-preserving reuse (same fabric structure, depth axis):
    /// sweep results are bit-identical to a cold run.
    Exact,
    /// Exact reuse plus heuristic warm starts from the nearest foreign
    /// design point (results remain valid but may differ from a cold run).
    Aggressive,
}

impl SeedPolicy {
    /// Parses a CLI-style policy name.
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "off" => Ok(SeedPolicy::Off),
            "exact" => Ok(SeedPolicy::Exact),
            "aggressive" => Ok(SeedPolicy::Aggressive),
            other => Err(format!(
                "unknown seed policy `{other}` (off|exact|aggressive)"
            )),
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            SeedPolicy::Off => "off",
            SeedPolicy::Exact => "exact",
            SeedPolicy::Aggressive => "aggressive",
        }
    }
}

/// The family of a sweep point: everything that determines fabric structure
/// (and therefore seed compatibility) except configuration-memory depth.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeedFamily {
    /// Workload name.
    pub workload: String,
    /// Design point with the depth axis erased.
    pub family: DesignPoint,
    /// Mapper evaluating the point.
    pub mapper: MapperChoice,
}

impl SeedFamily {
    /// The family of a sweep point.
    pub fn of(point: &SweepPoint) -> Self {
        SeedFamily {
            workload: point.workload.name.clone(),
            family: DesignPoint {
                config_entries: 0,
                ..point.design
            },
            mapper: point.mapper,
        }
    }

    /// The *super-family* of a sweep point: the communication *bandwidth*
    /// erased as well (via [`plaid_arch::CommSpec::structural_family`],
    /// which keeps the topology — a torus fabric's links differ from a
    /// mesh's, so their mappings never transfer). Points in one super-family
    /// share everything but configuration depth and switch capacities —
    /// exactly the set a capacity-certified seed can hope to transfer
    /// across. All three legacy presets collapse to the aligned spec, as
    /// under the scalar encoding.
    pub fn super_of(point: &SweepPoint) -> Self {
        SeedFamily {
            workload: point.workload.name.clone(),
            family: DesignPoint {
                config_entries: 0,
                comm: point.design.comm.structural_family(),
                ..point.design
            },
            mapper: point.mapper,
        }
    }
}

/// Distance between two design points under the provisioning metric used for
/// nearest-neighbour seed retrieval: array dimensions dominate, then the
/// communication spec, then configuration depth. Points of different
/// execution classes are infinitely far apart (their mappings do not
/// translate).
///
/// The communication component is the canonical
/// [`plaid_arch::CommSpec::distance`] metric: bandwidth-magnitude
/// proximity (one preset step = 2 units, so on the legacy presets this
/// reproduces the scalar-era metric exactly — `aligned` is nearer to
/// `rich` than `lean` is), a large constant for a topology mismatch
/// (mappings do not translate across link structures) and a small one for
/// a select-policy mismatch. Note this is deliberately *not* the
/// scheduling order [`plaid_arch::CommSpec::order_rank`] that
/// `run_sweep_with` groups by: aligned-first is the right evaluation
/// order, but it is not a proximity scale.
pub fn provisioning_distance(a: &DesignPoint, b: &DesignPoint) -> u32 {
    if a.class != b.class {
        return u32::MAX;
    }
    let dims = (a.rows * a.cols).abs_diff(b.rows * b.cols);
    let comm = a.comm.distance(b.comm);
    let depth = depth_steps(a.config_entries).abs_diff(depth_steps(b.config_entries));
    dims.saturating_mul(16)
        .saturating_add(comm.saturating_mul(2))
        .saturating_add(depth)
}

fn depth_steps(entries: u32) -> u32 {
    if entries == 0 {
        0
    } else {
        entries.ilog2()
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    /// Successful seeds per super-family, tagged with the design point they
    /// were captured on.
    seeds: HashMap<SeedFamily, Vec<(DesignPoint, PlacementSeed)>>,
    /// Highest configuration depth (== II bound) proved infeasible per
    /// (comm-specific) family.
    infeasible: HashMap<SeedFamily, u32>,
}

/// Thread-safe store of placement seeds and infeasibility proofs gathered
/// during a sweep (including from cache hits, so persisted caches seed new
/// grids for free).
#[derive(Debug, Default)]
pub struct SeedStore {
    inner: RwLock<StoreInner>,
}

impl SeedStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs the outcome of one point evaluated *this run*: a successful
    /// record's seed becomes retrievable for its super-family; a
    /// no-valid-mapping failure proves the (comm-specific) family's ladder
    /// infeasible through the point's II bound.
    pub fn absorb(&self, point: &SweepPoint, record: &EvalRecord) {
        if self.absorb_seed(point, record) {
            return;
        }
        if !record.ok
            && record
                .error
                .as_deref()
                .is_some_and(|e| e.contains("no valid mapping"))
        {
            // The ladder failed for every II up to the configuration depth.
            let mut inner = self.inner.write().expect("seed store lock poisoned");
            let entry = inner.infeasible.entry(SeedFamily::of(point)).or_insert(0);
            *entry = (*entry).max(point.design.config_entries);
        }
    }

    /// Absorbs only a successful record's seed, ignoring failures. This is
    /// the safe entry point for records served from a *persisted* cache: a
    /// replayed seed is re-validated against the target fabric before use,
    /// but an infeasibility floor is trusted as a proof — and a cache file
    /// written by an older mapper could wrongly floor points the current
    /// mapper maps. Returns whether a seed was stored.
    pub fn absorb_seed(&self, point: &SweepPoint, record: &EvalRecord) -> bool {
        let Some(seed) = record.summary.as_ref().and_then(|s| s.seed.clone()) else {
            return false;
        };
        let mut inner = self.inner.write().expect("seed store lock poisoned");
        let entries = inner.seeds.entry(SeedFamily::super_of(point)).or_default();
        match entries.iter_mut().find(|(d, _)| *d == point.design) {
            Some(slot) => slot.1 = seed,
            None => entries.push((point.design, seed)),
        }
        true
    }

    /// Builds the warm-start hint for a point about to compile on `arch`, or
    /// `None` when the store has nothing useful (or the policy is `Off`).
    ///
    /// Seed selection prefers provably transferable seeds — same fabric
    /// signature (depth siblings) or a capacity certificate admitting this
    /// fabric's switch capacities (communication siblings) — nearest first
    /// under the provisioning distance. Under [`SeedPolicy::Aggressive`] the
    /// nearest non-transferable seed is offered as a heuristic warm start
    /// when no sound candidate exists.
    pub fn hint_for(
        &self,
        point: &SweepPoint,
        arch: &plaid_arch::Architecture,
        dfg: u64,
        policy: SeedPolicy,
    ) -> Option<MapSeed> {
        if policy == SeedPolicy::Off {
            return None;
        }
        let fabric = plaid::pipeline::fabric_signature(arch);
        let nocap = plaid::pipeline::fabric_signature_nocap(arch);
        let capacities: Vec<u32> = arch.resources().iter().map(|r| r.kind.capacity()).collect();
        let inner = self.inner.read().expect("seed store lock poisoned");
        let candidates = inner.seeds.get(&SeedFamily::super_of(point));
        // The sound tier mirrors what `plan_ladder` will actually accept:
        // only canonical seeds replay, so a nearer non-canonical seed must
        // not shadow a replayable canonical sibling.
        let mut seed = candidates.and_then(|entries| {
            entries
                .iter()
                .filter(|(_, s)| s.canonical && s.transfers_to(fabric, nocap, &capacities))
                .min_by_key(|(d, _)| provisioning_distance(d, &point.design))
                .map(|(_, s)| s.clone())
        });
        if seed.is_none() && policy == SeedPolicy::Aggressive {
            // Nearest seed regardless of transferability, as a warm start.
            seed = candidates.and_then(|entries| {
                entries
                    .iter()
                    .min_by_key(|(d, _)| provisioning_distance(d, &point.design))
                    .map(|(_, s)| s.clone())
            });
        }
        let infeasible = inner
            .infeasible
            .get(&SeedFamily::of(point))
            .map(|&through_ii| InfeasiblePrefix {
                dfg,
                fabric,
                through_ii,
            });
        if seed.is_none() && infeasible.is_none() {
            return None;
        }
        Some(MapSeed {
            seed,
            infeasible,
            allow_warm: policy == SeedPolicy::Aggressive,
        })
    }

    /// Number of stored seeds across all families.
    pub fn seed_count(&self) -> usize {
        self.inner
            .read()
            .expect("seed store lock poisoned")
            .seeds
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Number of families with a proven-infeasible ladder prefix.
    pub fn infeasible_count(&self) -> usize {
        self.inner
            .read()
            .expect("seed store lock poisoned")
            .infeasible
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{ArchClass, CommLevel};
    use plaid_workloads::find_workload;

    fn fp(point: &SweepPoint) -> u64 {
        plaid::pipeline::dfg_fingerprint(&point.workload.lower().unwrap())
    }

    fn point(depth: u32, comm: CommLevel) -> SweepPoint {
        SweepPoint {
            workload: find_workload("dwconv").unwrap(),
            design: DesignPoint {
                class: ArchClass::SpatioTemporal,
                rows: 2,
                cols: 2,
                config_entries: depth,
                comm: comm.spec(),
            },
            mapper: MapperChoice::PathFinder,
        }
    }

    #[test]
    fn distance_orders_axes_dims_then_comm_then_depth() {
        let base = point(16, CommLevel::Aligned).design;
        let depth_only = DesignPoint {
            config_entries: 8,
            ..base
        };
        let comm_only = DesignPoint {
            comm: CommLevel::Rich.spec(),
            ..base
        };
        let dims_only = DesignPoint {
            rows: 3,
            cols: 3,
            ..base
        };
        let d_depth = provisioning_distance(&base, &depth_only);
        let d_comm = provisioning_distance(&base, &comm_only);
        let d_dims = provisioning_distance(&base, &dims_only);
        assert!(d_depth < d_comm, "{d_depth} < {d_comm}");
        assert!(d_comm < d_dims, "{d_comm} < {d_dims}");
        assert_eq!(provisioning_distance(&base, &base), 0);
        let other_class = DesignPoint {
            class: ArchClass::Plaid,
            ..base
        };
        assert_eq!(provisioning_distance(&base, &other_class), u32::MAX);
    }

    #[test]
    fn store_absorbs_successes_and_serves_depth_sibling_hints() {
        let store = SeedStore::new();
        let p16 = point(16, CommLevel::Aligned);
        let record = crate::sweep::evaluate_point(&p16, &crate::cache::ResultCache::new());
        assert!(record.ok, "dwconv maps on the 2x2 baseline");
        store.absorb(&p16, &record);
        assert_eq!(store.seed_count(), 1);

        // The 8-deep sibling retrieves the seed under Exact (identical
        // fabric signature — depth does not change structure).
        let p8 = point(8, CommLevel::Aligned);
        let arch8 = p8.design.build();
        let hint = store
            .hint_for(&p8, &arch8, fp(&p8), SeedPolicy::Exact)
            .expect("same family");
        assert!(hint.seed.is_some());
        assert!(!hint.allow_warm);
        // Off never serves hints.
        assert!(store
            .hint_for(&p8, &arch8, fp(&p8), SeedPolicy::Off)
            .is_none());
        // Aggressive mode always offers the nearest seed as a warm start.
        let lean = point(8, CommLevel::Lean);
        let lean_arch = lean.design.build();
        let aggressive = store.hint_for(&lean, &lean_arch, fp(&lean), SeedPolicy::Aggressive);
        assert!(aggressive.is_some_and(|h| h.seed.is_some() && h.allow_warm));
    }

    #[test]
    fn capacity_certified_seeds_cross_communication_levels() {
        // Compile the aligned point cold, then check its seed is offered to
        // the rich sibling under Exact — the PathFinder baseline's seeds
        // carry no capacity certificate, so this only holds when the fabric
        // signatures match; a certified plaid/SA seed transfers. Use the
        // plaid mapper (certified) on a plaid fabric.
        let workload = find_workload("dwconv").unwrap();
        let mk = |comm: CommLevel| SweepPoint {
            workload: workload.clone(),
            design: DesignPoint {
                class: ArchClass::Plaid,
                rows: 2,
                cols: 2,
                config_entries: 16,
                comm: comm.spec(),
            },
            mapper: MapperChoice::Plaid,
        };
        let store = SeedStore::new();
        let aligned = mk(CommLevel::Aligned);
        let record = crate::sweep::evaluate_point(&aligned, &crate::cache::ResultCache::new());
        assert!(record.ok, "dwconv maps on plaid 2x2");
        store.absorb(&aligned, &record);
        let rich = mk(CommLevel::Rich);
        let rich_arch = rich.design.build();
        if let Some(hint) = store.hint_for(&rich, &rich_arch, fp(&rich), SeedPolicy::Exact) {
            // Transfer is only offered when the certificate admits the rich
            // capacities; if offered, the mapper will replay it soundly.
            let seed = hint.seed.expect("exact hints carry sound seeds");
            assert!(seed.canonical);
            assert!(!seed.cap_need.is_empty(), "plaid seeds are certified");
        }
    }

    #[test]
    fn topology_survives_super_family_erasure() {
        use plaid_arch::{BwClass, CommSpec, Topology};
        // Bandwidth is erased (all presets group together, as under the
        // scalar encoding) but topology is not: a torus fabric's links
        // differ from a mesh's, so their seeds must never share a family.
        let mk = |comm: CommSpec| SweepPoint {
            workload: find_workload("dwconv").unwrap(),
            design: DesignPoint {
                class: ArchClass::SpatioTemporal,
                rows: 3,
                cols: 3,
                config_entries: 16,
                comm,
            },
            mapper: MapperChoice::PathFinder,
        };
        let lean = mk(CommLevel::Lean.spec());
        let rich = mk(CommLevel::Rich.spec());
        let torus_half = mk(CommSpec::uniform(Topology::Torus, BwClass::Half));
        let torus_base = mk(CommSpec::uniform(Topology::Torus, BwClass::Base));
        assert_eq!(SeedFamily::super_of(&lean), SeedFamily::super_of(&rich));
        assert_eq!(
            SeedFamily::super_of(&torus_half),
            SeedFamily::super_of(&torus_base)
        );
        assert_ne!(
            SeedFamily::super_of(&lean),
            SeedFamily::super_of(&torus_base),
            "mesh and torus grouped together"
        );
        // The distance metric agrees: cross-topology specs are far apart,
        // same-topology bandwidth siblings are near.
        let near = provisioning_distance(&torus_half.design, &torus_base.design);
        let far = provisioning_distance(&lean.design, &torus_base.design);
        assert!(near < far, "{near} < {far}");
        // And the mapper-facing fabric signatures differ across topologies
        // even with capacities erased, so no seed can transfer.
        let mesh_arch = lean.design.build();
        let torus_arch = torus_base.design.build();
        assert_ne!(
            plaid::pipeline::fabric_signature_nocap(&mesh_arch),
            plaid::pipeline::fabric_signature_nocap(&torus_arch)
        );
    }

    #[test]
    fn infeasible_failures_raise_the_family_floor() {
        let store = SeedStore::new();
        let p8 = point(8, CommLevel::Lean);
        let record = EvalRecord::failed(
            &p8,
            "mapping failed: no valid mapping of x onto y up to II=8",
        );
        store.absorb(&p8, &record);
        assert_eq!(store.infeasible_count(), 1);
        let p16 = point(16, CommLevel::Lean);
        let arch16 = p16.design.build();
        let hint = store
            .hint_for(&p16, &arch16, fp(&p16), SeedPolicy::Exact)
            .expect("floor transfers within the family");
        assert_eq!(hint.infeasible.map(|i| i.through_ii), Some(8));
        // The floor is comm-specific: the aligned sibling gets nothing.
        let aligned = point(16, CommLevel::Aligned);
        let aligned_arch = aligned.design.build();
        assert!(store
            .hint_for(&aligned, &aligned_arch, fp(&aligned), SeedPolicy::Exact)
            .is_none());
        // Non-ladder failures (e.g. unsupported DFG) do not prove anything.
        let other = EvalRecord::failed(&p8, "mapping failed: DFG not supported");
        let fresh = SeedStore::new();
        fresh.absorb(&p8, &other);
        assert_eq!(fresh.infeasible_count(), 0);
    }

    #[test]
    fn persisted_cache_records_never_raise_floors() {
        // Records served from a persisted cache go through `absorb_seed`,
        // which must ignore failures: a cache written by an older mapper
        // could otherwise floor points the current mapper maps.
        let store = SeedStore::new();
        let p8 = point(8, CommLevel::Lean);
        let stale = EvalRecord::failed(
            &p8,
            "mapping failed: no valid mapping of x onto y up to II=8",
        );
        assert!(!store.absorb_seed(&p8, &stale));
        assert_eq!(store.infeasible_count(), 0);
        let p16 = point(16, CommLevel::Lean);
        let arch16 = p16.design.build();
        assert!(store
            .hint_for(&p16, &arch16, fp(&p16), SeedPolicy::Exact)
            .is_none());
    }
}
