//! Multi-objective Pareto-frontier extraction over sweep results.
//!
//! Every evaluated point carries three minimization objectives — execution
//! cycles, fabric area and fabric energy. A point *dominates* another when it
//! is no worse on every objective and strictly better on at least one; the
//! frontier is the set of non-dominated points. Frontiers are extracted per
//! workload (comparing cycles across different workloads is meaningless) and
//! returned in a deterministic order so repeated sweeps serialize
//! byte-identically.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::record::EvalRecord;

/// The three minimization objectives of the provisioning study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// Total execution cycles.
    pub cycles: u64,
    /// Fabric area in µm².
    pub area_um2: f64,
    /// Fabric energy in nJ.
    pub energy_nj: f64,
}

impl Objectives {
    /// Whether every objective is a finite number. A record with a NaN (or
    /// infinite) area or energy can never be dominated — IEEE comparisons
    /// against NaN are all false — so it would always survive onto the
    /// frontier; such records are excluded before dominance filtering.
    pub fn is_finite(&self) -> bool {
        self.area_um2.is_finite() && self.energy_nj.is_finite()
    }

    /// True when `self` is no worse than `other` on every objective and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.cycles <= other.cycles
            && self.area_um2 <= other.area_um2
            && self.energy_nj <= other.energy_nj;
        let better = self.cycles < other.cycles
            || self.area_um2 < other.area_um2
            || self.energy_nj < other.energy_nj;
        no_worse && better
    }
}

/// Indices of the non-dominated points of `objectives`, in ascending index
/// order.
///
/// Duplicate objective vectors are all kept (none dominates the other), so
/// ties stay visible in reports. O(n²) pairwise filtering — sweep result
/// sets are small (hundreds to low thousands of points).
pub fn pareto_indices(objectives: &[Objectives]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.dominates(&objectives[i]))
        })
        .collect()
}

/// The per-workload frontier of a sweep, in serializable form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadFrontier {
    /// Workload name.
    pub workload: String,
    /// Non-dominated evaluated points, sorted by ascending cycles (ties by
    /// area, then energy, then architecture label).
    pub points: Vec<EvalRecord>,
    /// Number of evaluated (successful) points the frontier was drawn from.
    pub evaluated: usize,
}

/// A full frontier report: one frontier per workload, workloads sorted by
/// name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierReport {
    /// Per-workload frontiers.
    pub frontiers: Vec<WorkloadFrontier>,
    /// Evaluated records dropped because an objective was NaN or infinite
    /// (a non-finite objective would otherwise always survive dominance
    /// filtering and pollute the frontier).
    pub excluded_non_finite: usize,
}

impl FrontierReport {
    /// Extracts per-workload Pareto frontiers from sweep records. Failed
    /// evaluations (no metrics) are excluded before dominance filtering, as
    /// are records with non-finite objectives (counted in
    /// [`FrontierReport::excluded_non_finite`]).
    pub fn from_records(records: &[EvalRecord]) -> Self {
        let mut by_workload: BTreeMap<String, Vec<EvalRecord>> = BTreeMap::new();
        let mut excluded_non_finite = 0usize;
        for record in records {
            match record.objectives() {
                Some(obj) if obj.is_finite() => {
                    // The captured warm-start seed is mapper-internal state:
                    // its capacity certificate depends on how the II ladder
                    // was reached (cold vs. floored past a proven-infeasible
                    // prefix) even when the mapping itself is identical.
                    // Stripping it keeps frontier reports bit-identical
                    // across seeding policies and slims the artifact.
                    by_workload
                        .entry(record.workload.name.clone())
                        .or_default()
                        .push(record.without_seed());
                }
                Some(_) => excluded_non_finite += 1,
                None => {}
            }
        }
        let frontiers = by_workload
            .into_iter()
            .map(|(workload, mut candidates)| {
                // Deterministic input order before filtering, so ties break
                // identically across runs and thread schedules.
                candidates.sort_by(compare_records);
                let objectives: Vec<Objectives> = candidates
                    .iter()
                    .map(|r| r.objectives().expect("failed records filtered"))
                    .collect();
                let keep = pareto_indices(&objectives);
                let evaluated = candidates.len();
                let points = keep.into_iter().map(|i| candidates[i].clone()).collect();
                WorkloadFrontier {
                    workload,
                    points,
                    evaluated,
                }
            })
            .collect();
        FrontierReport {
            frontiers,
            excluded_non_finite,
        }
    }

    /// Total number of frontier points across all workloads.
    pub fn frontier_size(&self) -> usize {
        self.frontiers.iter().map(|f| f.points.len()).sum()
    }

    /// Renders the report as plain-text tables (one per workload).
    pub fn render(&self) -> String {
        use plaid::report::render_table;
        let mut out = String::new();
        for frontier in &self.frontiers {
            let rows: Vec<Vec<String>> = frontier
                .points
                .iter()
                .map(|r| {
                    let obj = r.objectives().expect("frontier points evaluated");
                    vec![
                        r.arch.clone(),
                        r.mapper.label().to_string(),
                        r.compute_units.to_string(),
                        r.design.comm.label(),
                        r.design.config_entries.to_string(),
                        obj.cycles.to_string(),
                        format!("{:.0}", obj.area_um2),
                        format!("{:.1}", obj.energy_nj),
                    ]
                })
                .collect();
            out.push_str(&render_table(
                &format!(
                    "Pareto frontier — {} ({} of {} points survive)",
                    frontier.workload,
                    frontier.points.len(),
                    frontier.evaluated
                ),
                &[
                    "arch",
                    "mapper",
                    "FUs",
                    "comm",
                    "depth",
                    "cycles",
                    "area_um2",
                    "energy_nj",
                ],
                &rows,
            ));
            out.push('\n');
        }
        out
    }
}

fn compare_records(a: &EvalRecord, b: &EvalRecord) -> std::cmp::Ordering {
    let oa = a.objectives().expect("compared records evaluated");
    let ob = b.objectives().expect("compared records evaluated");
    oa.cycles
        .cmp(&ob.cycles)
        .then(oa.area_um2.total_cmp(&ob.area_um2))
        .then(oa.energy_nj.total_cmp(&ob.energy_nj))
        .then(a.arch.cmp(&b.arch))
        .then(a.mapper.label().cmp(b.mapper.label()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(cycles: u64, area: f64, energy: f64) -> Objectives {
        Objectives {
            cycles,
            area_um2: area,
            energy_nj: energy,
        }
    }

    #[test]
    fn dominance_is_strict_and_irreflexive() {
        let a = obj(100, 10.0, 5.0);
        let b = obj(200, 20.0, 10.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "a point never dominates itself");
        // Incomparable points (trade-off): neither dominates.
        let c = obj(50, 40.0, 5.0);
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    #[test]
    fn single_axis_improvement_suffices() {
        let a = obj(100, 10.0, 5.0);
        let better_energy = obj(100, 10.0, 4.0);
        assert!(better_energy.dominates(&a));
    }

    #[test]
    fn frontier_contains_no_dominated_point() {
        let points = vec![
            obj(100, 10.0, 5.0),  // frontier
            obj(100, 10.0, 5.0),  // duplicate — kept (ties don't dominate)
            obj(90, 20.0, 6.0),   // frontier (fastest in its area class)
            obj(200, 20.0, 10.0), // dominated by 0
            obj(80, 5.0, 2.0),    // dominates everything
        ];
        let keep = pareto_indices(&points);
        // Point 4 dominates 0, 1, 2 and 3? It dominates 0/1/3; 2 has
        // cycles 90 > 80, area 20 > 5 — dominated too.
        assert_eq!(keep, vec![4]);
        for &i in &keep {
            for (j, other) in points.iter().enumerate() {
                if i != j {
                    assert!(
                        !other.dominates(&points[i]),
                        "frontier point {i} dominated by {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn incomparable_points_all_survive() {
        let points = vec![obj(100, 30.0, 1.0), obj(50, 60.0, 2.0), obj(25, 90.0, 0.5)];
        assert_eq!(pareto_indices(&points), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input_yields_empty_frontier() {
        assert!(pareto_indices(&[]).is_empty());
        let report = FrontierReport::from_records(&[]);
        assert_eq!(report.frontier_size(), 0);
        assert_eq!(report.excluded_non_finite, 0);
        assert!(report.render().is_empty());
    }

    fn record_with_metrics(area: f64, energy: f64) -> EvalRecord {
        use plaid::pipeline::{CompileSummary, MapperChoice};
        use plaid_arch::{ArchClass, CommSpec, DesignPoint};
        use plaid_motif::CoverageStats;
        use plaid_sim::metrics::EvalMetrics;
        use plaid_workloads::{Domain, WorkloadDescriptor};
        EvalRecord {
            workload: WorkloadDescriptor {
                name: "synthetic".into(),
                domain: Domain::LinearAlgebra,
                kernel: "synthetic".into(),
                unroll: 1,
                iterations: 16,
            },
            design: DesignPoint {
                class: ArchClass::Plaid,
                rows: 2,
                cols: 2,
                config_entries: 16,
                comm: CommSpec::ALIGNED,
            },
            arch: format!("synthetic-a{area}-e{energy}"),
            mapper: MapperChoice::Plaid,
            compute_units: 16,
            ok: true,
            error: None,
            summary: Some(CompileSummary {
                name: "synthetic".into(),
                coverage: CoverageStats {
                    name: "synthetic".into(),
                    total_nodes: 1,
                    compute_nodes: 1,
                    covered_nodes: 0,
                    fan_in: 0,
                    fan_out: 0,
                    unicast: 0,
                    pairs: 0,
                },
                metrics: EvalMetrics {
                    kernel: "synthetic".into(),
                    arch: "synthetic".into(),
                    mapper: "plaid".into(),
                    ii: 1,
                    cycles: 100,
                    power_uw: 1.0,
                    energy_nj: energy,
                    area_um2: area,
                },
                seed: None,
            }),
        }
    }

    #[test]
    fn non_finite_objectives_are_excluded_with_a_count() {
        // Regression: a NaN objective is incomparable under IEEE `<=`/`<`,
        // so nothing can dominate it and it always landed on the frontier.
        let nan_area = record_with_metrics(f64::NAN, 1.0);
        let inf_energy = record_with_metrics(10.0, f64::INFINITY);
        let good = record_with_metrics(10.0, 1.0);
        let report =
            FrontierReport::from_records(&[nan_area.clone(), inf_energy.clone(), good.clone()]);
        assert_eq!(report.excluded_non_finite, 2);
        assert_eq!(report.frontier_size(), 1);
        let frontier = &report.frontiers[0];
        assert_eq!(frontier.evaluated, 1);
        assert_eq!(frontier.points[0].arch, good.arch);
        // Sanity: without the filter the NaN record would have survived.
        assert!(!nan_area.objectives().unwrap().is_finite());
        assert!(!inf_energy.objectives().unwrap().is_finite());
        assert!(good.objectives().unwrap().is_finite());
    }
}
