//! Analytical area / power / energy cost models.
//!
//! # Calibration
//!
//! The paper reports post-synthesis numbers from a 22 nm FDSOI flow at
//! 100 MHz; this reproduction has no silicon flow, so per-component constants
//! are calibrated once against two anchors from the paper and everything else
//! is derived structurally from the architecture description:
//!
//! * the power split of the spatio-temporal baseline (Figure 2(a): routers
//!   ~15 %, communication configuration ~29 %, compute configuration ~19 %,
//!   compute ~28 %, others ~9 %), and
//! * the area split of the 2×2 Plaid fabric (Figure 13: local routers ~9 %,
//!   global routers ~30 %, compute configuration ~24 %, communication
//!   configuration ~21 %, compute ~11 %, others ~5 %; total 33,366 µm²).
//!
//! Configuration memory is modelled as a per-tile peripheral overhead plus a
//! per-bit cost, which is what makes consolidating sixteen small PE
//! configuration memories into four PCU memories profitable — the effect the
//! paper exploits. Spatial CGRAs clock-gate their configuration memories, so
//! only a small leakage fraction of the configuration power remains.

use plaid_arch::{ArchClass, Architecture, Domain, ResourceKind};

/// Clock frequency of all modelled fabrics (Hz). The paper synthesizes at
/// 100 MHz.
pub const CLOCK_HZ: f64 = 100_000_000.0;

/// Fabric power broken down per component class, in µW.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Local routers (Plaid) — zero for the baselines.
    pub local_routers: f64,
    /// Global routers / PE crossbars.
    pub global_routers: f64,
    /// NoC wiring beyond the mesh baseline (torus wraparound, express
    /// links), charged per tile-unit of extra wire length — zero on the
    /// published mesh fabrics.
    pub noc_wiring: f64,
    /// Communication configuration memory.
    pub comm_config: f64,
    /// Compute configuration memory.
    pub compute_config: f64,
    /// Functional units.
    pub compute: f64,
    /// Register files, clocking and miscellaneous.
    pub others: f64,
}

impl PowerBreakdown {
    /// Total fabric power in µW.
    pub fn total(&self) -> f64 {
        self.local_routers
            + self.global_routers
            + self.noc_wiring
            + self.comm_config
            + self.compute_config
            + self.compute
            + self.others
    }

    /// All router power (local + global).
    pub fn routers(&self) -> f64 {
        self.local_routers + self.global_routers
    }

    /// Fraction of the total attributable to a component value.
    pub fn share(&self, component: f64) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            component / self.total()
        }
    }
}

/// Fabric area broken down per component class, in µm².
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Local routers (Plaid) — zero for the baselines.
    pub local_routers: f64,
    /// Global routers / PE crossbars.
    pub global_routers: f64,
    /// NoC wiring beyond the mesh baseline (torus wraparound, express
    /// links), charged per tile-unit of extra wire length — zero on the
    /// published mesh fabrics.
    pub noc_wiring: f64,
    /// Communication configuration memory.
    pub comm_config: f64,
    /// Compute configuration memory.
    pub compute_config: f64,
    /// Functional units.
    pub compute: f64,
    /// Register files, clocking and miscellaneous.
    pub others: f64,
}

impl AreaBreakdown {
    /// Total fabric area in µm².
    pub fn total(&self) -> f64 {
        self.local_routers
            + self.global_routers
            + self.noc_wiring
            + self.comm_config
            + self.compute_config
            + self.compute
            + self.others
    }

    /// All router area (local + global).
    pub fn routers(&self) -> f64 {
        self.local_routers + self.global_routers
    }

    /// Fraction of the total attributable to a component value.
    pub fn share(&self, component: f64) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            component / self.total()
        }
    }
}

/// Per-component constants of the cost model. Construct via
/// [`CostModel::default`] (the calibrated 22 nm-like values) unless a test
/// needs to explore sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---- power, µW ----
    /// Power of one 16-bit ALU.
    pub alu_power: f64,
    /// Power of one ALSU (ALU plus scratch-pad port and AGU).
    pub alsu_power: f64,
    /// Power of one baseline PE crossbar router.
    pub pe_crossbar_power: f64,
    /// Power of one Plaid local (8×8) router.
    pub local_router_power: f64,
    /// Power of one Plaid global (7×9) router.
    pub global_router_power: f64,
    /// Power of one registered ALU-to-ALU bypass path.
    pub bypass_power: f64,
    /// Per-tile configuration-memory peripheral power (decoder, sense amps),
    /// charged once per tile per configuration class.
    pub config_tile_power: f64,
    /// Per-bit power of communication configuration read every cycle.
    pub comm_config_bit_power: f64,
    /// Per-bit power of compute configuration read every cycle.
    pub compute_config_bit_power: f64,
    /// Fraction of configuration power remaining when the configuration
    /// memory is clock-gated (spatial CGRAs).
    pub clock_gated_fraction: f64,
    /// Miscellaneous power per tile (clock tree, registers).
    pub misc_tile_power: f64,
    /// Power per tile-unit of NoC wire length *beyond* the mesh baseline
    /// (registered repeaters on torus wraparound and express links). The
    /// mesh links themselves are already folded into the router constants
    /// the model was calibrated with, so mesh fabrics are charged nothing.
    pub noc_wire_power_per_unit: f64,
    // ---- area, µm² ----
    /// Area of one 16-bit ALU.
    pub alu_area: f64,
    /// Area of one ALSU.
    pub alsu_area: f64,
    /// Area of one baseline PE crossbar router.
    pub pe_crossbar_area: f64,
    /// Area of one Plaid local router.
    pub local_router_area: f64,
    /// Area of one Plaid global router.
    pub global_router_area: f64,
    /// Area of one bypass path.
    pub bypass_area: f64,
    /// Per-tile configuration-memory peripheral area, per configuration class.
    pub config_tile_area: f64,
    /// Per-bit configuration memory area (bit-cells).
    pub config_bit_area: f64,
    /// Miscellaneous area per tile.
    pub misc_tile_area: f64,
    /// Area per tile-unit of NoC wire length beyond the mesh baseline (wire
    /// track plus repeater; see [`CostModel::noc_wire_power_per_unit`]).
    pub noc_wire_area_per_unit: f64,
    /// Scratch-pad area per KiB.
    pub spm_area_per_kib: f64,
    /// Factor applied to compute datapaths of ML-pruned variants.
    pub ml_compute_scale: f64,
    /// Factor applied to hardwired local routers (Plaid-ML).
    pub hardwired_router_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu_power: 14.0,
            alsu_power: 16.8,
            pe_crossbar_power: 7.9,
            local_router_power: 3.4,
            global_router_power: 6.1,
            bypass_power: 0.15,
            config_tile_power: 9.8,
            comm_config_bit_power: 0.115,
            compute_config_bit_power: 0.17,
            clock_gated_fraction: 0.12,
            misc_tile_power: 4.7,
            noc_wire_power_per_unit: 0.8,
            alu_area: 225.0,
            alsu_area: 300.0,
            pe_crossbar_area: 610.0,
            local_router_area: 750.0,
            global_router_area: 2_480.0,
            bypass_area: 18.0,
            config_tile_area: 1_150.0,
            config_bit_area: 0.95,
            misc_tile_area: 410.0,
            noc_wire_area_per_unit: 85.0,
            spm_area_per_kib: 1_875.0,
            ml_compute_scale: 0.78,
            hardwired_router_scale: 0.35,
        }
    }
}

/// Tile-units of NoC wire length in excess of the mesh baseline: the sum
/// over inter-tile links of `manhattan_distance − 1`. Mesh links connect
/// grid neighbours (distance 1) and contribute nothing; torus wraparound
/// links span `cols − 1` (or `rows − 1`) tiles and express links span their
/// stride, so richer topologies are charged the wire they actually add.
/// Intra-tile links (distance 0) contribute nothing.
fn extra_wire_units(arch: &Architecture) -> f64 {
    arch.links()
        .iter()
        .map(|l| f64::from(arch.resource_distance(l.from, l.to).saturating_sub(1)))
        .sum()
}

impl CostModel {
    /// Steady-state fabric power of an architecture in µW.
    ///
    /// Power is determined by the architecture (all configuration memories
    /// are read every cycle on spatio-temporal fabrics and Plaid, and
    /// clock-gated on spatial fabrics); kernels affect *energy* through their
    /// cycle count.
    pub fn fabric_power(&self, arch: &Architecture) -> PowerBreakdown {
        let mut p = PowerBreakdown::default();
        let ml = arch.params().domain == Some(Domain::MachineLearning);
        let compute_scale = if ml { self.ml_compute_scale } else { 1.0 };
        for r in arch.resources() {
            match r.kind {
                ResourceKind::FuncUnit(caps) => {
                    let base = if caps.memory {
                        self.alsu_power
                    } else {
                        self.alu_power
                    };
                    p.compute += base * compute_scale;
                }
                ResourceKind::Switch { .. } => {
                    let name = r.name.as_str();
                    if name.contains(".local") {
                        let tile_hardwired = arch
                            .clusters()
                            .get(r.tile)
                            .map(|c| c.hardwired.is_some())
                            .unwrap_or(false);
                        let scale = if tile_hardwired {
                            self.hardwired_router_scale
                        } else {
                            1.0
                        };
                        p.local_routers += self.local_router_power * scale;
                    } else if name.contains(".global") {
                        p.global_routers += self.global_router_power;
                    } else if name.contains("bypass") {
                        p.local_routers += self.bypass_power;
                    } else {
                        // Baseline PE crossbars.
                        p.global_routers += self.pe_crossbar_power;
                    }
                }
            }
        }
        let tiles = arch.params().tile_count() as f64;
        let budget = arch.params().config;
        let gate = if arch.class() == ArchClass::Spatial {
            self.clock_gated_fraction
        } else {
            1.0
        };
        p.comm_config = gate
            * tiles
            * (self.config_tile_power
                + f64::from(budget.communication_bits + budget.control_bits)
                    * self.comm_config_bit_power);
        p.compute_config = gate
            * tiles
            * (self.config_tile_power * 0.8
                + f64::from(budget.compute_bits()) * self.compute_config_bit_power);
        p.others = tiles * self.misc_tile_power;
        p.noc_wiring = extra_wire_units(arch) * self.noc_wire_power_per_unit;
        p
    }

    /// Fabric area of an architecture in µm² (excluding the scratch-pad).
    pub fn fabric_area(&self, arch: &Architecture) -> AreaBreakdown {
        let mut a = AreaBreakdown::default();
        let ml = arch.params().domain == Some(Domain::MachineLearning);
        let compute_scale = if ml { self.ml_compute_scale } else { 1.0 };
        for r in arch.resources() {
            match r.kind {
                ResourceKind::FuncUnit(caps) => {
                    let base = if caps.memory {
                        self.alsu_area
                    } else {
                        self.alu_area
                    };
                    a.compute += base * compute_scale;
                }
                ResourceKind::Switch { .. } => {
                    let name = r.name.as_str();
                    if name.contains(".local") {
                        let tile_hardwired = arch
                            .clusters()
                            .get(r.tile)
                            .map(|c| c.hardwired.is_some())
                            .unwrap_or(false);
                        let scale = if tile_hardwired {
                            self.hardwired_router_scale
                        } else {
                            1.0
                        };
                        a.local_routers += self.local_router_area * scale;
                    } else if name.contains(".global") {
                        a.global_routers += self.global_router_area;
                    } else if name.contains("bypass") {
                        a.local_routers += self.bypass_area;
                    } else {
                        a.global_routers += self.pe_crossbar_area;
                    }
                }
            }
        }
        let tiles = arch.params().tile_count() as f64;
        let budget = arch.params().config;
        let entries = f64::from(arch.params().config_entries);
        a.comm_config = tiles
            * (self.config_tile_area
                + f64::from(budget.communication_bits + budget.control_bits)
                    * entries
                    * self.config_bit_area);
        a.compute_config = tiles
            * (self.config_tile_area
                + f64::from(budget.compute_bits()) * entries * self.config_bit_area);
        a.others = tiles * self.misc_tile_area;
        a.noc_wiring = extra_wire_units(arch) * self.noc_wire_area_per_unit;
        a
    }

    /// Scratch-pad memory area in µm².
    pub fn spm_area(&self, arch: &Architecture) -> f64 {
        f64::from(arch.params().spm_total_kib()) * self.spm_area_per_kib
    }

    /// Energy in nJ to execute `cycles` cycles on `arch` at [`CLOCK_HZ`].
    pub fn energy_nj(&self, arch: &Architecture, cycles: u64) -> f64 {
        let power_uw = self.fabric_power(arch).total();
        // nJ = µW * s * 1e3; one cycle = 1/CLOCK_HZ s.
        power_uw * (cycles as f64 / CLOCK_HZ) * 1.0e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatial, spatio_temporal, specialize};

    fn model() -> CostModel {
        CostModel::default()
    }

    fn assert_near(value: f64, target: f64, tolerance: f64, label: &str) {
        assert!(
            (value - target).abs() <= tolerance,
            "{label}: {value:.3} not within {tolerance} of {target}"
        );
    }

    #[test]
    fn spatio_temporal_power_split_matches_figure_2a() {
        let st = spatio_temporal::build(4, 4);
        let p = model().fabric_power(&st);
        assert_near(p.share(p.routers()), 0.15, 0.05, "router share");
        assert_near(p.share(p.comm_config), 0.29, 0.06, "comm config share");
        assert_near(
            p.share(p.compute_config),
            0.19,
            0.06,
            "compute config share",
        );
        assert_near(p.share(p.compute), 0.28, 0.06, "compute share");
        assert_near(p.share(p.others), 0.09, 0.05, "others share");
    }

    #[test]
    fn plaid_reduces_power_by_about_43_percent() {
        let st = spatio_temporal::build(4, 4);
        let pl = plaid::build(2, 2);
        let m = model();
        let ratio = m.fabric_power(&pl).total() / m.fabric_power(&st).total();
        assert_near(ratio, 0.57, 0.08, "plaid/st power ratio");
    }

    #[test]
    fn plaid_area_split_matches_figure_13() {
        let pl = plaid::build(2, 2);
        let a = model().fabric_area(&pl);
        assert_near(a.share(a.local_routers), 0.09, 0.04, "local router share");
        assert_near(a.share(a.global_routers), 0.30, 0.06, "global router share");
        assert_near(
            a.share(a.compute_config),
            0.24,
            0.06,
            "compute config share",
        );
        assert_near(a.share(a.comm_config), 0.21, 0.06, "comm config share");
        assert_near(a.share(a.compute), 0.11, 0.05, "compute share");
        assert_near(a.share(a.others), 0.05, 0.04, "others share");
    }

    #[test]
    fn plaid_fabric_area_is_close_to_the_reported_prototype() {
        let pl = plaid::build(2, 2);
        let a = model().fabric_area(&pl).total();
        // Section 7: the 2x2 prototype's fabric occupies 33,366 µm².
        assert_near(a / 33_366.0, 1.0, 0.2, "plaid fabric area vs prototype");
        let spm = model().spm_area(&pl);
        assert_near(spm / 30_000.0, 1.0, 0.2, "scratch-pad area vs prototype");
    }

    #[test]
    fn plaid_saves_about_46_percent_area_versus_spatio_temporal() {
        let st = spatio_temporal::build(4, 4);
        let pl = plaid::build(2, 2);
        let m = model();
        let ratio = m.fabric_area(&pl).total() / m.fabric_area(&st).total();
        assert_near(ratio, 0.54, 0.1, "plaid/st area ratio");
    }

    #[test]
    fn spatial_power_is_close_to_plaid_power() {
        let sp = spatial::build(4, 4);
        let pl = plaid::build(2, 2);
        let m = model();
        let ratio = m.fabric_power(&pl).total() / m.fabric_power(&sp).total();
        assert_near(ratio, 1.0, 0.15, "plaid/spatial power ratio");
        // And spatial keeps roughly the baseline's area.
        let st = spatio_temporal::build(4, 4);
        let area_ratio = m.fabric_area(&sp).total() / m.fabric_area(&st).total();
        assert_near(area_ratio, 1.0, 0.01, "spatial/st area ratio");
    }

    #[test]
    fn ml_specialization_reduces_both_architectures() {
        let m = model();
        let st = spatio_temporal::build(4, 4);
        let st_ml = specialize::spatio_temporal_ml(4, 4);
        assert!(m.fabric_power(&st_ml).total() < m.fabric_power(&st).total());
        assert!(m.fabric_area(&st_ml).total() < m.fabric_area(&st).total());
        let pl = plaid::build(2, 2);
        let pl_ml = specialize::plaid_ml_2x2();
        assert!(m.fabric_power(&pl_ml).total() < m.fabric_power(&pl).total());
        assert!(m.fabric_area(&pl_ml).total() < m.fabric_area(&pl).total());
        // Plaid remains more efficient than the ML-specialized baseline
        // (Section 7.3's headline comparison).
        assert!(m.fabric_power(&pl).total() < m.fabric_power(&st_ml).total());
    }

    #[test]
    fn three_by_three_plaid_scales_structurally() {
        let m = model();
        let small = plaid::build(2, 2);
        let large = plaid::build(3, 3);
        let ratio = m.fabric_area(&large).total() / m.fabric_area(&small).total();
        assert_near(ratio, 2.25, 0.2, "3x3/2x2 area ratio");
        assert!(m.fabric_power(&large).total() > m.fabric_power(&small).total());
    }

    #[test]
    fn mesh_fabrics_pay_no_topology_wiring_and_torus_does() {
        use plaid_arch::{ArchClass, BwClass, CommSpec, DesignPoint, Topology};
        let m = model();
        let point = |comm| DesignPoint {
            class: ArchClass::SpatioTemporal,
            rows: 4,
            cols: 4,
            config_entries: 16,
            comm,
        };
        let mesh = point(CommSpec::ALIGNED).build();
        let torus = point(CommSpec::uniform(Topology::Torus, BwClass::Base)).build();
        let express = point(CommSpec::uniform(
            Topology::Express { stride: 2 },
            BwClass::Base,
        ))
        .build();
        assert_eq!(m.fabric_power(&mesh).noc_wiring, 0.0);
        assert_eq!(m.fabric_area(&mesh).noc_wiring, 0.0);
        // 16 wraparound directed links, each spanning 3 tiles -> 2 extra
        // units apiece.
        let torus_power = m.fabric_power(&torus);
        assert_eq!(torus_power.noc_wiring, 32.0 * m.noc_wire_power_per_unit);
        assert!(torus_power.total() > m.fabric_power(&mesh).total());
        assert!(m.fabric_area(&torus).total() > m.fabric_area(&mesh).total());
        // Express stride 2: 32 directed links, 1 extra unit apiece.
        assert_eq!(
            m.fabric_area(&express).noc_wiring,
            32.0 * m.noc_wire_area_per_unit
        );
        // The wiring premium stays a small fraction of the fabric.
        assert!(torus_power.share(torus_power.noc_wiring) < 0.05);
    }

    #[test]
    fn energy_scales_linearly_with_cycles() {
        let m = model();
        let pl = plaid::build(2, 2);
        let e1 = m.energy_nj(&pl, 1_000);
        let e2 = m.energy_nj(&pl, 2_000);
        assert_near(e2 / e1, 2.0, 1e-9, "energy linearity");
        assert!(e1 > 0.0);
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let m = model();
        for arch in [
            spatio_temporal::build(4, 4),
            plaid::build(2, 2),
            spatial::build(4, 4),
        ] {
            let p = m.fabric_power(&arch);
            let total_share = p.share(p.local_routers)
                + p.share(p.global_routers)
                + p.share(p.comm_config)
                + p.share(p.compute_config)
                + p.share(p.compute)
                + p.share(p.others);
            assert_near(total_share, 1.0, 1e-9, "power shares");
            let a = m.fabric_area(&arch);
            let area_share = a.share(a.routers())
                + a.share(a.comm_config)
                + a.share(a.compute_config)
                + a.share(a.compute)
                + a.share(a.others);
            assert_near(area_share, 1.0, 1e-9, "area shares");
        }
    }
}
