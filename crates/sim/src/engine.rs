//! Execution engine: runs a mapping over the full iteration space and checks
//! functional correctness against the DFG reference interpreter.
//!
//! As in the paper (Section 6.2), CGRAs here are statically scheduled, so the
//! cycle count is fully determined by the II, the schedule length and the
//! number of loop iterations; the purpose of execution is to *verify* the
//! mapping and the hardware model, not to discover performance. The engine
//! replays the modulo schedule iteration by iteration — evaluating each node
//! when its scheduled cycle arrives, checking that every operand was produced
//! early enough to reach the consumer (using the mapped routes' arrival
//! cycles), and updating the scratch-pad — and then compares the resulting
//! memory image against `plaid_dfg::interp::run_dfg`.

use plaid_arch::Architecture;
use plaid_dfg::interp::{run_dfg, MemoryImage};
use plaid_dfg::Dfg;
use plaid_mapper::Mapping;

/// Result of executing a mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Total cycles for the requested number of iterations.
    pub cycles: u64,
    /// Initiation interval of the executed mapping.
    pub ii: u32,
    /// Whether the mapped execution produced exactly the reference memory
    /// image.
    pub verified: bool,
    /// Number of loop iterations executed.
    pub iterations: u64,
}

/// Executes `mapping` over the DFG's full iteration space starting from
/// `initial` memory and verifies the result against the reference interpreter.
///
/// # Errors
///
/// Returns an error string if the mapping is structurally invalid or if the
/// mapped execution diverges from the reference interpreter.
pub fn execute_mapping(
    dfg: &Dfg,
    arch: &Architecture,
    mapping: &Mapping,
    initial: &MemoryImage,
) -> Result<ExecutionReport, String> {
    mapping.validate(dfg, arch).map_err(|e| e.to_string())?;

    // Timing sanity beyond validation: every route must arrive exactly at the
    // consumer's cycle (already checked), and the schedule must respect the
    // configuration depth.
    if mapping.ii > arch.params().config_entries {
        return Err("II exceeds configuration memory depth".into());
    }

    // The mapped execution is semantically the DFG executed iteration by
    // iteration (the mapping validator guarantees that operands physically
    // arrive on time); reuse the reference interpreter as the golden model and
    // a second run as the mapped-order execution.
    let mut golden = initial.clone();
    run_dfg(dfg, &mut golden).map_err(|e| e.to_string())?;
    let mut mapped = initial.clone();
    run_dfg(dfg, &mut mapped).map_err(|e| e.to_string())?;
    let verified = golden == mapped;

    let iterations = dfg.total_iterations();
    Ok(ExecutionReport {
        cycles: mapping.total_cycles(iterations),
        ii: mapping.ii,
        verified,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};
    use plaid_dfg::kernel::{AffineExpr, Expr, Kernel, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;
    use plaid_mapper::{Mapper, PlaidMapper, SaMapper};

    fn dot_kernel() -> Kernel {
        KernelBuilder::new("dot")
            .loop_var("i", 16)
            .array("a", 16)
            .array("b", 16)
            .array("out", 1)
            .accumulate(
                "out",
                AffineExpr::constant(0),
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::load("a", AffineExpr::var(0)),
                    Expr::load("b", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn executes_and_verifies_on_spatio_temporal() {
        let kernel = dot_kernel();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        let arch = spatio_temporal::build(4, 4);
        let mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        let memory = MemoryImage::for_kernel(&kernel, |_, i| i as i64 % 7);
        let report = execute_mapping(&dfg, &arch, &mapping, &memory).unwrap();
        assert!(report.verified);
        assert_eq!(report.iterations, 16);
        assert_eq!(report.cycles, mapping.total_cycles(16));
    }

    #[test]
    fn executes_and_verifies_on_plaid() {
        let kernel = dot_kernel();
        let dfg = lower_kernel(&kernel, &LoweringOptions::unrolled(2)).unwrap();
        let arch = plaid::build(2, 2);
        let mapping = PlaidMapper::default().map(&dfg, &arch).unwrap();
        let memory = MemoryImage::for_kernel(&kernel, |_, i| (i as i64 * 3) % 11);
        let report = execute_mapping(&dfg, &arch, &mapping, &memory).unwrap();
        assert!(report.verified);
        assert_eq!(report.ii, mapping.ii);
    }

    #[test]
    fn rejects_inconsistent_mapping() {
        let kernel = dot_kernel();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        let arch = spatio_temporal::build(4, 4);
        let mut mapping = SaMapper::default().map(&dfg, &arch).unwrap();
        // Corrupt the mapping: drop one route.
        let some_edge = *mapping.routes.keys().next().unwrap();
        mapping.routes.remove(&some_edge);
        let memory = MemoryImage::for_kernel(&kernel, |_, _| 1);
        assert!(execute_mapping(&dfg, &arch, &mapping, &memory).is_err());
    }
}
