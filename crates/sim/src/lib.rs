//! Configuration encoding, execution engine and cost models.
//!
//! This crate plays the role of the paper's RTL synthesis flow (Cadence Genus
//! at 22 nm) and of the Morpher cycle-accurate simulator:
//!
//! * [`cost`] — analytical area / power / energy models built from
//!   per-component constants. The constants are calibrated once so that the
//!   spatio-temporal baseline reproduces the power split of Figure 2(a) and
//!   Plaid reproduces the area split of Figure 13; every other number
//!   (spatial baseline, ML-specialized variants, 3×3 scaling) then follows
//!   from the architecture's structural composition.
//! * [`config`] — configuration bitstream accounting: how many bits per tile
//!   and per entry a mapping actually needs (Section 4.3).
//! * [`engine`] — executes a mapping over the full iteration space, checking
//!   functional equivalence against the DFG reference interpreter and
//!   reporting cycle counts.
//! * [`metrics`] — the combined evaluation record (cycles, power, energy,
//!   area, performance per area) used by every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod engine;
pub mod metrics;

pub use config::{ConfigImage, TileConfig};
pub use cost::{AreaBreakdown, CostModel, PowerBreakdown};
pub use engine::{execute_mapping, ExecutionReport};
pub use metrics::EvalMetrics;
