//! Configuration bitstream accounting (Section 4.3).
//!
//! A statically scheduled CGRA is programmed by per-tile configuration
//! memories holding one entry per modulo slot. This module derives, from a
//! mapping, how many entries each tile needs and how many bits each entry
//! carries, and flags when a mapping exceeds the configuration-memory depth.

use std::collections::HashMap;

use plaid_arch::Architecture;
use plaid_dfg::Dfg;
use plaid_mapper::Mapping;

/// Configuration of one tile (PE or PCU).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileConfig {
    /// Tile index.
    pub tile: usize,
    /// Number of modulo slots in which this tile executes at least one
    /// operation or forwards at least one value.
    pub active_slots: u32,
    /// Operations issued by this tile across one II.
    pub operations: u32,
    /// Route-hops passing through this tile's switches across one II.
    pub route_occupancy: u32,
}

/// The whole-fabric configuration image derived from a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigImage {
    /// Per-tile configuration summaries.
    pub tiles: Vec<TileConfig>,
    /// Entries required per tile (equal to the mapping's II).
    pub entries: u32,
    /// Bits per entry per tile (from the architecture's configuration budget).
    pub bits_per_entry: u32,
}

impl ConfigImage {
    /// Total configuration bits the fabric must store for this mapping.
    pub fn total_bits(&self) -> u64 {
        u64::from(self.entries) * u64::from(self.bits_per_entry) * self.tiles.len() as u64
    }

    /// Fraction of configuration entries that drive at least one operation or
    /// route (a measure of how much of the programmability is actually used).
    pub fn entry_utilization(&self) -> f64 {
        if self.tiles.is_empty() || self.entries == 0 {
            return 0.0;
        }
        let active: u32 = self.tiles.iter().map(|t| t.active_slots).sum();
        f64::from(active) / (self.tiles.len() as f64 * f64::from(self.entries))
    }
}

/// Derives the configuration image of a mapping.
///
/// # Errors
///
/// Returns an error message if the mapping's II exceeds the architecture's
/// configuration-memory depth.
pub fn generate_config(
    dfg: &Dfg,
    arch: &Architecture,
    mapping: &Mapping,
) -> Result<ConfigImage, String> {
    if mapping.ii > arch.params().config_entries {
        return Err(format!(
            "mapping II {} exceeds configuration memory depth {}",
            mapping.ii,
            arch.params().config_entries
        ));
    }
    let tile_count = arch.params().tile_count() as usize;
    let mut ops = vec![0u32; tile_count];
    let mut occupancy = vec![0u32; tile_count];
    let mut active: Vec<HashMap<u32, ()>> = vec![HashMap::new(); tile_count];
    for (node, placement) in &mapping.placements {
        let tile = arch.resource(placement.fu).tile;
        ops[tile] += 1;
        active[tile].insert(placement.cycle % mapping.ii, ());
        let _ = dfg.node(*node);
    }
    for route in mapping.routes.values() {
        for hop in &route.hops {
            let tile = arch.resource(hop.resource).tile;
            occupancy[tile] += 1;
            active[tile].insert(hop.cycle % mapping.ii, ());
        }
    }
    let tiles = (0..tile_count)
        .map(|tile| TileConfig {
            tile,
            active_slots: active[tile].len() as u32,
            operations: ops[tile],
            route_occupancy: occupancy[tile],
        })
        .collect();
    Ok(ConfigImage {
        tiles,
        entries: mapping.ii,
        bits_per_entry: arch.params().config.total_bits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};
    use plaid_dfg::kernel::{AffineExpr, Expr, KernelBuilder};
    use plaid_dfg::lower::{lower_kernel, LoweringOptions};
    use plaid_dfg::Op;
    use plaid_mapper::{Mapper, SaMapper};

    fn mapped_example(arch: &Architecture) -> (Dfg, Mapping) {
        let kernel = KernelBuilder::new("axpy")
            .loop_var("i", 8)
            .array("x", 8)
            .array("y", 8)
            .store(
                "y",
                AffineExpr::var(0),
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::load("x", AffineExpr::var(0)), Expr::Const(3)),
                    Expr::load("y", AffineExpr::var(0)),
                ),
            )
            .build()
            .unwrap();
        let dfg = lower_kernel(&kernel, &LoweringOptions::default()).unwrap();
        let mapping = SaMapper::default().map(&dfg, arch).unwrap();
        (dfg, mapping)
    }

    #[test]
    fn config_image_counts_operations() {
        let arch = spatio_temporal::build(4, 4);
        let (dfg, mapping) = mapped_example(&arch);
        let image = generate_config(&dfg, &arch, &mapping).unwrap();
        let total_ops: u32 = image.tiles.iter().map(|t| t.operations).sum();
        assert_eq!(total_ops as usize, dfg.node_count());
        assert_eq!(image.entries, mapping.ii);
        assert_eq!(image.bits_per_entry, 44);
        assert!(image.entry_utilization() > 0.0);
        assert!(image.entry_utilization() <= 1.0);
    }

    #[test]
    fn plaid_config_entry_is_120_bits() {
        let arch = plaid::build(2, 2);
        let (dfg, mapping) = mapped_example(&arch);
        let image = generate_config(&dfg, &arch, &mapping).unwrap();
        assert_eq!(image.bits_per_entry, 120);
        assert_eq!(image.tiles.len(), 4);
        assert_eq!(image.total_bits(), u64::from(mapping.ii) * 120 * 4);
    }

    #[test]
    fn excessive_ii_is_rejected() {
        let arch = spatio_temporal::build(4, 4);
        let (dfg, mut mapping) = mapped_example(&arch);
        mapping.ii = arch.params().config_entries + 1;
        assert!(generate_config(&dfg, &arch, &mapping).is_err());
    }
}
