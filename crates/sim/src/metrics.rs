//! Combined evaluation metrics used by every experiment.

use plaid_arch::Architecture;
use serde::{Deserialize, Serialize};

use crate::cost::{CostModel, CLOCK_HZ};

/// Evaluation record for one (kernel, architecture) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalMetrics {
    /// Kernel name.
    pub kernel: String,
    /// Architecture name.
    pub arch: String,
    /// Mapper that produced the schedule.
    pub mapper: String,
    /// Initiation interval achieved (0 for spatial schedules, which report
    /// per-partition IIs instead).
    pub ii: u32,
    /// Total execution cycles.
    pub cycles: u64,
    /// Fabric power in µW.
    pub power_uw: f64,
    /// Fabric energy in nJ.
    pub energy_nj: f64,
    /// Fabric area in µm².
    pub area_um2: f64,
}

impl EvalMetrics {
    /// Builds a metrics record from cycles and the cost model.
    pub fn from_cycles(
        kernel: impl Into<String>,
        mapper: impl Into<String>,
        arch: &Architecture,
        model: &CostModel,
        ii: u32,
        cycles: u64,
    ) -> Self {
        let power_uw = model.fabric_power(arch).total();
        EvalMetrics {
            kernel: kernel.into(),
            arch: arch.name().to_string(),
            mapper: mapper.into(),
            ii,
            cycles,
            power_uw,
            energy_nj: model.energy_nj(arch, cycles),
            area_um2: model.fabric_area(arch).total(),
        }
    }

    /// Execution time in microseconds at the modelled clock.
    pub fn runtime_us(&self) -> f64 {
        self.cycles as f64 / CLOCK_HZ * 1.0e6
    }

    /// Performance (1/cycles) per unit area, scaled for readability.
    pub fn perf_per_area(&self) -> f64 {
        if self.cycles == 0 || self.area_um2 == 0.0 {
            return 0.0;
        }
        1.0e9 / (self.cycles as f64 * self.area_um2)
    }

    /// Ratio of this record's cycles to a baseline's (>1 means slower).
    pub fn normalized_cycles(&self, baseline: &EvalMetrics) -> f64 {
        self.cycles as f64 / baseline.cycles as f64
    }

    /// Ratio of this record's energy to a baseline's (<1 means more
    /// efficient).
    pub fn normalized_energy(&self, baseline: &EvalMetrics) -> f64 {
        self.energy_nj / baseline.energy_nj
    }

    /// Ratio of this record's performance-per-area to a baseline's.
    pub fn normalized_perf_per_area(&self, baseline: &EvalMetrics) -> f64 {
        self.perf_per_area() / baseline.perf_per_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plaid_arch::{plaid, spatio_temporal};

    #[test]
    fn metrics_derive_from_cost_model() {
        let model = CostModel::default();
        let st = spatio_temporal::build(4, 4);
        let pl = plaid::build(2, 2);
        let a = EvalMetrics::from_cycles("k", "sa", &st, &model, 3, 3000);
        let b = EvalMetrics::from_cycles("k", "plaid", &pl, &model, 3, 3000);
        assert!(a.power_uw > b.power_uw);
        assert!(a.energy_nj > b.energy_nj);
        assert!(b.perf_per_area() > a.perf_per_area());
        assert!(a.runtime_us() > 0.0);
        assert!((b.normalized_cycles(&a) - 1.0).abs() < 1e-12);
        assert!(b.normalized_energy(&a) < 1.0);
        assert!(b.normalized_perf_per_area(&a) > 1.0);
    }

    #[test]
    fn zero_cycles_edge_cases() {
        let model = CostModel::default();
        let st = spatio_temporal::build(4, 4);
        let m = EvalMetrics::from_cycles("k", "sa", &st, &model, 1, 0);
        assert_eq!(m.perf_per_area(), 0.0);
        assert_eq!(m.energy_nj, 0.0);
    }
}
