//! Figure 17: scalability — 3×3 Plaid versus 2×2 Plaid.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid::pipeline::{compile_workload, ArchChoice, MapperChoice};
use plaid_bench::{bench_scope, measurement_workload};

fn bench(c: &mut Criterion) {
    let (_rows, text) = experiments::scalability(bench_scope());
    println!("{text}");

    let mut group = c.benchmark_group("fig17_scalability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    let w = measurement_workload();
    group.bench_function("compile_dwconv_on_plaid_3x3", |b| {
        b.iter(|| compile_workload(&w, ArchChoice::Plaid3x3, MapperChoice::Plaid).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
