//! Figure 12: per-kernel cycles on the spatio-temporal baseline, the spatial
//! baseline and Plaid, normalized to the spatio-temporal CGRA.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid::pipeline::{compile_workload, ArchChoice, MapperChoice};
use plaid_bench::{bench_scope, measurement_workload};

fn bench(c: &mut Criterion) {
    let result = experiments::architecture_comparison(bench_scope());
    println!("{}", result.render_performance());
    println!(
        "geomean: plaid/spatio-temporal = {:.2}x cycles, spatial/plaid = {:.2}x cycles (paper: ~1.0x and ~1.4x)\n",
        result.plaid_vs_st_cycles(),
        result.spatial_vs_plaid_cycles()
    );

    let mut group = c.benchmark_group("fig12_performance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    let w = measurement_workload();
    group.bench_function("compile_dwconv_on_plaid", |b| {
        b.iter(|| compile_workload(&w, ArchChoice::Plaid2x2, MapperChoice::Plaid).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
