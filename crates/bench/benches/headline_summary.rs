//! Section 7 headline numbers: power, area, performance and energy of Plaid
//! versus both baselines, measured against the paper-reported values.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid_bench::{bench_scope, measurement_workload};
use plaid_motif::{identify_motifs, IdentifyOptions};

fn bench(c: &mut Criterion) {
    println!("{}", experiments::headline_summary(bench_scope()));

    let mut group = c.benchmark_group("headline_summary");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    let dfg = measurement_workload().lower().unwrap();
    group.bench_function("motif_identification", |b| {
        b.iter(|| identify_motifs(&dfg, &IdentifyOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
