//! Figure 18: mapper ablation on the Plaid architecture — PathFinder and
//! simulated annealing versus the motif-aware Plaid mapper.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid::report::geomean;
use plaid_bench::bench_scope;
use plaid_mapper::{Mapper, PlaidMapper, SaMapper};

fn bench(c: &mut Criterion) {
    let (rows, text) = experiments::mapper_comparison(bench_scope());
    println!("{text}");
    let pf = geomean(
        rows.iter()
            .map(|r| r.pathfinder_cycles as f64 / r.plaid_cycles as f64),
    );
    let sa = geomean(
        rows.iter()
            .map(|r| r.sa_cycles as f64 / r.plaid_cycles as f64),
    );
    println!("geomean slowdown vs Plaid mapper: PathFinder {pf:.2}x, SA {sa:.2}x (paper: 1.25x and 1.28x)\n");

    let mut group = c.benchmark_group("fig18_mappers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    let dfg = plaid_bench::measurement_workload().lower().unwrap();
    let arch = plaid_arch::plaid::build(2, 2);
    group.bench_function("plaid_mapper_dwconv", |b| {
        b.iter(|| PlaidMapper::default().map(&dfg, &arch).unwrap())
    });
    group.bench_function("sa_mapper_dwconv", |b| {
        b.iter(|| SaMapper::default().map(&dfg, &arch).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
