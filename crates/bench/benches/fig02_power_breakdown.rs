//! Figure 2: fabric power distribution of the spatio-temporal baseline and
//! Plaid, plus the headline power reduction.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid_arch::plaid as plaid_fabric;
use plaid_arch::spatio_temporal;
use plaid_sim::cost::CostModel;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::power_breakdown());

    let mut group = c.benchmark_group("fig02_power_breakdown");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    let st = spatio_temporal::build(4, 4);
    let pl = plaid_fabric::build(2, 2);
    let model = CostModel::default();
    group.bench_function("power_model_st_and_plaid", |b| {
        b.iter(|| {
            let a = model.fabric_power(&st).total();
            let b_ = model.fabric_power(&pl).total();
            (a, b_)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
