//! Figure 19: domain specialization — ST, ST-ML, Plaid and Plaid-ML on the
//! machine-learning kernels.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid_arch::specialize;
use plaid_sim::cost::CostModel;

fn bench(c: &mut Criterion) {
    let (_rows, text) = experiments::domain_specialization();
    println!("{text}");

    let mut group = c.benchmark_group("fig19_domain_specialization");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    let model = CostModel::default();
    group.bench_function("build_and_cost_plaid_ml", |b| {
        b.iter(|| {
            let arch = specialize::plaid_ml_2x2();
            model.fabric_power(&arch).total()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
