//! Table 2: workload characteristics (nodes, compute nodes, motif-covered
//! nodes) for the evaluated DFGs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments::{self, ExperimentScope};
use plaid_motif::{identify_motifs, IdentifyOptions};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::table2_characteristics(ExperimentScope::FULL)
    );

    let mut group = c.benchmark_group("table02_workloads");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    let dfg = plaid_bench::measurement_workload().lower().unwrap();
    group.bench_function("motif_identification_dwconv", |b| {
        b.iter(|| identify_motifs(&dfg, &IdentifyOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
