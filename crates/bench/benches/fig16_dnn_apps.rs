//! Figure 16: application-level comparison (energy and performance per area)
//! of the spatial baseline and Plaid on three DNN applications.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid_workloads::dnn_applications;

fn bench(c: &mut Criterion) {
    let (_rows, text) = experiments::dnn_comparison();
    println!("{text}");

    let mut group = c.benchmark_group("fig16_dnn_apps");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function("enumerate_dnn_layers", |b| {
        b.iter(|| {
            dnn_applications()
                .iter()
                .map(|a| a.layer_count())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
