//! Throughput of the incremental mapper kernel: annealing moves per second
//! (journalled rip-up / re-place / re-route transactions) and router
//! searches per second, on a 4×4 and an 8×8 fabric.
//!
//! The headline pass measures both rates directly and writes them to
//! `BENCH_mapper.json` at the workspace root, so the kernel's performance
//! trajectory is machine-readable across PRs; the Criterion loops then track
//! the same operations interactively.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use plaid_arch::{spatio_temporal, Architecture};
use plaid_dfg::{Dfg, NodeId};
use plaid_mapper::placement::{greedy_place, MapState};
use plaid_mapper::route::{find_route_in, HardCapacityCost, RouteRequest, RouterScratch};
use plaid_workloads::find_workload;

const II: u32 = 4;

fn bench_dfg() -> Dfg {
    find_workload("dwconv")
        .expect("dwconv is registered")
        .lower()
        .expect("dwconv lowers")
}

/// A placed state to perturb; greedy placement may be partial on the small
/// fabric, which only makes the move mix more realistic.
fn placed_state<'a>(dfg: &'a Dfg, arch: &'a Architecture) -> MapState<'a> {
    let mut state = MapState::new(dfg, arch, II);
    let _ = greedy_place(&mut state, &HardCapacityCost);
    state
}

/// One SA-style move transaction: rip up one node, re-place it on the first
/// admitting candidate, re-route its incident edges, then roll back or
/// commit. Mirrors the `SaMapper` inner loop on the public kernel API.
fn one_move(state: &mut MapState<'_>, step: &mut u64) {
    let policy = HardCapacityCost;
    *step = step.wrapping_mul(6364136223846793005).wrapping_add(1);
    let node = NodeId((*step >> 33) as u32 % state.dfg.node_count() as u32);
    state.begin_txn();
    state.unplace(node);
    let candidates = state.candidate_fus(node);
    let base = state.earliest_cycle(node);
    let mut placed = false;
    for (i, &fu) in candidates.iter().enumerate().take(6) {
        let cycle = base + (*step >> 17) as u32 % II + i as u32 % II;
        if state.can_place(node, fu, cycle) {
            state.place(node, fu, cycle);
            placed = true;
            break;
        }
    }
    if placed {
        let adj = Arc::clone(state.adjacency());
        for &e in adj.incident(node) {
            let _ = state.route_edge(e, &policy);
        }
    }
    if step.is_multiple_of(2) && placed {
        state.commit_txn();
    } else {
        state.rollback_txn();
    }
}

/// One router search through the shared scratch, cycling over FU pairs and
/// budgets; returns whether a route was found (both outcomes are the hot
/// path in real mapping).
fn one_route(
    scratch: &mut RouterScratch,
    arch: &Architecture,
    state: &MapState<'_>,
    fus: &[plaid_arch::ResourceId],
    step: &mut u64,
) -> bool {
    *step = step.wrapping_mul(6364136223846793005).wrapping_add(1);
    let src = fus[(*step >> 33) as usize % fus.len()];
    let dst = fus[(*step >> 21) as usize % fus.len()];
    let src_cycle = (*step >> 11) as u32 % II;
    let budget = 1 + (*step >> 42) as u32 % (2 * II);
    let request = RouteRequest {
        src_fu: src,
        src_cycle,
        dst_fu: dst,
        arrival_cycle: src_cycle + budget,
        value: NodeId((*step >> 7) as u32 % state.dfg.node_count() as u32),
    };
    find_route_in(scratch, arch, &state.state, &request, &HardCapacityCost).is_some()
}

fn measure_rate(mut op: impl FnMut(), budget: Duration) -> f64 {
    // Warm up allocations and caches.
    for _ in 0..64 {
        op();
    }
    let start = Instant::now();
    let mut iterations = 0u64;
    while start.elapsed() < budget {
        for _ in 0..256 {
            op();
        }
        iterations += 256;
    }
    iterations as f64 / start.elapsed().as_secs_f64()
}

fn headline() {
    let dfg = bench_dfg();
    let mut report = Vec::new();
    for (label, arch) in [
        ("st4x4", spatio_temporal::build(4, 4)),
        ("st8x8", spatio_temporal::build(8, 8)),
    ] {
        let mut state = placed_state(&dfg, &arch);
        let mut step = 0x5EED_u64;
        let moves_per_sec = measure_rate(
            || one_move(&mut state, &mut step),
            Duration::from_millis(400),
        );

        let route_state = placed_state(&dfg, &arch);
        let fus: Vec<_> = arch.functional_units().map(|r| r.id).collect();
        let mut scratch = RouterScratch::new();
        let mut step = 0x00DD_5EED_u64;
        let routes_per_sec = measure_rate(
            || {
                black_box(one_route(
                    &mut scratch,
                    &arch,
                    &route_state,
                    &fus,
                    &mut step,
                ));
            },
            Duration::from_millis(400),
        );

        println!(
            "mapper_kernel headline [{label}]: {moves_per_sec:.0} moves/s, \
             {routes_per_sec:.0} routes/s"
        );
        report.push((label, moves_per_sec, routes_per_sec));
    }

    // Machine-readable baseline at the workspace root.
    let fabrics: Vec<String> = report
        .iter()
        .map(|(label, m, r)| {
            format!(
                "    \"{label}\": {{ \"moves_per_sec\": {:.0}, \"routes_per_sec\": {:.0} }}",
                m, r
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"mapper_kernel\",\n  \"workload\": \"dwconv\",\n  \"ii\": {II},\n  \
         \"fabrics\": {{\n{}\n  }}\n}}\n",
        fabrics.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mapper.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    headline();

    let dfg = bench_dfg();
    let mut group = c.benchmark_group("mapper_kernel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for (label, arch) in [
        ("st4x4", spatio_temporal::build(4, 4)),
        ("st8x8", spatio_temporal::build(8, 8)),
    ] {
        let mut state = placed_state(&dfg, &arch);
        let mut step = 0x5EED_u64;
        group.bench_function(&format!("moves/{label}"), |b| {
            b.iter(|| one_move(&mut state, &mut step))
        });

        let route_state = placed_state(&dfg, &arch);
        let fus: Vec<_> = arch.functional_units().map(|r| r.id).collect();
        let mut scratch = RouterScratch::new();
        let mut step = 0x00DD_5EED_u64;
        group.bench_function(&format!("routes/{label}"), |b| {
            b.iter(|| {
                black_box(one_route(
                    &mut scratch,
                    &arch,
                    &route_state,
                    &fus,
                    &mut step,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
