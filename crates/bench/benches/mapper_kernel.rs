//! Throughput of the incremental mapper kernel: annealing moves per second
//! (journalled rip-up / re-place / re-route transactions) and router
//! searches per second, on a 4×4 and an 8×8 fabric.
//!
//! The measured operations live in [`plaid_bench::kernel`], shared with the
//! `plaid-bench` regression-gate binary so the gate compares exactly what
//! this bench tracks. The headline pass prints both rates directly; the
//! Criterion loops then track the same operations interactively.
//!
//! The committed `BENCH_mapper.json` at the workspace root is the CI
//! gate's *baseline*, so this bench deliberately does **not** rewrite it
//! as a side effect (a dirtied baseline committed by accident would re-pin
//! the gate to whatever machine last ran `cargo bench`). Re-pin explicitly
//! with `plaid-bench --update`.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use plaid_arch::spatio_temporal;
use plaid_bench::kernel::{bench_dfg, measure_kernel, one_move, one_route, placed_state};
use plaid_mapper::route::RouterScratch;

fn headline() {
    let report = measure_kernel(Duration::from_millis(400));
    for (label, rates) in &report.fabrics {
        println!(
            "mapper_kernel headline [{label}]: {:.0} moves/s, {:.0} routes/s",
            rates.moves_per_sec, rates.routes_per_sec
        );
    }
    println!(
        "(baseline BENCH_mapper.json is gated in CI and not auto-rewritten; \
         re-pin with `plaid-bench --update`)"
    );
}

fn bench(c: &mut Criterion) {
    headline();

    let dfg = bench_dfg();
    let mut group = c.benchmark_group("mapper_kernel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for (label, arch) in [
        ("st4x4", spatio_temporal::build(4, 4)),
        ("st8x8", spatio_temporal::build(8, 8)),
    ] {
        let mut state = placed_state(&dfg, &arch);
        let mut step = 0x5EED_u64;
        group.bench_function(&format!("moves/{label}"), |b| {
            b.iter(|| one_move(&mut state, &mut step))
        });

        let route_state = placed_state(&dfg, &arch);
        let fus: Vec<_> = arch.functional_units().map(|r| r.id).collect();
        let mut scratch = RouterScratch::new();
        let mut step = 0x00DD_5EED_u64;
        group.bench_function(&format!("routes/{label}"), |b| {
            b.iter(|| {
                black_box(one_route(
                    &mut scratch,
                    &arch,
                    &route_state,
                    &fus,
                    &mut step,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
