//! Sweep throughput of the design-space exploration engine: cold evaluation
//! through the full pipeline versus warm (content-addressed cache) lookups.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid_arch::SpaceSpec;
use plaid_explore::{
    run_sweep, run_sweep_with, FrontierReport, ResultCache, SeedPolicy, SweepPlan,
};
use plaid_workloads::find_workload;

fn bench(c: &mut Criterion) {
    let workloads = vec![
        find_workload("dwconv").expect("registry workload"),
        find_workload("atax_u2").expect("registry workload"),
    ];
    let plan = SweepPlan::cross(&workloads, &SpaceSpec::smoke_grid());

    // Print the sweep summary once, like the figure benches print their rows.
    let cache = ResultCache::new();
    let outcome = run_sweep(&plan, &cache);
    let frontier = FrontierReport::from_records(&outcome.records);
    println!(
        "dse sweep: {} points, {} compiled, {} infeasible, frontier {} points\n",
        outcome.stats.points,
        outcome.stats.compiled,
        outcome.stats.failures,
        frontier.frontier_size()
    );

    let mut group = c.benchmark_group("dse_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function("cold_sweep_smoke_grid", |b| {
        // Pinned to SeedPolicy::Off so this keeps measuring the from-scratch
        // sweep; the seeded_sweep bench covers the warm-start path.
        b.iter(|| {
            let cold = ResultCache::new();
            run_sweep_with(&plan, &cold, SeedPolicy::Off)
        })
    });
    group.bench_function("warm_sweep_smoke_grid", |b| {
        b.iter(|| run_sweep(&plan, &cache))
    });
    group.bench_function("frontier_extraction", |b| {
        b.iter(|| FrontierReport::from_records(&outcome.records))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
