//! Figure 14: per-kernel fabric energy, normalized to the spatio-temporal
//! baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid_arch::plaid as plaid_fabric;
use plaid_sim::cost::CostModel;

fn bench(c: &mut Criterion) {
    let result = experiments::architecture_comparison(plaid_bench::bench_scope());
    println!("{}", result.render_energy());
    println!(
        "geomean energy: plaid/spatio-temporal = {:.2}, plaid/spatial = {:.2} (paper: 0.58 and 0.72)\n",
        result.plaid_vs_st_energy(),
        result.plaid_vs_spatial_energy()
    );

    let mut group = c.benchmark_group("fig14_energy");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    let model = CostModel::default();
    let arch = plaid_fabric::build(2, 2);
    group.bench_function("energy_model_plaid_2x2", |b| {
        b.iter(|| model.energy_nj(&arch, 100_000))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
