//! Figure 13: area breakdown of the Plaid CGRA fabric.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid_arch::plaid as plaid_fabric;
use plaid_sim::cost::CostModel;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::area_breakdown());

    let mut group = c.benchmark_group("fig13_area_breakdown");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    let model = CostModel::default();
    let arch = plaid_fabric::build(2, 2);
    group.bench_function("area_model_plaid_2x2", |b| {
        b.iter(|| model.fabric_area(&arch).total())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
