//! Figure 15: per-kernel performance per area, normalized to the
//! spatio-temporal baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use plaid::experiments;
use plaid::pipeline::{compile_workload, ArchChoice, MapperChoice};
use plaid_bench::{bench_scope, measurement_workload};

fn bench(c: &mut Criterion) {
    let result = experiments::architecture_comparison(bench_scope());
    println!("{}", result.render_perf_per_area());

    let mut group = c.benchmark_group("fig15_perf_per_area");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    let w = measurement_workload();
    group.bench_function("compile_dwconv_on_spatio_temporal", |b| {
        b.iter(|| compile_workload(&w, ArchChoice::SpatioTemporal4x4, MapperChoice::Sa).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
