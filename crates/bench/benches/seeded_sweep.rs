//! Warm-start sweep throughput: the frontier-guided seeding layer versus a
//! cold sweep that maps every provisioning point from scratch.
//!
//! The headline run reproduces the acceptance measurement once per
//! invocation — the default 216-point sweep (rep8 workloads × default grid)
//! under `SeedPolicy::Off` and `SeedPolicy::Exact` — and prints the
//! wall-clock reduction together with a bit-identity check of the two
//! frontier reports (exact seeding must not change results). The iterated
//! benchmarks then time the two policies on the smoke grid.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use plaid_arch::SpaceSpec;
use plaid_explore::{run_sweep_with, FrontierReport, ResultCache, SeedPolicy, SweepPlan};
use plaid_workloads::{find_workload, table2_workloads};

fn headline(plan: &SweepPlan) {
    let start = Instant::now();
    let cold = run_sweep_with(plan, &ResultCache::new(), SeedPolicy::Off);
    let cold_ms = start.elapsed().as_millis();

    let start = Instant::now();
    let seeded = run_sweep_with(plan, &ResultCache::new(), SeedPolicy::Exact);
    let seeded_ms = start.elapsed().as_millis();

    let cold_frontier = serde_json::to_string(&FrontierReport::from_records(&cold.records))
        .expect("frontier serializes");
    let seeded_frontier = serde_json::to_string(&FrontierReport::from_records(&seeded.records))
        .expect("frontier serializes");
    assert_eq!(
        cold_frontier, seeded_frontier,
        "exact seeding must preserve the frontier bit-for-bit"
    );

    let reduction = 100.0 * (1.0 - seeded_ms as f64 / cold_ms.max(1) as f64);
    println!(
        "seeded sweep headline: {} points — cold {} ms, seeded {} ms ({reduction:.1}% \
         wall-clock reduction), {} seeded points, {} seed hits, frontiers bit-identical\n",
        plan.len(),
        cold_ms,
        seeded_ms,
        seeded.stats.seeded,
        seeded.stats.seed_hits,
    );
}

fn bench(c: &mut Criterion) {
    // The acceptance-criterion sweep: every 8th registry workload crossed
    // with the default provisioning grid (216 points), as `plaid-dse` runs
    // by default. Once per invocation — it costs tens of seconds.
    let rep8: Vec<_> = table2_workloads().into_iter().step_by(8).collect();
    let default_plan = SweepPlan::cross(&rep8, &SpaceSpec::default_grid());
    headline(&default_plan);

    let workloads = vec![
        find_workload("dwconv").expect("registry workload"),
        find_workload("atax_u2").expect("registry workload"),
    ];
    let smoke_plan = SweepPlan::cross(&workloads, &SpaceSpec::smoke_grid());

    let mut group = c.benchmark_group("seeded_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function("cold_smoke_grid", |b| {
        b.iter(|| run_sweep_with(&smoke_plan, &ResultCache::new(), SeedPolicy::Off))
    });
    group.bench_function("seeded_smoke_grid", |b| {
        b.iter(|| run_sweep_with(&smoke_plan, &ResultCache::new(), SeedPolicy::Exact))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
