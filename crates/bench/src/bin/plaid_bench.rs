//! `plaid-bench` — the mapper-kernel performance regression gate.
//!
//! Re-measures the incremental mapper kernel's throughput (SA move
//! transactions/sec and router searches/sec on the standard 4×4 and 8×8
//! fabrics) and compares it against the committed `BENCH_mapper.json`
//! baseline, failing when any rate drops by more than the tolerance
//! (default 25% — generous enough to absorb shared-runner noise in CI,
//! tight enough to catch a real kernel regression; the CI workflow
//! documents the same number).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use plaid_bench::kernel::{measure_kernel, KernelReport};

const USAGE: &str = "\
plaid-bench — mapper-kernel throughput regression gate

USAGE:
    plaid-bench [OPTIONS]

Measures mapper-kernel throughput (moves/sec, routes/sec on st4x4 and
st8x8) and compares it against the committed baseline, exiting non-zero
when any rate regresses past the tolerance.

OPTIONS:
    --baseline <FILE>   Baseline JSON to gate against, resolved relative to
                        the invocation directory [default: the workspace
                        root's BENCH_mapper.json — the same file the
                        mapper_kernel bench headline writes, so default
                        gate and default re-pin always agree]
    --tolerance <FRAC>  Allowed fractional drop per rate before failing
                        [default: 0.25 — i.e. fail below 75% of baseline]
    --budget-ms <N>     Measurement budget per rate in milliseconds
                        [default: 400, matching the bench headline]
    --update            Measure and overwrite the baseline instead of
                        gating (use to re-pin after an intentional change)
    -h, --help          Show this help
";

struct Options {
    baseline: PathBuf,
    tolerance: f64,
    budget: Duration,
    update: bool,
}

fn parse_args() -> Result<Option<Options>, String> {
    // Default to the workspace-root baseline the mapper_kernel bench
    // headline writes (anchored at compile time, like the bench itself),
    // so running from a subdirectory cannot silently gate against — or
    // `--update` into — a shadow file in the wrong directory.
    let mut options = Options {
        baseline: PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_mapper.json"
        )),
        tolerance: 0.25,
        budget: Duration::from_millis(400),
        update: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--baseline" => options.baseline = PathBuf::from(value("--baseline")?),
            "--tolerance" => {
                options.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "bad --tolerance value".to_string())?;
                if !(0.0..1.0).contains(&options.tolerance) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
            }
            "--budget-ms" => {
                let ms: u64 = value("--budget-ms")?
                    .parse()
                    .map_err(|_| "bad --budget-ms value".to_string())?;
                if ms == 0 {
                    return Err("--budget-ms must be positive".into());
                }
                options.budget = Duration::from_millis(ms);
            }
            "--update" => options.update = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    Ok(Some(options))
}

/// The baseline's `(fabric, metric) -> rate` entries, from the
/// `BENCH_mapper.json` layout.
fn load_baseline(path: &Path) -> Result<Vec<(String, String, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let value: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))?;
    let fabrics = value
        .as_object()
        .and_then(|o| o.get("fabrics"))
        .and_then(|f| f.as_object())
        .ok_or_else(|| format!("baseline {} has no `fabrics` object", path.display()))?;
    let mut entries = Vec::new();
    for (fabric, rates) in fabrics {
        let rates = rates
            .as_object()
            .ok_or_else(|| format!("baseline fabric `{fabric}` is not an object"))?;
        for metric in ["moves_per_sec", "routes_per_sec"] {
            let rate = rates
                .get(metric)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline fabric `{fabric}` is missing `{metric}`"))?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(format!(
                    "baseline `{fabric}.{metric}` is not a positive rate: {rate}"
                ));
            }
            entries.push((fabric.clone(), metric.to_string(), rate));
        }
    }
    if entries.is_empty() {
        return Err(format!("baseline {} lists no fabrics", path.display()));
    }
    Ok(entries)
}

fn fresh_rate(report: &KernelReport, fabric: &str, metric: &str) -> Option<f64> {
    let (_, rates) = report.fabrics.iter().find(|(label, _)| *label == fabric)?;
    match metric {
        "moves_per_sec" => Some(rates.moves_per_sec),
        "routes_per_sec" => Some(rates.routes_per_sec),
        _ => None,
    }
}

fn run(options: &Options) -> Result<(), String> {
    eprintln!(
        "measuring mapper kernel ({} ms per rate)...",
        options.budget.as_millis()
    );
    let report = measure_kernel(options.budget);

    if options.update {
        std::fs::write(&options.baseline, report.to_json())
            .map_err(|e| format!("cannot write baseline {}: {e}", options.baseline.display()))?;
        println!("updated baseline {}", options.baseline.display());
        return Ok(());
    }

    let baseline = load_baseline(&options.baseline)?;
    let floor_frac = 1.0 - options.tolerance;
    let mut regressions = 0usize;
    println!(
        "{:<8} {:>16} {:>12} {:>12} {:>8}  gate (>= {:.0}% of baseline)",
        "fabric",
        "metric",
        "baseline",
        "fresh",
        "ratio",
        floor_frac * 100.0
    );
    for (fabric, metric, base) in &baseline {
        let fresh = fresh_rate(&report, fabric, metric).ok_or_else(|| {
            format!("fresh measurement has no `{fabric}.{metric}` (fabric set changed?)")
        })?;
        let ratio = fresh / base;
        let ok = ratio >= floor_frac;
        if !ok {
            regressions += 1;
        }
        println!(
            "{fabric:<8} {metric:>16} {base:>12.0} {fresh:>12.0} {ratio:>7.2}x  {}",
            if ok { "ok" } else { "REGRESSED" }
        );
    }
    if regressions > 0 {
        return Err(format!(
            "{regressions} rate(s) regressed more than {:.0}% below {} — \
             if intentional, re-pin with `plaid-bench --update`",
            options.tolerance * 100.0,
            options.baseline.display()
        ));
    }
    println!(
        "mapper kernel within {:.0}% of baseline",
        options.tolerance * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(options)) => match run(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("plaid-bench: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("plaid-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
