//! The mapper-kernel throughput measurement shared by the `mapper_kernel`
//! Criterion bench and the `plaid-bench` regression-gate binary.
//!
//! Both consumers need the *same* operations measured the same way — an
//! SA-style journalled move transaction and a scratch-backed router search
//! on a 4×4 and an 8×8 spatio-temporal fabric — so the definitions live
//! here: the bench tracks them interactively, the gate compares a fresh
//! run against the committed `BENCH_mapper.json` baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use plaid_arch::{spatio_temporal, Architecture};
use plaid_dfg::{Dfg, NodeId};
use plaid_mapper::placement::{greedy_place, MapState};
use plaid_mapper::route::{find_route_in, HardCapacityCost, RouteRequest, RouterScratch};
use plaid_workloads::find_workload;

/// Initiation interval the kernel operations run at.
pub const II: u32 = 4;

/// The workload every kernel measurement maps: `dwconv`, small enough to
/// perturb quickly and structured enough to exercise routing.
pub fn bench_dfg() -> Dfg {
    find_workload("dwconv")
        .expect("dwconv is registered")
        .lower()
        .expect("dwconv lowers")
}

/// A placed state to perturb; greedy placement may be partial on the small
/// fabric, which only makes the move mix more realistic.
pub fn placed_state<'a>(dfg: &'a Dfg, arch: &'a Architecture) -> MapState<'a> {
    let mut state = MapState::new(dfg, arch, II);
    let _ = greedy_place(&mut state, &HardCapacityCost);
    state
}

/// One SA-style move transaction: rip up one node, re-place it on the first
/// admitting candidate, re-route its incident edges, then roll back or
/// commit. Mirrors the `SaMapper` inner loop on the public kernel API.
pub fn one_move(state: &mut MapState<'_>, step: &mut u64) {
    let policy = HardCapacityCost;
    *step = step.wrapping_mul(6364136223846793005).wrapping_add(1);
    let node = NodeId((*step >> 33) as u32 % state.dfg.node_count() as u32);
    state.begin_txn();
    state.unplace(node);
    let candidates = state.candidate_fus(node);
    let base = state.earliest_cycle(node);
    let mut placed = false;
    for (i, &fu) in candidates.iter().enumerate().take(6) {
        let cycle = base + (*step >> 17) as u32 % II + i as u32 % II;
        if state.can_place(node, fu, cycle) {
            state.place(node, fu, cycle);
            placed = true;
            break;
        }
    }
    if placed {
        let adj = Arc::clone(state.adjacency());
        for &e in adj.incident(node) {
            let _ = state.route_edge(e, &policy);
        }
    }
    if step.is_multiple_of(2) && placed {
        state.commit_txn();
    } else {
        state.rollback_txn();
    }
}

/// One router search through the shared scratch, cycling over FU pairs and
/// budgets; returns whether a route was found (both outcomes are the hot
/// path in real mapping).
pub fn one_route(
    scratch: &mut RouterScratch,
    arch: &Architecture,
    state: &MapState<'_>,
    fus: &[plaid_arch::ResourceId],
    step: &mut u64,
) -> bool {
    *step = step.wrapping_mul(6364136223846793005).wrapping_add(1);
    let src = fus[(*step >> 33) as usize % fus.len()];
    let dst = fus[(*step >> 21) as usize % fus.len()];
    let src_cycle = (*step >> 11) as u32 % II;
    let budget = 1 + (*step >> 42) as u32 % (2 * II);
    let request = RouteRequest {
        src_fu: src,
        src_cycle,
        dst_fu: dst,
        arrival_cycle: src_cycle + budget,
        value: NodeId((*step >> 7) as u32 % state.dfg.node_count() as u32),
    };
    find_route_in(scratch, arch, &state.state, &request, &HardCapacityCost).is_some()
}

/// Runs `op` in batches for roughly `budget`, returning operations/second
/// (after a short warm-up for allocations and caches).
pub fn measure_rate(mut op: impl FnMut(), budget: Duration) -> f64 {
    for _ in 0..64 {
        op();
    }
    let start = Instant::now();
    let mut iterations = 0u64;
    while start.elapsed() < budget {
        for _ in 0..256 {
            op();
        }
        iterations += 256;
    }
    iterations as f64 / start.elapsed().as_secs_f64()
}

/// Measured kernel throughput on one fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRates {
    /// Journalled SA move transactions per second.
    pub moves_per_sec: f64,
    /// Router searches per second.
    pub routes_per_sec: f64,
}

/// One full kernel measurement: per-fabric throughput, in the fixed fabric
/// order (`st4x4`, then `st8x8`) the baseline file uses.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// `(fabric label, rates)` pairs.
    pub fabrics: Vec<(&'static str, KernelRates)>,
}

impl KernelReport {
    /// Serializes the report in the exact `BENCH_mapper.json` layout.
    pub fn to_json(&self) -> String {
        let fabrics: Vec<String> = self
            .fabrics
            .iter()
            .map(|(label, rates)| {
                format!(
                    "    \"{label}\": {{ \"moves_per_sec\": {:.0}, \"routes_per_sec\": {:.0} }}",
                    rates.moves_per_sec, rates.routes_per_sec
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"mapper_kernel\",\n  \"workload\": \"dwconv\",\n  \"ii\": {II},\n  \
             \"fabrics\": {{\n{}\n  }}\n}}\n",
            fabrics.join(",\n")
        )
    }
}

/// Measures mapper-kernel throughput on the standard fabrics, spending
/// `budget` of wall time per rate (the bench headline uses 400 ms).
pub fn measure_kernel(budget: Duration) -> KernelReport {
    let dfg = bench_dfg();
    let mut fabrics = Vec::new();
    for (label, arch) in [
        ("st4x4", spatio_temporal::build(4, 4)),
        ("st8x8", spatio_temporal::build(8, 8)),
    ] {
        let mut state = placed_state(&dfg, &arch);
        let mut step = 0x5EED_u64;
        let moves_per_sec = measure_rate(|| one_move(&mut state, &mut step), budget);

        let route_state = placed_state(&dfg, &arch);
        let fus: Vec<_> = arch.functional_units().map(|r| r.id).collect();
        let mut scratch = RouterScratch::new();
        let mut step = 0x00DD_5EED_u64;
        let routes_per_sec = measure_rate(
            || {
                std::hint::black_box(one_route(
                    &mut scratch,
                    &arch,
                    &route_state,
                    &fus,
                    &mut step,
                ));
            },
            budget,
        );

        fabrics.push((
            label,
            KernelRates {
                moves_per_sec,
                routes_per_sec,
            },
        ));
    }
    KernelReport { fabrics }
}
