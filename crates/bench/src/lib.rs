//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper: it runs
//! the corresponding experiment from `plaid::experiments` once, prints the
//! same rows/series the paper reports, and then registers a small Criterion
//! measurement of the dominant algorithmic step so `cargo bench` also tracks
//! compiler throughput over time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;

use plaid::experiments::ExperimentScope;

/// Scope used by the benchmark harness.
///
/// Set `PLAID_BENCH_SCOPE=full` to run all 30 workloads, `smoke` for a quick
/// check; the default is the representative 15-workload subset spanning all
/// three domains.
pub fn bench_scope() -> ExperimentScope {
    match std::env::var("PLAID_BENCH_SCOPE").as_deref() {
        Ok("full") => ExperimentScope::FULL,
        Ok("representative") => ExperimentScope::REPRESENTATIVE,
        Ok("smoke") => ExperimentScope::SMOKE,
        // Default: every third workload (10 of 30, spanning all domains) so a
        // plain `cargo bench` finishes quickly; use `full` to regenerate the
        // complete figures.
        _ => ExperimentScope {
            workload_limit: None,
            stride: 3,
        },
    }
}

/// A small, fast workload used for the Criterion measurement loops.
pub fn measurement_workload() -> plaid_workloads::Workload {
    plaid_workloads::table2_workloads()
        .into_iter()
        .find(|w| w.name == "dwconv")
        .expect("dwconv is registered")
}
