//! Compare one kernel across the three architectures the paper evaluates:
//! the high-performance spatio-temporal baseline, the energy-minimal spatial
//! baseline and Plaid.
//!
//! Run with `cargo run --example gemm_pipeline [kernel-name]`.

use plaid::pipeline::{compile_workload, ArchChoice, MapperChoice};
use plaid::report::render_table;
use plaid_workloads::find_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requested = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "gemm_u2".to_string());
    let workload = find_workload(&requested).ok_or_else(|| {
        format!("unknown workload {requested}; see plaid_workloads::table2_workloads()")
    })?;

    let configs = [
        (ArchChoice::SpatioTemporal4x4, MapperChoice::Sa),
        (ArchChoice::Spatial4x4, MapperChoice::Spatial),
        (ArchChoice::Plaid2x2, MapperChoice::Plaid),
    ];

    let mut rows = Vec::new();
    let mut baseline_cycles = None;
    for (arch, mapper) in configs {
        let result = compile_workload(&workload, arch, mapper)?;
        let cycles = result.metrics.cycles;
        let baseline = *baseline_cycles.get_or_insert(cycles);
        rows.push(vec![
            arch.label().to_string(),
            mapper.label().to_string(),
            result.metrics.ii.to_string(),
            cycles.to_string(),
            format!("{:.2}", cycles as f64 / baseline as f64),
            format!("{:.1}", result.metrics.power_uw),
            format!("{:.1}", result.metrics.energy_nj),
            format!("{:.0}", result.metrics.area_um2),
        ]);
    }

    println!(
        "{}",
        render_table(
            &format!("{} across architectures", workload.name),
            &[
                "architecture",
                "mapper",
                "II",
                "cycles",
                "norm cycles",
                "power µW",
                "energy nJ",
                "area µm²"
            ],
            &rows,
        )
    );
    Ok(())
}
