//! Reproduces the paper's aligned-versus-misaligned provisioning comparison
//! as a Pareto-frontier table, extended with the structured communication
//! axis.
//!
//! The experiment fixes the *compute* provisioning at 16 functional units —
//! a 4×4 spatio-temporal CGRA, a 4×4 spatial CGRA and a 2×2 Plaid PCU array
//! all provision exactly 16 FUs — and sweeps the *communication* provisioning
//! for each class: the legacy lean / aligned / rich mesh presets plus two
//! structured variants at aligned bandwidth (torus wraparound and stride-2
//! express links). If the paper's thesis holds, the frontier should be
//! populated by aligned points: under-provisioned networks fail to route or
//! stretch the initiation interval, over-provisioned networks pay area and
//! energy for selects they never use — and topology-enriched networks only
//! survive where their extra wiring buys cycles.
//!
//! Run with `cargo run --release --example provisioning_frontier`.

use plaid_arch::{ArchClass, BwClass, CommSpec, SpaceSpec, Topology};
use plaid_explore::{run_sweep, FrontierReport, ResultCache, SweepPlan};
use plaid_workloads::find_workload;

fn main() {
    // The communication axis: the three legacy presets plus structured
    // topology variants at the as-published bandwidth.
    let mut comm_specs = CommSpec::presets();
    comm_specs.push(CommSpec::uniform(Topology::Torus, BwClass::Base));
    comm_specs.push(CommSpec::uniform(
        Topology::Express { stride: 2 },
        BwClass::Base,
    ));

    // The three classes at matched 16-FU compute provisioning: baselines are
    // 4x4 PE arrays; Plaid packs 4 FUs per PCU, so 2x2.
    let spec = |class: ArchClass, dims: (u32, u32)| SpaceSpec {
        classes: vec![class],
        dims: vec![dims],
        config_entries: vec![16],
        comm_specs: comm_specs.clone(),
    };
    let workloads: Vec<_> = ["atax_u2", "gemm_u2", "dwconv", "fc", "jacobi_u2"]
        .iter()
        .map(|name| find_workload(name).expect("registry workload"))
        .collect();

    let mut designs = Vec::new();
    designs.extend(spec(ArchClass::SpatioTemporal, (4, 4)).enumerate());
    designs.extend(spec(ArchClass::Spatial, (4, 4)).enumerate());
    designs.extend(spec(ArchClass::Plaid, (2, 2)).enumerate());

    // Build the plan by hand (one mapper per class default) so all three
    // classes share one sweep and one cache.
    let mut plan = SweepPlan::default();
    for workload in &workloads {
        for &design in &designs {
            plan.points.push(plaid_explore::SweepPoint {
                workload: workload.clone(),
                design,
                mapper: plaid_explore::default_mapper_for_class(design.class),
            });
        }
    }

    let cache = ResultCache::new();
    let outcome = run_sweep(&plan, &cache);
    println!(
        "evaluated {} points at matched 16-FU compute provisioning ({} infeasible)\n",
        outcome.stats.points, outcome.stats.failures
    );

    let frontier = FrontierReport::from_records(&outcome.records);
    print!("{}", frontier.render());

    // Verdict: how often does each communication spec reach the frontier?
    let mut survivors = std::collections::BTreeMap::new();
    let mut feasible = std::collections::BTreeMap::new();
    for record in outcome.records.iter().filter(|r| r.ok) {
        *feasible
            .entry((record.design.class, record.design.comm))
            .or_insert(0u32) += 1;
    }
    for f in &frontier.frontiers {
        for point in &f.points {
            *survivors
                .entry((point.design.class, point.design.comm))
                .or_insert(0u32) += 1;
        }
    }
    println!("frontier appearances by (class, communication spec):");
    for (&(class, comm), &n) in &survivors {
        let total = feasible.get(&(class, comm)).copied().unwrap_or(0);
        println!(
            "  {:16} {:8} {n:2} frontier points (of {total} feasible)",
            class.label(),
            comm.label()
        );
    }
    let non_mesh = survivors
        .iter()
        .filter(|((_, comm), _)| comm.topology != Topology::Mesh)
        .map(|(_, n)| n)
        .sum::<u32>();
    println!("\nnon-mesh topology points on the frontier: {non_mesh}");

    // The paper's alignment claim, restated over this sweep: at matched
    // compute provisioning, the spatio-temporal baseline spends roughly half
    // its configuration encoding on per-PE crossbars — communication
    // provisioning that outruns its single ALU per tile — so its points
    // should be dominated by the hierarchical Plaid fabric, which amortizes
    // routing over four FUs per PCU.
    let class_hits = |class: ArchClass| {
        survivors
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, n)| n)
            .sum::<u32>()
    };
    println!(
        "class totals: spatio-temporal {} / spatial {} / plaid {} of {} frontier points",
        class_hits(ArchClass::SpatioTemporal),
        class_hits(ArchClass::Spatial),
        class_hits(ArchClass::Plaid),
        frontier.frontier_size()
    );
    if class_hits(ArchClass::Plaid) > class_hits(ArchClass::SpatioTemporal) {
        println!(
            "=> aligned provisioning wins: the communication-heavy spatio-temporal \
             points are dominated at matched compute"
        );
    }

    // Part two: where topology earns its wiring. At matched compute the
    // as-published mesh is already sufficient, so torus/express points pay
    // area and energy for links the mapper does not need. Starve the
    // bandwidth instead (half-capacity switches, half select bits) on the
    // larger 3x3 Plaid array and the trade flips: the wraparound links
    // recover the initiation interval the lean mesh loses, so the torus
    // lands on the frontier next to the lean mesh.
    println!("\n--- topology at starved bandwidth (plaid 3x3, half-bandwidth) ---\n");
    let starved = SpaceSpec {
        classes: vec![ArchClass::Plaid],
        dims: vec![(3, 3)],
        config_entries: vec![16],
        comm_specs: vec![
            CommSpec::LEAN,
            CommSpec::ALIGNED,
            CommSpec::uniform(Topology::Torus, BwClass::Half),
            CommSpec::uniform(Topology::Express { stride: 2 }, BwClass::Half),
        ],
    };
    let plan = SweepPlan::cross(&workloads, &starved);
    let outcome = run_sweep(&plan, &cache);
    let frontier = FrontierReport::from_records(&outcome.records);
    print!("{}", frontier.render());
    let non_mesh = frontier
        .frontiers
        .iter()
        .flat_map(|f| f.points.iter())
        .filter(|p| p.design.comm.topology != Topology::Mesh)
        .count();
    println!("non-mesh topology points on the starved-bandwidth frontier: {non_mesh}");
    if non_mesh > 0 {
        println!(
            "=> provisioning communication is two-dimensional: where bandwidth is \
             tight, topology (not just capacity) buys back cycles"
        );
    }
}
