//! Design-space exploration: PCU array sizes and domain-specialized variants.
//!
//! Prints the fabric power/area of every modelled architecture instance and
//! the scalability comparison between the 2×2 and 3×3 Plaid arrays
//! (Figures 17 and 19 territory).
//!
//! Run with `cargo run --example design_space`.

use plaid::experiments::{scalability, ExperimentScope};
use plaid::pipeline::ArchChoice;
use plaid::report::render_table;
use plaid_sim::cost::CostModel;

fn main() {
    let model = CostModel::default();
    let choices = [
        ArchChoice::SpatioTemporal4x4,
        ArchChoice::Spatial4x4,
        ArchChoice::Plaid2x2,
        ArchChoice::Plaid3x3,
        ArchChoice::SpatioTemporalMl,
        ArchChoice::PlaidMl,
    ];
    let rows: Vec<Vec<String>> = choices
        .iter()
        .map(|&c| {
            let arch = c.build();
            let power = model.fabric_power(&arch);
            let area = model.fabric_area(&arch);
            vec![
                c.label().to_string(),
                arch.functional_units().count().to_string(),
                format!("{:.1}", power.total()),
                format!("{:.0}", area.total()),
                format!("{:.0}%", power.share(power.routers()) * 100.0),
                format!(
                    "{:.0}%",
                    power.share(power.comm_config + power.compute_config) * 100.0
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Design space: fabric power and area of every modelled architecture",
            &[
                "architecture",
                "FUs",
                "power µW",
                "area µm²",
                "router share",
                "config share"
            ],
            &rows,
        )
    );

    let (_rows, text) = scalability(ExperimentScope {
        workload_limit: Some(6),
        stride: 2,
    });
    println!("{text}");
}
