//! Quickstart: compile one kernel onto Plaid and print what the toolchain did.
//!
//! Run with `cargo run --example quickstart`.

use plaid::pipeline::{compile_workload, ArchChoice, MapperChoice};
use plaid_workloads::find_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick the paper's running example family: a linear-algebra kernel.
    let workload = find_workload("gemm_u2").expect("gemm_u2 is registered");

    println!(
        "kernel: {} ({} loop iterations)",
        workload.name,
        workload.iterations()
    );

    let result = compile_workload(&workload, ArchChoice::Plaid2x2, MapperChoice::Plaid)?;

    println!(
        "DFG: {} nodes ({} compute, {} memory), {} edges",
        result.dfg.node_count(),
        result.dfg.compute_node_count(),
        result.dfg.memory_node_count(),
        result.dfg.edge_count()
    );
    println!(
        "motifs: {} covering {}/{} compute nodes (fan-in {}, fan-out {}, unicast {})",
        result.coverage.motif_count(),
        result.coverage.covered_nodes,
        result.coverage.compute_nodes,
        result.coverage.fan_in,
        result.coverage.fan_out,
        result.coverage.unicast
    );

    let mapping = result.mapping.as_ref().expect("modulo-scheduled mapping");
    println!(
        "mapping: II={} schedule length={} cycles ({} total cycles for the loop)",
        mapping.ii,
        mapping.schedule_length(),
        result.metrics.cycles
    );
    if let Some(config) = &result.config {
        println!(
            "configuration: {} entries x {} bits per PCU ({} bits total, {:.0}% of entries active)",
            config.entries,
            config.bits_per_entry,
            config.total_bits(),
            config.entry_utilization() * 100.0
        );
    }
    println!(
        "cost: {:.1} µW fabric power, {:.1} nJ energy, {:.0} µm² fabric area",
        result.metrics.power_uw, result.metrics.energy_nj, result.metrics.area_um2
    );
    Ok(())
}
