//! Application-level evaluation: map every layer of the three TinyML-style
//! DNN applications onto the spatial baseline and Plaid (Figure 16).
//!
//! Run with `cargo run --example dnn_application`.

use plaid::experiments::dnn_comparison;

fn main() {
    let (rows, text) = dnn_comparison();
    println!("{text}");
    for row in rows {
        println!(
            "{}: plaid {} cycles vs spatial {} cycles; spatial consumes {:.2}x the energy of Plaid",
            row.application,
            row.plaid_cycles,
            row.spatial_cycles,
            row.spatial_energy / row.plaid_energy
        );
    }
}
