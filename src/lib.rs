//! Workspace umbrella crate.
//!
//! `plaid-suite` exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The library surface simply
//! re-exports the member crates so examples and tests can reach everything
//! through one dependency.

#![forbid(unsafe_code)]

pub use plaid;
pub use plaid_arch;
pub use plaid_dfg;
pub use plaid_explore;
pub use plaid_mapper;
pub use plaid_motif;
pub use plaid_sim;
pub use plaid_workloads;
